"""Zero-copy shared-memory transport for ``parallel_map`` payloads.

Shipping a population to pool workers through pickling copies every array
once per worker (and once more into each worker's heap).  This module
instead places large read-only arrays in ``multiprocessing.shared_memory``
segments and ships only tiny :class:`SharedArrayRef` descriptors; workers
attach by name and map the same physical pages.

``export_payload`` walks an arbitrary payload tree (arrays, dicts, lists,
tuples, dataclasses) and swaps every array of at least ``min_bytes`` for a
ref, returning the rewritten tree plus a :class:`ShmLease` the parent
releases (close + unlink) once the pool is done.  ``import_payload``
reverses the walk inside the worker, attaching each segment once and
returning read-only array views into it.  Small payloads pass through
untouched, and any OS-level shared-memory failure falls back to plain
pickling, so callers never need a second code path.

Arrays that are already **file-backed** — ``np.memmap`` instances or
views whose base chain bottoms out in one, e.g. columns served from
:mod:`repro.data.mmapstore` — skip shared memory entirely: the bytes
already live in a file, so the export emits a :class:`MmapArrayRef`
(path + byte offset + shape) and the worker re-maps the same file
read-only.  Nothing is copied anywhere, the parent holds no lease for
them, and a vanished file degrades to the serial fallback exactly like a
failed segment create.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "SHARED_MIN_BYTES",
    "MmapArrayRef",
    "SharedArrayRef",
    "ShmLease",
    "count_payload_arrays",
    "export_payload",
    "import_payload",
    "memmap_backing",
]

#: Arrays below this size ride the normal pickle path: a 256 KiB copy per
#: worker costs less than a segment create + attach round trip.
SHARED_MIN_BYTES = 1 << 18


@dataclass(frozen=True)
class SharedArrayRef:
    """A by-name descriptor of one array living in a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class MmapArrayRef:
    """A by-path descriptor of one array living in a file on disk.

    ``offset`` is the byte position of the array's first element within
    the file (the ``.npy`` header plus any view displacement), so a
    worker reattaches with a single ``np.memmap`` call — zero bytes
    cross the process boundary and there is nothing to lease or unlink.
    """

    path: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int


def memmap_backing(arr: np.ndarray) -> "np.memmap | None":
    """The ``np.memmap`` an array is a view into, or ``None``.

    Walks the ``.base`` chain: canonicalisation such as
    ``np.ascontiguousarray`` strips the ``memmap`` subclass but keeps the
    buffer, so file-backed columns usually arrive here as plain
    ``ndarray`` views whose base bottoms out in the original map.  The
    walk keeps the *deepest* memmap it sees: slicing a memmap yields a
    memmap subclass view whose ``.offset`` attribute is inherited
    verbatim from its parent (stale for the view), so only the root map's
    offset is authoritative.
    """
    deepest = None
    seen: Any = arr
    while seen is not None:
        if isinstance(seen, np.memmap):
            deepest = seen
        seen = getattr(seen, "base", None)
    return deepest


def _as_mmap_ref(arr: np.ndarray) -> "MmapArrayRef | None":
    """Describe ``arr`` by path+offset if its bytes live in a file.

    Requires a C-contiguous view with a known filename; anything else
    (strided slices, anonymous maps) returns ``None`` and rides the
    shm/pickle path instead.
    """
    mm = memmap_backing(arr)
    if mm is None or not arr.flags.c_contiguous:
        return None
    filename = getattr(mm, "filename", None)
    if filename is None:
        return None
    arr_ptr = arr.__array_interface__["data"][0]
    mm_ptr = mm.__array_interface__["data"][0]
    # mm's first byte sits at file offset mm.offset; arr's displacement
    # within the map carries over verbatim.
    offset = int(mm.offset) + (int(arr_ptr) - int(mm_ptr))
    if offset < 0:
        return None
    return MmapArrayRef(
        path=str(filename), shape=tuple(arr.shape), dtype=arr.dtype.str,
        offset=offset,
    )


@dataclass(frozen=True)
class _DataclassNode:
    """An exported dataclass: its type plus per-field exported values.

    Dataclasses cannot carry refs in their own fields (their
    ``__post_init__`` validation expects real arrays), so the export walk
    flattens them and the import walk reconstructs via ``cls(**fields)``
    once the arrays are attached.
    """

    cls: type
    fields: Dict[str, Any]


class ShmLease:
    """Parent-side ownership of the segments one export created.

    The parent must keep the lease alive while workers may attach, then
    :meth:`release` it — segments are reference counted by the OS, so
    close + unlink here leaves already-attached workers unaffected.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self.total_bytes = 0
        # File-backed arrays shipped by reference: counted here for the
        # transport accounting, but never owned — the MmapStore bundle
        # (or whoever created the file) controls its lifetime.
        self.mmap_arrays = 0
        self.mmap_bytes = 0

    @property
    def n_segments(self) -> int:
        """Number of shared segments this lease owns."""
        return len(self._segments)

    def add(self, segment: shared_memory.SharedMemory, nbytes: int) -> None:
        """Record a newly created segment under this lease."""
        self._segments.append(segment)
        self.total_bytes += nbytes

    def release(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # already gone (e.g. manual cleanup)
                pass
        self._segments.clear()


def count_payload_arrays(payload: Any) -> Tuple[int, int]:
    """``(n_arrays, total_bytes)`` of every ndarray in a payload tree.

    Used to meter the pickle transport when shared memory is disabled —
    the same walk :func:`export_payload` does, without exporting.
    """
    if isinstance(payload, np.ndarray):
        return 1, payload.nbytes
    if isinstance(payload, dict):
        values: Any = payload.values()
    elif isinstance(payload, (list, tuple)):
        values = payload
    elif dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        values = [
            getattr(payload, f.name) for f in dataclasses.fields(payload)
        ]
    else:
        return 0, 0
    n_arrays = 0
    n_bytes = 0
    for value in values:
        n, b = count_payload_arrays(value)
        n_arrays += n
        n_bytes += b
    return n_arrays, n_bytes


def _export_array(
    arr: np.ndarray, lease: ShmLease, min_bytes: int
) -> "np.ndarray | SharedArrayRef | MmapArrayRef":
    if arr.nbytes < min_bytes or arr.nbytes == 0:
        return arr
    mmap_ref = _as_mmap_ref(arr)
    if mmap_ref is not None:
        # Already on disk: ship the descriptor, copy nothing.
        lease.mmap_arrays += 1
        lease.mmap_bytes += arr.nbytes
        return mmap_ref
    contiguous = np.ascontiguousarray(arr)
    segment = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
    lease.add(segment, contiguous.nbytes)
    view: np.ndarray = np.ndarray(
        contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
    )
    view[...] = contiguous
    return SharedArrayRef(
        name=segment.name, shape=tuple(contiguous.shape), dtype=contiguous.dtype.str
    )


def _export(value: Any, lease: ShmLease, min_bytes: int) -> Any:
    if isinstance(value, (SharedArrayRef, MmapArrayRef, _DataclassNode)):
        return value
    if isinstance(value, np.ndarray):
        return _export_array(value, lease, min_bytes)
    if isinstance(value, dict):
        out_dict = {k: _export(v, lease, min_bytes) for k, v in value.items()}
        if all(out_dict[k] is value[k] for k in value):
            return value
        return out_dict
    if isinstance(value, (list, tuple)):
        out_items = [_export(v, lease, min_bytes) for v in value]
        if all(a is b for a, b in zip(out_items, value)):
            return value
        return type(value)(out_items)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        names = [f.name for f in dataclasses.fields(value)]
        exported = {n: _export(getattr(value, n), lease, min_bytes) for n in names}
        if all(exported[n] is getattr(value, n) for n in names):
            return value
        return _DataclassNode(cls=type(value), fields=exported)
    return value


def export_payload(
    payload: Any, min_bytes: int = SHARED_MIN_BYTES
) -> Tuple[Any, ShmLease]:
    """Rewrite a payload tree, moving large arrays into shared segments.

    Returns ``(exported, lease)``.  If the OS refuses shared memory the
    original payload comes back with an empty lease — the caller's pickle
    path still works.
    """
    lease = ShmLease()
    try:
        exported = _export(payload, lease, min_bytes)
    except OSError:
        lease.release()
        return payload, ShmLease()
    return exported, lease


#: Segments this process has attached, keyed by name: attach once, keep
#: the mapping alive for every array view handed out.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(ref: SharedArrayRef) -> np.ndarray:
    segment = _ATTACHED.get(ref.name)
    if segment is None:
        # Pool workers share the parent's resource-tracker process (fork,
        # or fd inheritance under spawn), and the tracker's registry is a
        # set — the attach-side register is a duplicate no-op and the
        # parent's unlink still deregisters exactly once.
        segment = shared_memory.SharedMemory(name=ref.name)
        _ATTACHED[ref.name] = segment
    arr: np.ndarray = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
    )
    arr.flags.writeable = False
    return arr


def _attach_mmap(ref: MmapArrayRef) -> np.ndarray:
    """Re-map a file-backed array read-only at its recorded offset."""
    arr: np.ndarray = np.memmap(
        ref.path,
        dtype=np.dtype(ref.dtype),
        mode="r",
        offset=ref.offset,
        shape=ref.shape,
    )
    arr.flags.writeable = False
    return arr


def import_payload(payload: Any) -> Any:
    """Resolve every ref in an exported payload tree back into arrays.

    Views are read-only — the pages are shared with the parent and every
    sibling worker.  Payloads without refs pass through unchanged.
    """
    if isinstance(payload, SharedArrayRef):
        return _attach(payload)
    if isinstance(payload, MmapArrayRef):
        return _attach_mmap(payload)
    if isinstance(payload, _DataclassNode):
        return payload.cls(
            **{name: import_payload(v) for name, v in payload.fields.items()}
        )
    if isinstance(payload, dict):
        return {k: import_payload(v) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        return type(payload)(import_payload(v) for v in payload)
    return payload
