"""Deterministic parallel execution backbone for the experiment drivers.

``parallel_map`` fans independent work units out over a process pool with
chunk-order ``SeedSequence.spawn`` RNG derivation, so the same seed gives
bit-identical results for any worker count.  Large read-only payload
arrays travel zero-copy via ``multiprocessing.shared_memory`` (see
:mod:`repro.parallel.shared`).  See :mod:`repro.parallel.pool`.
"""

from repro.parallel.pool import (
    DEFAULT_TARGET_CHUNKS,
    ParallelStats,
    chunk_bounds,
    parallel_map,
    parallel_map_with_stats,
    resolve_workers,
    set_shared_memory_enabled,
    shared_memory_enabled,
)
from repro.parallel.shared import (
    SHARED_MIN_BYTES,
    MmapArrayRef,
    SharedArrayRef,
    ShmLease,
    export_payload,
    import_payload,
    memmap_backing,
)

__all__ = [
    "parallel_map",
    "parallel_map_with_stats",
    "ParallelStats",
    "resolve_workers",
    "chunk_bounds",
    "DEFAULT_TARGET_CHUNKS",
    "set_shared_memory_enabled",
    "shared_memory_enabled",
    "SHARED_MIN_BYTES",
    "MmapArrayRef",
    "SharedArrayRef",
    "ShmLease",
    "export_payload",
    "import_payload",
    "memmap_backing",
]
