"""Deterministic parallel execution backbone for the experiment drivers.

``parallel_map`` fans independent work units out over a process pool with
chunk-order ``SeedSequence.spawn`` RNG derivation, so the same seed gives
bit-identical results for any worker count.  See :mod:`repro.parallel.pool`.
"""

from repro.parallel.pool import (
    DEFAULT_TARGET_CHUNKS,
    ParallelStats,
    chunk_bounds,
    parallel_map,
    parallel_map_with_stats,
    resolve_workers,
)

__all__ = [
    "parallel_map",
    "parallel_map_with_stats",
    "ParallelStats",
    "resolve_workers",
    "chunk_bounds",
    "DEFAULT_TARGET_CHUNKS",
]
