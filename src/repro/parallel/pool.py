"""Deterministic process-pool fan-out for embarrassingly parallel sweeps.

Every experiment driver in this reproduction evaluates independent work
units — users under attack, Monte-Carlo parameter combinations, per-user
edge workloads.  :func:`parallel_map` is the shared backbone that fans
those units out over a process pool while keeping the results **bit
identical** for any worker count:

* items are split into chunks whose boundaries depend only on the item
  count and ``chunk_size`` — never on the worker count;
* each chunk gets its own :class:`numpy.random.SeedSequence` child,
  spawned in chunk order from the root seed, so the randomness a chunk
  consumes is a pure function of ``(seed, chunk index)``;
* results are reassembled in chunk order.

Consequently ``workers=1`` and ``workers=8`` walk exactly the same RNG
streams and produce exactly the same output list, which is what makes
parallel runs of the paper's figures reproducible and testable.

Heavy shared inputs (a user population, a trace pool) should go through
``payload=``: the payload is shipped to each worker **once** via the pool
initializer instead of being re-pickled into every chunk task.  Large
read-only arrays inside the payload additionally travel zero-copy through
``multiprocessing.shared_memory`` (see :mod:`repro.parallel.shared`) —
workers attach the parent's segments by name instead of receiving pickled
copies.  Disable per call with ``use_shared_memory=False`` or process-wide
with :func:`set_shared_memory_enabled`.

When ``workers <= 1``, the pool cannot be created (sandboxes without
fork/semaphores), or there is only one chunk, the same chunk schedule
runs serially in-process — same chunks, same seeds, same results.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.timing import ChunkTiming, Stopwatch, summarize_chunks
from repro.obs.trace import ChunkObservations
from repro.obs.trace import absorb as _obs_absorb
from repro.obs.trace import collect as _obs_collect
from repro.obs.rss import record_peak_rss as _record_peak_rss
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry
from repro.parallel.shared import (
    SHARED_MIN_BYTES,
    count_payload_arrays,
    export_payload,
    import_payload,
)

__all__ = [
    "parallel_map",
    "parallel_map_with_stats",
    "ParallelStats",
    "resolve_workers",
    "chunk_bounds",
    "set_shared_memory_enabled",
    "shared_memory_enabled",
]

#: Default number of chunks to aim for.  Fixed (rather than derived from
#: the worker count) so chunk boundaries — and therefore the per-chunk
#: RNG streams — are identical no matter how many workers execute them.
DEFAULT_TARGET_CHUNKS = 32

#: Payload slot filled in each worker process by the pool initializer.
_WORKER_PAYLOAD: Any = None

#: Process-wide shared-memory toggle (``--no-shm`` flips it off).
_SHM_ENABLED: bool = True


def set_shared_memory_enabled(enabled: bool) -> None:
    """Process-wide default for shipping payload arrays via shared memory."""
    global _SHM_ENABLED
    _SHM_ENABLED = enabled


def shared_memory_enabled() -> bool:
    """The current process-wide shared-memory default."""
    return _SHM_ENABLED


@dataclass
class ParallelStats:
    """Execution statistics of one :func:`parallel_map` call."""

    workers: int = 1
    pool_used: bool = False
    total_seconds: float = 0.0
    shared_arrays: int = 0
    shared_bytes: int = 0
    mmap_arrays: int = 0
    mmap_bytes: int = 0
    chunk_timings: List[ChunkTiming] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        """Flat dict for report notes and the benchmark JSON archives."""
        chunk_summary = summarize_chunks(self.chunk_timings)
        # The wall clock is authoritative; the chunk-sum lands under its
        # own key (they differ once chunks overlap in a pool).
        chunk_summary["chunk_seconds_sum"] = chunk_summary.pop("total_seconds")
        return {
            "workers": self.workers,
            "pool_used": self.pool_used,
            "total_seconds": self.total_seconds,
            "shared_arrays": self.shared_arrays,
            "shared_bytes": self.shared_bytes,
            "mmap_arrays": self.mmap_arrays,
            "mmap_bytes": self.mmap_bytes,
            **chunk_summary,
        }


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` means all *usable* cores.

    Usable means the scheduling affinity mask (what a CPU-quota'd CI
    container actually grants), not the host's physical core count.
    """
    if workers is None or workers == 0:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):  # non-Linux platforms
            return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def chunk_bounds(n_items: int, chunk_size: Optional[int]) -> List[Tuple[int, int]]:
    """Deterministic ``[start, end)`` chunk boundaries over ``n_items``.

    ``chunk_size=None`` targets :data:`DEFAULT_TARGET_CHUNKS` chunks.  The
    boundaries are a pure function of ``(n_items, chunk_size)`` — this is
    the invariant the bit-identical-results guarantee rests on.
    """
    if n_items == 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(n_items / DEFAULT_TARGET_CHUNKS))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(s, min(s + chunk_size, n_items)) for s in range(0, n_items, chunk_size)]


def _init_worker(payload: Any) -> None:
    """Pool initializer: stash the shared payload once per worker.

    ``import_payload`` resolves any shared-memory refs the parent's export
    produced into attached array views; payloads without refs pass through
    unchanged.
    """
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = import_payload(payload)


def _run_chunk(
    fn: Callable[..., List[Any]],
    chunk: List[Any],
    index: int,
    seed_seq: Optional[np.random.SeedSequence],
    with_payload: bool,
    payload: Any,
    collect_obs: bool = False,
) -> Tuple[int, List[Any], float, Optional[ChunkObservations]]:
    """Execute one chunk with its derived RNG.

    Returns ``(index, results, secs, observations)``; ``observations`` is
    the chunk's captured spans + metrics snapshot when ``collect_obs`` is
    set (the parent absorbs them in chunk order), else None.
    """
    rng = np.random.default_rng(seed_seq)
    if with_payload and payload is None:
        payload = _WORKER_PAYLOAD
    observations: Optional[ChunkObservations] = None
    start = time.perf_counter()
    if collect_obs:
        # Capture into a fresh buffer/registry in the worker *and* on the
        # serial path, so the per-chunk observations — and therefore the
        # parent's chunk-ordered merge — are identical either way.
        with _obs_collect() as observations:
            out = fn(chunk, rng, payload) if with_payload else fn(chunk, rng)
            # Peak RSS rides the chunk snapshot and max-merges in the
            # parent: the gauge ends up as the largest peak any process
            # in the fan-out reached.
            _record_peak_rss()
    elif with_payload:
        out = fn(chunk, rng, payload)
    else:
        out = fn(chunk, rng)
    elapsed = time.perf_counter() - start
    if not isinstance(out, list):
        out = list(out)
    if len(out) != len(chunk):
        raise ValueError(
            f"chunk function returned {len(out)} results for {len(chunk)} items"
        )
    return index, out, elapsed, observations


def parallel_map_with_stats(
    fn: Callable[..., List[Any]],
    items: Sequence[Any],
    *,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
    payload: Any = None,
    use_shared_memory: Optional[bool] = None,
    shm_min_bytes: int = SHARED_MIN_BYTES,
) -> Tuple[List[Any], ParallelStats]:
    """:func:`parallel_map` plus the per-chunk :class:`ParallelStats`.

    Args:
        fn: chunk function ``fn(chunk, rng)`` — or ``fn(chunk, rng,
            payload)`` when ``payload`` is given — returning one result per
            chunk item.  Must be picklable (module-level) for ``workers > 1``.
        items: the independent work units.
        workers: process count; ``None``/``0`` uses every core, ``<= 1``
            runs serially (same chunks, same seeds).
        seed: root seed for the per-chunk ``SeedSequence.spawn`` chain;
            ``None`` gives fresh OS entropy per chunk (non-reproducible).
        chunk_size: items per chunk; default targets
            :data:`DEFAULT_TARGET_CHUNKS` chunks independent of ``workers``.
        payload: heavy shared state delivered to workers once via the pool
            initializer rather than per chunk.
        use_shared_memory: ship large payload arrays via shared-memory
            segments instead of pickling them into each worker; ``None``
            follows the process-wide default (on).  Workers see read-only
            views with the same values either way.
        shm_min_bytes: per-array size threshold below which arrays stay on
            the pickle path.
    """
    items = list(items)
    workers = resolve_workers(workers)
    stats = ParallelStats(workers=workers)
    if not items:
        return [], stats

    bounds = chunk_bounds(len(items), chunk_size)
    chunks = [items[s:e] for s, e in bounds]
    if seed is None:
        seqs: List[Optional[np.random.SeedSequence]] = [None] * len(chunks)
    else:
        seqs = list(np.random.SeedSequence(seed).spawn(len(chunks)))
    with_payload = payload is not None
    use_shm = _SHM_ENABLED if use_shared_memory is None else use_shared_memory

    collect_obs = _obs_enabled()
    observations: List[Optional[ChunkObservations]] = [None] * len(chunks)
    with Stopwatch() as sw:
        results = _execute(
            fn, chunks, seqs, workers, with_payload, payload, stats,
            use_shm, shm_min_bytes, collect_obs, observations,
        )
    stats.total_seconds = sw.elapsed

    if collect_obs:
        # Chunk-index order: the merged registry is a pure function of the
        # chunk schedule, never of which worker ran which chunk.
        for obs_chunk in observations:
            _obs_absorb(obs_chunk)
        registry = _obs_registry()
        registry.counter("parallel.chunks").inc(len(chunks))
        registry.counter("parallel.items").inc(len(items))
        for timing in sorted(stats.chunk_timings, key=lambda c: c.index):
            registry.histogram("parallel.chunk_seconds").observe(timing.seconds)
        # Parent-side reading: RUSAGE_CHILDREN covers the pool workers
        # (reaped when the executor exited above), so after the max-merge
        # the gauge bounds every process this call touched.
        _record_peak_rss(include_children=True)

    flat: List[Any] = []
    for chunk_results in results:
        flat.extend(chunk_results)
    return flat, stats


def parallel_map(
    fn: Callable[..., List[Any]],
    items: Sequence[Any],
    *,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
    payload: Any = None,
    use_shared_memory: Optional[bool] = None,
    shm_min_bytes: int = SHARED_MIN_BYTES,
) -> List[Any]:
    """Map ``fn`` over ``items`` in deterministic chunks, possibly in parallel.

    See :func:`parallel_map_with_stats` for the argument contract; this
    variant discards the timing stats.
    """
    results, _ = parallel_map_with_stats(
        fn,
        items,
        workers=workers,
        seed=seed,
        chunk_size=chunk_size,
        payload=payload,
        use_shared_memory=use_shared_memory,
        shm_min_bytes=shm_min_bytes,
    )
    return results


def _execute(
    fn: Callable[..., List[Any]],
    chunks: List[List[Any]],
    seqs: List[Optional[np.random.SeedSequence]],
    workers: int,
    with_payload: bool,
    payload: Any,
    stats: ParallelStats,
    use_shm: bool,
    shm_min_bytes: int,
    collect_obs: bool,
    observations: List[Optional[ChunkObservations]],
) -> List[List[Any]]:
    """Run every chunk, preferring the pool, falling back to serial."""
    if workers > 1 and len(chunks) > 1:
        try:
            return _execute_pool(
                fn, chunks, seqs, workers, with_payload, payload, stats,
                use_shm, shm_min_bytes, collect_obs, observations,
            )
        except (
            OSError,
            PermissionError,
            NotImplementedError,
            ImportError,
            BrokenProcessPool,
        ):
            # No fork/semaphores in this environment, or a worker died in
            # its initializer (e.g. an exported mmap ref whose backing
            # file vanished before attach): degrade gracefully — the
            # serial path below reuses the original, un-exported payload.
            stats.shared_arrays = 0
            stats.shared_bytes = 0
            stats.mmap_arrays = 0
            stats.mmap_bytes = 0
    return _execute_serial(
        fn, chunks, seqs, with_payload, payload, stats, collect_obs, observations
    )


def _execute_serial(
    fn: Callable[..., List[Any]],
    chunks: List[List[Any]],
    seqs: List[Optional[np.random.SeedSequence]],
    with_payload: bool,
    payload: Any,
    stats: ParallelStats,
    collect_obs: bool,
    observations: List[Optional[ChunkObservations]],
) -> List[List[Any]]:
    out: List[List[Any]] = []
    for index, (chunk, seq) in enumerate(zip(chunks, seqs)):
        _, results, elapsed, obs_chunk = _run_chunk(
            fn, chunk, index, seq, with_payload, payload, collect_obs
        )
        observations[index] = obs_chunk
        stats.chunk_timings.append(
            ChunkTiming(index=index, size=len(chunk), seconds=elapsed)
        )
        out.append(results)
    return out


def _execute_pool(
    fn: Callable[..., List[Any]],
    chunks: List[List[Any]],
    seqs: List[Optional[np.random.SeedSequence]],
    workers: int,
    with_payload: bool,
    payload: Any,
    stats: ParallelStats,
    use_shm: bool,
    shm_min_bytes: int,
    collect_obs: bool,
    observations: List[Optional[ChunkObservations]],
) -> List[List[Any]]:
    max_workers = min(workers, len(chunks))
    lease = None
    payload_arrays, payload_bytes = (
        count_payload_arrays(payload) if with_payload and _obs_enabled() else (0, 0)
    )
    if with_payload and use_shm:
        # Large payload arrays move into shared segments; only the tiny
        # ref tree is pickled into the pool initializer.  File-backed
        # arrays skip even that: they export as path+offset refs.
        payload, lease = export_payload(payload, shm_min_bytes)
        stats.shared_arrays = lease.n_segments
        stats.shared_bytes = lease.total_bytes
        stats.mmap_arrays = lease.mmap_arrays
        stats.mmap_bytes = lease.mmap_bytes
    if with_payload and _obs_enabled():
        # Transport accounting: shared segments hold ONE copy no matter
        # the worker count, mmap refs hold ZERO copies (the file is the
        # copy); whatever stayed on the pickle path is copied into every
        # worker.
        shm_arrays = lease.n_segments if lease is not None else 0
        shm_bytes = lease.total_bytes if lease is not None else 0
        mmap_arrays = lease.mmap_arrays if lease is not None else 0
        mmap_bytes = lease.mmap_bytes if lease is not None else 0
        registry = _obs_registry()
        registry.counter("parallel.transport.shm_arrays").inc(shm_arrays)
        registry.counter("parallel.transport.shm_bytes").inc(shm_bytes)
        registry.counter("parallel.transport.mmap_arrays").inc(mmap_arrays)
        registry.counter("parallel.transport.mmap_bytes").inc(mmap_bytes)
        registry.counter("parallel.transport.pickle_arrays").inc(
            (payload_arrays - shm_arrays - mmap_arrays) * max_workers
        )
        registry.counter("parallel.transport.pickle_bytes").inc(
            (payload_bytes - shm_bytes - mmap_bytes) * max_workers
        )
    initializer = _init_worker if with_payload else None
    initargs = (payload,) if with_payload else ()
    ordered: List[Optional[List[Any]]] = [None] * len(chunks)
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers, initializer=initializer, initargs=initargs
        ) as pool:
            futures = [
                # Chunk tasks carry payload=None: workers read the
                # initializer copy instead of re-pickling the payload per
                # chunk.
                pool.submit(
                    _run_chunk, fn, chunk, index, seq, with_payload, None,
                    collect_obs,
                )
                for index, (chunk, seq) in enumerate(zip(chunks, seqs))
            ]
            for future in futures:
                index, results, elapsed, obs_chunk = future.result()
                ordered[index] = results
                observations[index] = obs_chunk
                stats.chunk_timings.append(
                    ChunkTiming(index=index, size=len(chunks[index]), seconds=elapsed)
                )
    finally:
        if lease is not None:
            lease.release()
    stats.pool_used = True
    stats.chunk_timings.sort(key=lambda c: c.index)
    return [r for r in ordered if r is not None]
