"""Edge-PrivLocAd: thwarting longitudinal location exposure attacks in LBA.

A from-scratch Python reproduction of the ICDCS 2022 paper "Thwarting
Longitudinal Location Exposure Attacks in Advertising Ecosystem via Edge
Computing".  The package is organised as:

* :mod:`repro.geo` — planar geometry, projections, spatial indexing.
* :mod:`repro.core` — geo-IND mechanisms (planar Laplace, 1-/n-fold
  Gaussian, baselines), posterior output selection, privacy accounting and
  numerical verification.
* :mod:`repro.profiles` — check-ins, location profiles, the eta-frequent
  location set, location entropy.
* :mod:`repro.attack` — the longitudinal location exposure attack
  (connectivity clustering + trimming de-obfuscation, profiling, MAP
  estimation) and its success metrics.
* :mod:`repro.ads` — a simulated location-based-advertising ecosystem
  (campaigns, radius targeting, matching, bidding logs).
* :mod:`repro.edge` — the Edge-PrivLocAd system: clients, edge devices
  (location management / obfuscation / output selection modules), and the
  honest-but-curious provider.
* :mod:`repro.datagen` — synthetic mobility traces calibrated to the
  paper's dataset statistics.
* :mod:`repro.metrics` — utilization rate, advertising efficacy, attack
  success rate, timing harness.
* :mod:`repro.experiments` — drivers regenerating every table and figure
  of the paper's evaluation.
"""

__version__ = "1.0.0"

from repro.core import (
    GaussianMechanism,
    GeoIndBudget,
    NFoldGaussianMechanism,
    NaivePostProcessingMechanism,
    OneTimeBudget,
    PlainCompositionMechanism,
    PlanarLaplaceMechanism,
    PosteriorSelector,
    UniformSelector,
)
from repro.geo import GeoPoint, Point

__all__ = [
    "__version__",
    "Point",
    "GeoPoint",
    "GeoIndBudget",
    "OneTimeBudget",
    "PlanarLaplaceMechanism",
    "GaussianMechanism",
    "NFoldGaussianMechanism",
    "NaivePostProcessingMechanism",
    "PlainCompositionMechanism",
    "PosteriorSelector",
    "UniformSelector",
]
