"""Bounded ingress queues: explicit backpressure, never unbounded growth.

One queue fronts each shard.  The producer has two disciplines:

* **shed** (:meth:`BoundedIngressQueue.offer`) — live mode.  A full
  queue rejects the event immediately; the service counts the drop and
  moves on.  The actor never sees a shed event, so the privacy ledger is
  never charged for it — load shedding costs ad requests, not budget.
* **block** (:meth:`BoundedIngressQueue.put`) — replay mode.  The
  producer cooperatively waits for space, so every scheduled event is
  processed and the replay digest is complete.

The queue is single-producer / single-consumer within one asyncio event
loop, so plain state plus two wake-up events is all the synchronisation
it needs (no thread ever touches it).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional, TypeVar

__all__ = ["BoundedIngressQueue", "QueueClosedError"]

T = TypeVar("T")


class QueueClosedError(RuntimeError):
    """Raised when events are offered to a queue after ``close()``."""


class BoundedIngressQueue:
    """A capacity-bounded FIFO with shed and block producer paths.

    Attributes:
        capacity: maximum queued events; beyond it ``offer`` sheds.
        enqueued: events accepted so far.
        dropped: events shed by ``offer`` against a full queue.
        high_water: maximum observed depth (saturation witness).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enqueued = 0
        self.dropped = 0
        self.high_water = 0
        self._items: Deque[int] = deque()
        self._closed = False
        self._item_ready = asyncio.Event()
        self._space_ready = asyncio.Event()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether the producer has finished (no more events will arrive)."""
        return self._closed

    def _append(self, item: int) -> None:
        self._items.append(item)
        self.enqueued += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self._item_ready.set()

    def offer(self, item: int) -> bool:
        """Non-blocking enqueue; shed (return False, count) when full."""
        if self._closed:
            raise QueueClosedError("cannot offer to a closed ingress queue")
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._append(item)
        return True

    async def put(self, item: int) -> None:
        """Blocking enqueue: wait for space instead of shedding (replay)."""
        if self._closed:
            raise QueueClosedError("cannot put to a closed ingress queue")
        while len(self._items) >= self.capacity:
            self._space_ready.clear()
            await self._space_ready.wait()
            if self._closed:
                raise QueueClosedError("ingress queue closed while waiting")
        self._append(item)

    def close(self) -> None:
        """Signal end of stream; wakes the consumer to drain and exit."""
        self._closed = True
        self._item_ready.set()
        self._space_ready.set()

    async def get_batch(self, max_items: int) -> Optional[List[int]]:
        """Up to ``max_items`` events in arrival order; None when drained.

        Waits while the queue is empty and open; returns ``None`` exactly
        once the queue is closed *and* fully drained — the consumer's
        graceful-shutdown signal.
        """
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        while not self._items:
            if self._closed:
                return None
            self._item_ready.clear()
            await self._item_ready.wait()
        batch: List[int] = []
        while self._items and len(batch) < max_items:
            batch.append(self._items.popleft())
        self._space_ready.set()
        return batch
