"""The serve egress: responses that leave the trust boundary, and their digest.

Everything in this module is *outside* the edge: a
:class:`ServeResponse` is what the service hands back to the ad
ecosystem, so it may only ever carry obfuscated coordinates.  The flow
policy registers this module as a PRIV sink — ``repro lint --flow``
flags any path that feeds a raw check-in coordinate into
:func:`build_response` without an obfuscation sanitizer in between.

The replay digest is a canonical byte encoding of every response, hashed
in global sequence order.  It deliberately covers the *semantic* payload
(who, what path, which coordinates to full float64 precision, which ads
at which prices) and excludes process-local artifacts such as the ad
network's running request ids, so the digest is bit-identical across
shard counts and process backends.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.ads.bidding import Ad
from repro.geo.point import Point

__all__ = ["ServeResponse", "build_response", "encode_response", "response_digest"]


@dataclass(frozen=True)
class ServeResponse:
    """One serviced event as seen from outside the trust boundary."""

    seq: int
    user_index: int
    #: Which edge path produced the reported location: ``"top"`` (pinned
    #: obfuscation table + output selection) or ``"nomadic"`` (one-shot
    #: perturbation).
    path: str
    reported_x: float
    reported_y: float
    #: Delivered ads as ``(campaign_id, price_paid)`` pairs, in auction
    #: order.
    ads: Tuple[Tuple[str, float], ...]
    #: Ads received from the network before AoI filtering.
    received: int


def build_response(
    seq: int,
    user_index: int,
    path: str,
    reported: Point,
    delivered: Sequence[Ad],
    received: int,
) -> ServeResponse:
    """Assemble the egress record for one serviced event.

    ``reported`` must already be sanitized (an obfuscation-table
    candidate or a fresh nomadic perturbation) — this function is the
    sink the dataflow policy watches.
    """
    return ServeResponse(
        seq=seq,
        user_index=user_index,
        path=path,
        reported_x=reported.x,
        reported_y=reported.y,
        ads=tuple((ad.campaign_id, ad.price_paid) for ad in delivered),
        received=received,
    )


def encode_response(response: ServeResponse) -> bytes:
    """The canonical byte encoding of one response.

    Fixed-width fields are struct-packed (little-endian; floats as raw
    IEEE-754 bit patterns, so the encoding distinguishes every distinct
    double); variable-width campaign ids are length-prefixed UTF-8.
    """
    parts = [
        struct.pack(
            "<qqB dd H",
            response.seq,
            response.user_index,
            1 if response.path == "top" else 0,
            response.reported_x,
            response.reported_y,
            len(response.ads),
        )
    ]
    for campaign_id, price in response.ads:
        raw = campaign_id.encode("utf-8")
        parts.append(struct.pack("<H", len(raw)))
        parts.append(raw)
        parts.append(struct.pack("<d", price))
    parts.append(struct.pack("<q", response.received))
    return b"".join(parts)


def response_digest(responses: Iterable[ServeResponse]) -> str:
    """SHA-256 over all responses in global ``seq`` order (hex).

    This is the replay-mode contract: for a fixed seed and workload the
    digest is identical for any ``--shards`` value.
    """
    hasher = hashlib.sha256()
    for response in sorted(responses, key=lambda r: r.seq):
        hasher.update(encode_response(response))
    return hasher.hexdigest()
