"""``repro.serve``: the always-on streaming edge service.

The batch experiment drivers replay traces as function calls; this
package runs the same privacy machinery as a *service*: an asyncio event
loop ingests a check-in/bid-request event stream, routes every event to
the per-user actor that owns that user's edge state (obfuscation table,
pin state, privacy ledger), and shards the actors by a stable hash of
the user id across worker processes.  Bounded ingress queues give the
service explicit backpressure; a seeded schedule plus virtual time give
it a bit-identical replay mode; the :mod:`repro.obs` metrics it emits
while running are live SLO metrics (throughput, p50/p99 pin and
end-to-end latency, fleet-wide epsilon/delta spend).

See ``docs/serving.md`` for the architecture and the replay recipe.
"""

from repro.serve.actor import UserActor
from repro.serve.egress import ServeResponse, encode_response, response_digest
from repro.serve.events import (
    EventSchedule,
    ServeEvent,
    ServeWorkloadConfig,
    build_schedule,
    shard_of_user,
)
from repro.serve.harness import (
    ServiceReport,
    bench_payload,
    run_service,
    slo_report,
)
from repro.serve.ingress import BoundedIngressQueue
from repro.serve.service import ServeConfig, ServeResult, ServeService
from repro.serve.shard import ShardSpec, ShardState

__all__ = [
    "BoundedIngressQueue",
    "EventSchedule",
    "ServeConfig",
    "ServeEvent",
    "ServeResponse",
    "ServeResult",
    "ServeService",
    "ServeWorkloadConfig",
    "ServiceReport",
    "ShardSpec",
    "ShardState",
    "UserActor",
    "bench_payload",
    "build_schedule",
    "encode_response",
    "response_digest",
    "run_service",
    "shard_of_user",
    "slo_report",
]
