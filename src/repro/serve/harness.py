"""The load harness: run the service, report SLOs, emit bench payloads.

This is the operational face of :mod:`repro.serve`: one call —
:func:`run_service`, the documented programmatic entry point — builds
the seeded workload, runs the sharded service to completion, and wraps
the outcome in a typed :class:`ServiceReport`: the raw
:class:`~repro.serve.service.ServeResult`, the SLO reduction an operator
watches (throughput, p50/p99 pin latency from the additive-merge
``pin_seconds`` histogram, p50/p99 end-to-end latency in live mode,
drop counts), and the fleet privacy audit
(:class:`~repro.fleet.audit.FleetAudit`).  The ``repro serve`` and
``repro fleet`` CLI commands are thin wrappers over this function; the
same reduction feeds the committed ``BENCH_serve.json`` consumed by
``repro bench --compare``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.fleet.scenario import Scenario
from repro.obs.metrics import Snapshot, quantile_from_histogram
from repro.obs.rss import peak_rss_bytes
from repro.serve.egress import ServeResponse
from repro.serve.events import ServeWorkloadConfig
from repro.serve.service import ServeConfig, ServeResult, ServeService

if TYPE_CHECKING:
    from repro.fleet.audit import FleetAudit

__all__ = ["ServiceReport", "bench_payload", "run_service", "slo_report"]


@dataclass(frozen=True)
class ServiceReport:
    """Typed report for one service run: result + SLO view + audit.

    The raw :class:`ServeResult` stays reachable as ``.result``; the
    commonly asserted fields are re-exposed as passthrough properties so
    the report can be dropped in anywhere a result was used.
    """

    result: ServeResult
    config: ServeConfig

    # -- passthrough properties (drop-in for ServeResult call sites) ----
    @property
    def digest(self) -> str:
        """SHA-256 over the canonical response encoding, in seq order."""
        return self.result.digest

    @property
    def responses(self) -> List[ServeResponse]:
        """Every response, in global ``seq`` order."""
        return self.result.responses

    @property
    def metrics(self) -> Snapshot:
        """The merged fleet metrics snapshot."""
        return self.result.metrics

    def metrics_digest(self) -> str:
        """SHA-256 over the canonical metrics encoding."""
        return self.result.metrics_digest()

    @property
    def audit_epsilon(self) -> float:
        """Ledger charges folded in gauge merge order (epsilon)."""
        return self.result.audit_epsilon

    @property
    def audit_delta(self) -> float:
        """Ledger charges folded in gauge merge order (delta)."""
        return self.result.audit_delta

    @property
    def ledger_epsilon(self) -> float:
        """Epsilon still on surviving actors' ledgers at drain."""
        return self.result.ledger_epsilon

    @property
    def ledger_delta(self) -> float:
        """Delta still on surviving actors' ledgers at drain."""
        return self.result.ledger_delta

    @property
    def ledger_spends(self) -> int:
        """Ledger entries recorded across surviving actors."""
        return self.result.ledger_spends

    @property
    def enqueued(self) -> int:
        """Events admitted to the ingress queues."""
        return self.result.enqueued

    @property
    def dropped(self) -> int:
        """Events shed by backpressure (live mode only)."""
        return self.result.dropped

    @property
    def processed(self) -> int:
        """Events actually served by actors."""
        return self.result.processed

    @property
    def n_actors(self) -> int:
        """User actors alive at drain time."""
        return self.result.n_actors

    @property
    def wall_seconds(self) -> float:
        """Wall clock of the whole run."""
        return self.result.wall_seconds

    @property
    def backend(self) -> str:
        """Execution backend used: ``"inline"`` or ``"process"``."""
        return self.result.backend

    @property
    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard queue/batch/actor statistics."""
        return self.result.shard_stats

    # -- the typed report surface ---------------------------------------
    @property
    def slo(self) -> Dict[str, Any]:
        """The operator's one-look SLO view (see :func:`slo_report`)."""
        return slo_report(self.result)

    @property
    def audit(self) -> "FleetAudit":
        """The three-way privacy-budget reconciliation for this run."""
        from repro.fleet.audit import audit_fleet

        return audit_fleet(self.result)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able report: SLO snapshot plus the audit block."""
        payload = self.slo
        payload["audit"] = self.audit.to_dict()
        if self.config.scenario is not None:
            payload["scenario"] = self.config.scenario.name
            payload["scenario_hash"] = self.config.scenario.content_hash()
        return payload


def run_service(
    n_users: int = 50,
    n_events: int = 2_000,
    n_campaigns: int = 200,
    seed: int = 0,
    n_shards: int = 2,
    queue_capacity: int = 256,
    batch_max: int = 32,
    qps: float = 0.0,
    replay: bool = False,
    use_processes: bool = True,
    ledger_max_epsilon: Optional[float] = None,
    work_sleep_s: float = 0.0,
    producer_burst: int = 1,
    scenario: Optional[Scenario] = None,
    checkpoint_dir: Optional[str] = None,
    dispatch_timeout_s: Optional[float] = None,
) -> ServiceReport:
    """Build the workload, run the service end to end, report.

    This is the supported programmatic entry point: it returns a typed
    :class:`ServiceReport` (digest, SLO snapshot, privacy audit) and
    never prints.  Pass a :class:`~repro.fleet.scenario.Scenario` to run
    the same workload under deterministic fault injection.
    """
    workload = ServeWorkloadConfig(
        n_users=n_users,
        n_events=n_events,
        n_campaigns=n_campaigns,
        seed=seed,
    )
    config = ServeConfig(
        workload=workload,
        n_shards=n_shards,
        queue_capacity=queue_capacity,
        batch_max=batch_max,
        qps=qps,
        replay=replay,
        use_processes=use_processes,
        ledger_max_epsilon=ledger_max_epsilon,
        work_sleep_s=work_sleep_s,
        producer_burst=producer_burst,
        scenario=scenario,
        checkpoint_dir=checkpoint_dir,
        dispatch_timeout_s=dispatch_timeout_s,
    )
    result = ServeService(config).run()
    return ServiceReport(result=result, config=config)


def _histogram(result: ServeResult, name: str) -> Dict[str, Any]:
    data = result.metrics.get("histograms", {}).get(name, {})
    return data if isinstance(data, dict) else {}


def slo_report(result: ServeResult) -> Dict[str, Any]:
    """The operator's one-look view of a finished run."""
    pin = _histogram(result, "edge.obfuscation.pin_seconds")
    handle = _histogram(result, "serve.handle_seconds")
    e2e = _histogram(result, "serve.e2e_seconds")
    gauges = result.metrics.get("gauges", {})
    qps_achieved = (
        result.processed / result.wall_seconds if result.wall_seconds > 0 else 0.0
    )
    return {
        "processed": result.processed,
        "enqueued": result.enqueued,
        "dropped": result.dropped,
        "n_actors": result.n_actors,
        "backend": result.backend,
        "wall_seconds": result.wall_seconds,
        "qps_achieved": qps_achieved,
        "pin_p50_s": quantile_from_histogram(pin, 0.50),
        "pin_p99_s": quantile_from_histogram(pin, 0.99),
        "handle_p50_s": quantile_from_histogram(handle, 0.50),
        "handle_p99_s": quantile_from_histogram(handle, 0.99),
        "e2e_p50_s": quantile_from_histogram(e2e, 0.50),
        "e2e_p99_s": quantile_from_histogram(e2e, 0.99),
        "epsilon_spent": gauges.get("privacy.epsilon_spent", 0.0),
        "delta_spent": gauges.get("privacy.delta_spent", 0.0),
        "audit_epsilon": result.audit_epsilon,
        "audit_delta": result.audit_delta,
        "ledger_spends": result.ledger_spends,
        # Read at report time in the parent (RUSAGE_CHILDREN covers reaped
        # shard processes), never folded into the shard metric registries —
        # metrics_digest must stay invariant to shard count.
        "peak_rss_bytes": peak_rss_bytes(include_children=True),
        "response_digest": result.digest,
        "metrics_digest": result.metrics_digest(),
    }


def bench_payload(result: ServeResult, config: ServeConfig) -> Dict[str, Any]:
    """A ``BENCH_serve.json`` payload for ``repro bench --compare``.

    ``stage_seconds`` carries the latency quantiles so the regression
    gate watches the SLOs, not just the wall clock.
    """
    report = slo_report(result)
    notes: List[str] = [
        f"backend={result.backend}",
        f"shards={config.n_shards}",
        f"replay={config.replay}",
        f"qps_achieved={report['qps_achieved']:.0f}",
        f"dropped={result.dropped}",
    ]
    return {
        "experiment_id": "serve",
        "title": "repro.serve: sharded streaming edge service",
        "wall_seconds": result.wall_seconds,
        "workers": config.n_shards,
        "scale": {
            "name": "serve-smoke",
            "n_users": config.workload.n_users,
            "n_events": config.workload.n_events,
            "n_campaigns": config.workload.n_campaigns,
            "seed": config.workload.seed,
        },
        "stage_seconds": {
            "pin_p50": report["pin_p50_s"],
            "pin_p99": report["pin_p99_s"],
            "handle_p50": report["handle_p50_s"],
            "handle_p99": report["handle_p99_s"],
            "e2e_p50": report["e2e_p50_s"],
            "e2e_p99": report["e2e_p99_s"],
        },
        "cache": None,
        "rows": [
            {
                "processed": result.processed,
                "enqueued": result.enqueued,
                "dropped": result.dropped,
                "qps_achieved": report["qps_achieved"],
                "epsilon_spent": report["epsilon_spent"],
                "delta_spent": report["delta_spent"],
            }
        ],
        "notes": notes,
    }
