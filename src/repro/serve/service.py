"""The serve orchestrator: ingest, route, backpressure, drain, account.

One asyncio event loop hosts a producer (the event stream) and one
consumer task per shard.  The producer routes every event to its owning
shard's :class:`~repro.serve.ingress.BoundedIngressQueue` — shedding
under pressure in live mode, cooperatively blocking in replay mode — and
each consumer drains its queue in batches into the shard backend:

* **process backend** — one single-worker ``ProcessPoolExecutor`` per
  shard (single-worker so the shard's actors live in exactly one
  process), initialised once with the shard spec and the shared-memory
  schedule payload;
* **inline fallback** — sandboxes without fork/semaphores run the shard
  states in the parent process.  Batches execute inline (not in
  threads): :func:`repro.obs.trace.collect` swaps a process-global
  runtime, so concurrent collection from threads would interleave.

Shutdown is a drain, not an abort: the producer closes every queue, the
consumers finish whatever is buffered, and every actor flushes its
trailing profile window before the fleet snapshot is taken.

The fleet metrics snapshot is assembled parent-side in a canonical
order — per-event observations in global ``seq`` order (replay), then
per-actor finalize observations in ``user_index`` order, then the
parent's own ingress/latency metrics — and the epsilon/delta audit
accumulates the underlying ledger entries through the *same* float
operation sequence the gauges took, so ``privacy.epsilon_spent ==
audit_epsilon`` holds bitwise, at any shard count.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.edge.clock import DEFAULT_VIRTUAL_TICK
from repro.edge.device import EdgeConfig
from repro.fleet.scenario import NetworkHeal, NetworkPartition, Scenario
from repro.obs import trace
from repro.obs.fleet import (
    FLEET_BACKEND_RECOVERIES,
    FLEET_DISPATCH_RETRIES,
    FLEET_HEALS,
    FLEET_PARTITIONS,
    FLEET_REJOINS,
)
from repro.obs.metrics import MetricsRegistry, Snapshot
from repro.parallel.shared import export_payload
from repro.serve.egress import ServeResponse, response_digest
from repro.serve.events import EventSchedule, ServeWorkloadConfig, build_schedule
from repro.serve.ingress import BoundedIngressQueue
from repro.serve.shard import (
    ActorFinalize,
    BatchResult,
    Charge,
    ShardSpec,
    ShardState,
    _checkpoint_shard,
    _finalize_shard,
    _init_shard,
    _process_batch,
    _restore_shard,
)

__all__ = ["ServeConfig", "ServeResult", "ServeService"]

#: Exceptions that mean "this sandbox cannot run worker processes".
_POOL_UNAVAILABLE = (OSError, PermissionError, NotImplementedError, ImportError)


@dataclass(frozen=True)
class ServeConfig:
    """Service-level knobs (the workload has its own config)."""

    workload: ServeWorkloadConfig = ServeWorkloadConfig()
    n_shards: int = 2
    queue_capacity: int = 256
    batch_max: int = 32
    #: Live-mode producer pacing in events/second; 0 means unpaced.
    qps: float = 0.0
    #: Live-mode events offered between producer yields.  1 (default)
    #: interleaves producer and consumers event-by-event; larger bursts
    #: model an ingest spike arriving faster than the loop can drain —
    #: backpressure tests use this to saturate a queue deterministically.
    producer_burst: int = 1
    replay: bool = False
    use_processes: bool = True
    edge: EdgeConfig = EdgeConfig()
    ledger_max_epsilon: Optional[float] = None
    virtual_tick: float = DEFAULT_VIRTUAL_TICK
    #: Test knob, forwarded to the shards (see :class:`ShardSpec`).
    work_sleep_s: float = 0.0
    #: Optional fault-injection program (see :mod:`repro.fleet`).
    #: Device-level events run inside the shards; partition/heal events
    #: run here, against the shard backends.
    scenario: Optional[Scenario] = None
    #: When set, fleet actor snapshots are mirrored to JSON files here.
    checkpoint_dir: Optional[str] = None
    #: Per-batch dispatch timeout to a shard worker (None: wait forever).
    dispatch_timeout_s: Optional[float] = None
    #: Bounded retries after a dispatch failure, each preceded by an
    #: exponentially growing backoff and an event-sourced inline rebuild
    #: of the shard (exactly-once: a wedged worker's late results are
    #: discarded with its executor).
    dispatch_retries: int = 2
    dispatch_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.qps < 0:
            raise ValueError("qps must be >= 0")
        if self.producer_burst < 1:
            raise ValueError("producer_burst must be >= 1")
        if self.dispatch_timeout_s is not None and self.dispatch_timeout_s <= 0:
            raise ValueError("dispatch_timeout_s must be positive when set")
        if self.dispatch_retries < 0:
            raise ValueError("dispatch_retries must be >= 0")
        if self.dispatch_backoff_s < 0:
            raise ValueError("dispatch_backoff_s must be >= 0")

    def shard_spec(self, shard_id: int) -> ShardSpec:
        """The picklable spec for one shard worker."""
        return ShardSpec(
            shard_id=shard_id,
            n_shards=self.n_shards,
            seed=self.workload.seed,
            edge=self.edge,
            n_campaigns=self.workload.n_campaigns,
            campaign_radius_m=self.workload.campaign_radius_m,
            replay=self.replay,
            virtual_tick=self.virtual_tick,
            ledger_max_epsilon=self.ledger_max_epsilon,
            work_sleep_s=self.work_sleep_s,
            scenario=self.scenario,
            checkpoint_dir=self.checkpoint_dir,
        )


@dataclass
class ServeResult:
    """Everything one service run produced, ready for report or assert."""

    digest: str
    responses: List[ServeResponse]
    metrics: Snapshot
    #: Ledger-entry sums accumulated through the gauges' float-op order;
    #: ``metrics["gauges"]["privacy.epsilon_spent"] == audit_epsilon``
    #: holds exactly.
    audit_epsilon: float
    audit_delta: float
    #: Naive per-actor ledger sums (entry order within each actor).
    ledger_epsilon: float
    ledger_delta: float
    ledger_spends: int
    enqueued: int
    dropped: int
    processed: int
    n_actors: int
    wall_seconds: float
    backend: str
    shard_stats: List[Dict[str, Any]] = field(default_factory=list)

    def metrics_digest(self) -> str:
        """SHA-256 of the canonical JSON of the fleet metrics snapshot."""
        canon = json.dumps(self.metrics, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class _ShardBackend:
    """One shard's execution seat: a worker process, or inline state.

    The backend records every batch it has successfully processed
    (``history``) so an unplanned worker failure — a dispatch timeout or
    a broken executor — can be recovered by *event-sourced rebuild*:
    discard the worker, replay the shard's whole batch history against a
    fresh inline state (discarding the replayed outputs, which were
    already accounted upstream), and continue inline.  A planned
    :class:`~repro.fleet.scenario.NetworkPartition` takes the cheaper
    path: checkpoint the worker's state and restore it inline.
    """

    def __init__(
        self,
        spec: ShardSpec,
        schedule: EventSchedule,
        executor: Optional[ProcessPoolExecutor],
    ) -> None:
        self.spec = spec
        self.schedule = schedule
        self.executor = executor
        self.state: Optional[ShardState] = (
            None if executor is not None else ShardState(spec, schedule)
        )
        #: Batches successfully processed, in order (the rebuild log).
        self.history: List[List[int]] = []
        #: True while a partition (or failure) has this shard inline
        #: although the run wanted worker processes.
        self.degraded = False

    async def process_once(self, batch: List[int]) -> BatchResult:
        """One dispatch attempt, no retry policy (the service adds it)."""
        if self.executor is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self.executor, _process_batch, batch)
        assert self.state is not None
        return self.state.process(batch)

    async def finalize(self) -> List[ActorFinalize]:
        if self.executor is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self.executor, _finalize_shard)
        assert self.state is not None
        return self.state.finalize()

    async def checkpoint(self) -> Dict[str, Any]:
        """The shard's durable state, from wherever it currently runs."""
        if self.executor is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self.executor, _checkpoint_shard)
        assert self.state is not None
        return self.state.checkpoint()

    def rebuild_inline(self) -> None:
        """Event-sourced recovery: fresh inline state, history replayed."""
        if self.executor is not None:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None
        state = ShardState(self.spec, self.schedule)
        for past in self.history:
            state.process(past)
        self.state = state
        self.degraded = True

    def degrade_from_checkpoint(self, checkpoint: Dict[str, Any]) -> None:
        """Planned partition: continue inline from the worker's checkpoint."""
        if self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
            self.degraded = True
        self.state = ShardState.from_checkpoint(
            self.spec, self.schedule, checkpoint
        )


class ServeService:
    """Run the sharded edge service over one workload to completion."""

    def __init__(
        self, config: ServeConfig, schedule: Optional[EventSchedule] = None
    ) -> None:
        self.config = config
        self.schedule = schedule if schedule is not None else build_schedule(
            config.workload
        )
        #: Partition/heal events in stable order; each applies exactly
        #: once (``_net_applied`` tracks positions), so the fleet
        #: counters are invariant to shard count and batching.
        self._net_events = (
            config.scenario.network_events()
            if config.scenario is not None
            else []
        )
        self._net_applied: Set[int] = set()
        #: Stashed by :meth:`_build_backends` (process mode) so a
        #:  heal-rejoin can hand the schedule payload to a new worker.
        self._exported: Optional[Dict[str, Any]] = None

    def run(self) -> ServeResult:
        """Ingest the whole schedule, drain, and return the fleet result."""
        t0 = time.perf_counter()
        result = asyncio.run(self._run())
        result.wall_seconds = time.perf_counter() - t0
        if trace.enabled():
            trace.get_registry().merge(result.metrics)
        return result

    # -- orchestration ----------------------------------------------------

    def _build_backends(self) -> Tuple[List[_ShardBackend], Any, str]:
        """Build one backend per shard; fall back to inline on sandboxes."""
        cfg = self.config
        specs = [cfg.shard_spec(s) for s in range(cfg.n_shards)]
        if cfg.use_processes:
            exported, lease = export_payload(self.schedule.payload())
            executors: List[ProcessPoolExecutor] = []
            try:
                for spec in specs:
                    pool = ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_init_shard,
                        initargs=(spec, exported),
                    )
                    # Force the worker (and its initializer) to start now,
                    # so sandbox failures surface here, not mid-stream.
                    pool.submit(_process_batch, []).result()
                    executors.append(pool)
                backends = [
                    _ShardBackend(spec, self.schedule, pool)
                    for spec, pool in zip(specs, executors)
                ]
                self._exported = exported
                return backends, lease, "process"
            except _POOL_UNAVAILABLE + (BrokenExecutor,):
                for pool in executors:
                    pool.shutdown(wait=False)
                lease.release()
        backends = [_ShardBackend(spec, self.schedule, None) for spec in specs]
        return backends, None, "inline"

    async def _produce(
        self,
        queues: List[BoundedIngressQueue],
        enqueue_times: Dict[int, float],
    ) -> None:
        """Route every event to its shard queue, paced or backpressured."""
        cfg = self.config
        assignment = self.schedule.shard_assignment(cfg.n_shards)
        loop = asyncio.get_running_loop()
        start = loop.time()
        for seq in range(len(self.schedule)):
            queue = queues[int(assignment[seq])]
            if cfg.replay:
                await queue.put(seq)
            else:
                if cfg.qps > 0:
                    due = start + (seq + 1) / cfg.qps
                    delay = due - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                elif (seq + 1) % cfg.producer_burst == 0:
                    # Unpaced: still yield so consumers can interleave.
                    await asyncio.sleep(0)
                if queue.offer(seq):
                    enqueue_times[seq] = time.perf_counter()
        for queue in queues:
            queue.close()

    async def _consume(
        self,
        shard_id: int,
        queue: BoundedIngressQueue,
        backend: _ShardBackend,
        batches: List[BatchResult],
        enqueue_times: Dict[int, float],
        e2e: Optional[MetricsRegistry],
        parent: MetricsRegistry,
    ) -> None:
        """Drain one shard's queue to its backend until closed and empty.

        Planned partition/heal events land here, between batches, and
        any still pending when the queue closes are applied at drain
        time — each scenario event applies exactly once, whatever the
        shard count or batching.
        """
        while True:
            batch = await queue.get_batch(self.config.batch_max)
            if batch is None:
                await self._apply_network_events(shard_id, backend, None, parent)
                return
            await self._apply_network_events(shard_id, backend, batch[0], parent)
            result = await self._dispatch(backend, batch, parent)
            batches.append(result)
            if e2e is not None:
                done = time.perf_counter()
                for seq in batch:
                    started = enqueue_times.pop(seq, None)
                    if started is not None:
                        e2e.histogram("serve.e2e_seconds").observe(done - started)

    async def _dispatch(
        self,
        backend: _ShardBackend,
        batch: List[int],
        parent: MetricsRegistry,
    ) -> BatchResult:
        """Process one batch with timeout, bounded retry, and recovery.

        An attempt that times out or loses its worker is never
        re-dispatched to the same process (the batch is not idempotent
        inside a wedged worker): the executor is discarded, the shard is
        rebuilt inline from its event-sourced history, and the batch is
        retried there — exactly-once end to end.
        """
        cfg = self.config
        delay = cfg.dispatch_backoff_s
        last_error: Optional[BaseException] = None
        for attempt in range(cfg.dispatch_retries + 1):
            if attempt > 0:
                if not cfg.replay:
                    parent.counter(FLEET_DISPATCH_RETRIES).inc()
                if delay > 0:
                    await asyncio.sleep(delay)
                delay *= 2
            try:
                if cfg.dispatch_timeout_s is not None and backend.executor is not None:
                    result = await asyncio.wait_for(
                        backend.process_once(batch), cfg.dispatch_timeout_s
                    )
                else:
                    result = await backend.process_once(batch)
            except (asyncio.TimeoutError, BrokenExecutor) + _POOL_UNAVAILABLE as exc:
                last_error = exc
                if not cfg.replay:
                    parent.counter(FLEET_BACKEND_RECOVERIES).inc()
                backend.rebuild_inline()
                continue
            backend.history.append(list(batch))
            return result
        assert last_error is not None
        raise last_error

    async def _apply_network_events(
        self,
        shard_id: int,
        backend: _ShardBackend,
        next_seq: Optional[int],
        parent: MetricsRegistry,
    ) -> None:
        """Apply this shard's due partition/heal events, exactly once."""
        cfg = self.config
        for position, event in enumerate(self._net_events):
            if position in self._net_applied:
                continue
            if next_seq is not None and event.at > next_seq:
                break
            if event.shard % cfg.n_shards != shard_id:
                continue
            self._net_applied.add(position)
            if isinstance(event, NetworkPartition):
                parent.counter(FLEET_PARTITIONS).inc()
                backend.degrade_from_checkpoint(await backend.checkpoint())
            elif isinstance(event, NetworkHeal):
                parent.counter(FLEET_HEALS).inc()
                await self._rejoin(backend, parent)

    async def _rejoin(
        self, backend: _ShardBackend, parent: MetricsRegistry
    ) -> None:
        """Heal: try to hand the inline state back to a fresh worker."""
        if not backend.degraded or self._exported is None:
            return
        assert backend.state is not None
        checkpoint = backend.state.checkpoint()
        loop = asyncio.get_running_loop()
        try:
            pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=_restore_shard,
                initargs=(backend.spec, self._exported, checkpoint),
            )
            # Probe now so a failed spawn keeps us inline, not mid-batch.
            await loop.run_in_executor(pool, _process_batch, [])
        except _POOL_UNAVAILABLE + (BrokenExecutor,):
            return
        backend.executor = pool
        backend.state = None
        backend.degraded = False
        if not self.config.replay:
            parent.counter(FLEET_REJOINS).inc()

    async def _run(self) -> ServeResult:
        cfg = self.config
        backends, lease, backend_kind = self._build_backends()
        queues = [BoundedIngressQueue(cfg.queue_capacity) for _ in backends]
        per_shard_batches: List[List[BatchResult]] = [[] for _ in backends]
        enqueue_times: Dict[int, float] = {}
        parent = MetricsRegistry()
        e2e = None if cfg.replay else parent
        try:
            consumers = [
                asyncio.ensure_future(
                    self._consume(
                        shard_id, q, b, out, enqueue_times, e2e, parent
                    )
                )
                for shard_id, (q, b, out) in enumerate(
                    zip(queues, backends, per_shard_batches)
                )
            ]
            await self._produce(queues, enqueue_times)
            await asyncio.gather(*consumers)
            finalizes = [await backend.finalize() for backend in backends]
        finally:
            for backend in backends:
                if backend.executor is not None:
                    backend.executor.shutdown(wait=True)
            if lease is not None:
                lease.release()
        return self._assemble(
            queues, per_shard_batches, finalizes, parent, backend_kind
        )

    # -- accounting --------------------------------------------------------

    def _assemble(
        self,
        queues: List[BoundedIngressQueue],
        per_shard_batches: List[List[BatchResult]],
        finalizes: List[List[ActorFinalize]],
        parent: MetricsRegistry,
        backend_kind: str,
    ) -> ServeResult:
        """Merge shard results into the canonical fleet-wide view."""
        cfg = self.config
        responses: List[ServeResponse] = []
        event_obs: List[Tuple[int, Snapshot]] = []
        event_charges: List[Tuple[int, List[Charge]]] = []
        for shard_batches in per_shard_batches:
            for batch in shard_batches:
                responses.extend(batch.responses)
                event_obs.extend(batch.observations)
                event_charges.extend(batch.charges)
        responses.sort(key=lambda r: r.seq)
        if cfg.replay:
            # Canonical order: per-event snapshots by global seq, so the
            # merged floats associate identically at any shard count.
            event_obs.sort(key=lambda pair: pair[0])
            event_charges.sort(key=lambda pair: pair[0])

        actor_finalizes = sorted(
            (af for per_shard in finalizes for af in per_shard),
            key=lambda af: af.user_index,
        )

        # The audit mirrors the gauges' exact float-op order: each
        # collected snapshot's charges fold into a partial sum first
        # (that is how the collected registry accumulated the gauge),
        # then the partial folds into the running total (that is how
        # merge() adds snapshot gauge values) — so gauge == audit holds
        # bitwise.
        merged = MetricsRegistry()
        audit_eps = 0.0
        audit_delta = 0.0
        if cfg.replay:
            charges_by_seq = dict(event_charges)
            for seq, snap in event_obs:
                merged.merge(snap)
                part_eps = 0.0
                part_delta = 0.0
                for eps, delta in charges_by_seq.get(seq, []):
                    part_eps += eps
                    part_delta += delta
                audit_eps += part_eps
                audit_delta += part_delta
        else:
            # Live mode collects one snapshot per batch; fold each
            # batch's charges as one partial sum, in the same
            # shard-then-batch order the snapshots merge in.
            for shard_batches in per_shard_batches:
                for batch in shard_batches:
                    for _, snap in batch.observations:
                        merged.merge(snap)
                    part_eps = 0.0
                    part_delta = 0.0
                    for _, charges in batch.charges:
                        for eps, delta in charges:
                            part_eps += eps
                            part_delta += delta
                    audit_eps += part_eps
                    audit_delta += part_delta
        for af in actor_finalizes:
            merged.merge(af.metrics)
            part_eps = 0.0
            part_delta = 0.0
            for eps, delta in af.charges:
                part_eps += eps
                part_delta += delta
            audit_eps += part_eps
            audit_delta += part_delta

        enqueued = sum(q.enqueued for q in queues)
        dropped = sum(q.dropped for q in queues)
        parent.counter("serve.ingress.enqueued").inc(enqueued)
        parent.counter("serve.ingress.dropped").inc(dropped)
        merged.merge(parent.snapshot())

        shard_stats = [
            {
                "shard_id": spec_id,
                "enqueued": q.enqueued,
                "dropped": q.dropped,
                "high_water": q.high_water,
                "batches": len(per_shard_batches[spec_id]),
                "actors": len(finalizes[spec_id]),
                "events": sum(af.events_handled for af in finalizes[spec_id]),
            }
            for spec_id, q in enumerate(queues)
        ]
        return ServeResult(
            digest=response_digest(responses),
            responses=responses,
            metrics=merged.snapshot(),
            audit_epsilon=audit_eps,
            audit_delta=audit_delta,
            ledger_epsilon=sum(af.ledger_epsilon for af in actor_finalizes),
            ledger_delta=sum(af.ledger_delta for af in actor_finalizes),
            ledger_spends=sum(af.ledger_spends for af in actor_finalizes),
            enqueued=enqueued,
            dropped=dropped,
            processed=len(responses),
            n_actors=len(actor_finalizes),
            wall_seconds=0.0,
            backend=backend_kind,
            shard_stats=shard_stats,
        )
