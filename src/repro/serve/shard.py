"""Shard workers: the per-shard actor table and its processing loop.

A shard owns every :class:`~repro.serve.actor.UserActor` whose user id
hashes to it (:func:`~repro.serve.events.shard_of_user`) and processes
that subset of the event stream strictly in arrival order.  The same
:class:`ShardState` runs in three places — a dedicated worker process
(the production layout, one single-worker executor per shard so actor
affinity is guaranteed), an executor thread, or inline in the parent —
and produces bit-identical replay results in all three because nothing
it computes depends on wall time or process identity.

Observability is captured with :func:`repro.obs.trace.collect`, which
swaps in a fresh registry, so shard workers meter unconditionally and
the service merges the buffered snapshots parent-side:

* **replay mode** collects *per event*, and the service merges the
  per-event snapshots in global ``seq`` order — the float sums are
  accumulated in one canonical association no matter how many shards the
  events came from, which is what makes the merged metrics snapshot (and
  the epsilon/delta gauge audit) bit-identical across shard counts;
* **live mode** collects per batch — cheaper, and ordering guarantees
  are not part of the live contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.ads.delivery import filter_ads_to_aoi
from repro.ads.network import AdNetwork
from repro.edge.clock import (
    DEFAULT_VIRTUAL_TICK,
    TimeSource,
    VirtualTimeSource,
    WallTimeSource,
)
from repro.edge.device import EdgeConfig
from repro.edge.system import seed_campaigns
from repro.datagen.shanghai import shanghai_planar_bbox
from repro.fleet.runtime import FleetShardRuntime
from repro.fleet.scenario import Scenario
from repro.obs import trace
from repro.obs.metrics import Snapshot
from repro.parallel.shared import import_payload
from repro.serve.actor import UserActor
from repro.serve.egress import ServeResponse, build_response
from repro.serve.events import EventSchedule, shard_of_user

__all__ = [
    "ActorFinalize",
    "BatchResult",
    "ShardSpec",
    "ShardState",
]

#: One ledger charge as ``(epsilon, delta)``.
Charge = Tuple[float, float]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a shard worker needs to build its state (picklable)."""

    shard_id: int
    n_shards: int
    seed: int
    edge: EdgeConfig = EdgeConfig()
    n_campaigns: int = 200
    campaign_radius_m: float = 5_000.0
    replay: bool = False
    virtual_tick: float = DEFAULT_VIRTUAL_TICK
    #: Optional per-user epsilon cap enforced by each actor's ledger.
    ledger_max_epsilon: Optional[float] = None
    #: Test knob: sleep this long per event so a slow consumer can be
    #: provoked deterministically in backpressure tests.
    work_sleep_s: float = 0.0
    #: Optional fault-injection program (see :mod:`repro.fleet`): device
    #: crashes, restarts, handoffs, and slow devices applied on the
    #: deterministic event timeline inside this shard.
    scenario: Optional[Scenario] = None
    #: When set, the fleet checkpoint store mirrors actor snapshots to
    #: JSON files under this directory.
    checkpoint_dir: Optional[str] = None


@dataclass
class BatchResult:
    """What one ``process(batch)`` call hands back to the service."""

    shard_id: int
    responses: List[ServeResponse] = field(default_factory=list)
    #: ``(seq, snapshot)`` per event in replay mode; one ``(-1,
    #: snapshot)`` for the whole batch in live mode.
    observations: List[Tuple[int, Snapshot]] = field(default_factory=list)
    #: ``(seq, charges)``: the ledger entries each event appended.
    charges: List[Tuple[int, List[Charge]]] = field(default_factory=list)


@dataclass
class ActorFinalize:
    """One actor's graceful-drain summary (flush + final accounting)."""

    user_index: int
    metrics: Snapshot
    charges: List[Charge]
    events_handled: int
    ledger_epsilon: float
    ledger_delta: float
    ledger_spends: int


class ShardState:
    """The live state of one shard: its actors plus its ad-network view.

    Every shard builds the *same* campaign inventory from the same seed —
    the ad network is global infrastructure, not per-shard state — so a
    user's auction outcome does not depend on where their actor lives.
    """

    def __init__(self, spec: ShardSpec, schedule: EventSchedule) -> None:
        self.spec = spec
        self.schedule = schedule
        self.time_source: TimeSource = (
            VirtualTimeSource(tick=spec.virtual_tick)
            if spec.replay
            else WallTimeSource()
        )
        self.network = AdNetwork()
        self.network.register_campaigns(
            seed_campaigns(
                shanghai_planar_bbox(),
                spec.n_campaigns,
                spec.campaign_radius_m,
                np.random.default_rng(spec.seed),
                deterministic_ids=True,
            )
        )
        self.actors: Dict[int, UserActor] = {}
        self.fleet: Optional[FleetShardRuntime] = None
        if spec.scenario is not None:
            user_ids = list(self.schedule.user_ids)
            self.fleet = FleetShardRuntime(
                spec.scenario,
                user_ids,
                self.time_source,
                checkpoint_dir=spec.checkpoint_dir,
                owned=[
                    i
                    for i, uid in enumerate(user_ids)
                    if shard_of_user(uid, spec.n_shards) == spec.shard_id
                ],
            )

    def _actor(self, user_index: int) -> UserActor:
        actor = self.actors.get(user_index)
        if actor is None:
            epoch = 0 if self.fleet is None else self.fleet.spawn_epoch(user_index)
            actor = self.actors[user_index] = UserActor(
                user_id=self.schedule.user_ids[user_index],
                user_index=user_index,
                seed=self.spec.seed,
                config=self.spec.edge,
                time_source=self.time_source,
                ledger_max_epsilon=self.spec.ledger_max_epsilon,
                epoch=epoch,
            )
        return actor

    def _revive(self, state: Dict[str, Any]) -> UserActor:
        """Rebuild an actor from a fleet snapshot, wired to this shard."""
        return UserActor.from_snapshot(
            state,
            config=self.spec.edge,
            time_source=self.time_source,
            ledger_max_epsilon=self.spec.ledger_max_epsilon,
        )

    def _handle_event(self, seq: int) -> Tuple[Optional[ServeResponse], List[Charge]]:
        """Serve one event end to end: edge decision, auction, delivery.

        Under a fleet scenario the event may come back unserved (device
        down): ``(None, [])`` — no response, no charge, counted on
        ``fleet.unserved_events``.
        """
        event = self.schedule.event(seq)
        if self.fleet is not None:
            disposition = self.fleet.before_event(
                seq, event.user_index, self.actors, self._revive
            )
            if not disposition.served:
                return None, []
        actor = self._actor(event.user_index)
        entries_before = len(actor.ledger.entries)
        t0 = self.time_source.monotonic()
        reported, path = actor.handle_checkin(event.timestamp, event.x, event.y)
        request = self.network.new_request(event.user_id, reported, event.timestamp)
        bid_response = self.network.handle(request)
        delivered, stats = filter_ads_to_aoi(
            bid_response.ads, event.point, self.spec.edge.targeting_radius
        )
        elapsed = self.time_source.monotonic() - t0
        if self.spec.work_sleep_s > 0.0:
            time.sleep(self.spec.work_sleep_s)
        registry = trace.get_registry()
        registry.counter("serve.events").inc()
        registry.counter(f"serve.path.{path}").inc()
        registry.counter("serve.ads_delivered").inc(len(delivered))
        registry.histogram("serve.handle_seconds").observe(elapsed)
        response = build_response(
            seq=seq,
            user_index=event.user_index,
            path=path,
            reported=reported,
            delivered=delivered,
            received=stats.received,
        )
        return response, actor.charged_since(entries_before)

    def process(self, batch: List[int]) -> BatchResult:
        """Serve a batch of event sequence numbers, in order."""
        result = BatchResult(shard_id=self.spec.shard_id)
        if self.spec.replay:
            for seq in batch:
                with trace.collect() as obs:
                    response, charged = self._handle_event(seq)
                if response is not None:
                    result.responses.append(response)
                result.observations.append((seq, obs.metrics))
                result.charges.append((seq, charged))
        else:
            with trace.collect() as obs:
                for seq in batch:
                    response, charged = self._handle_event(seq)
                    if response is not None:
                        result.responses.append(response)
                    result.charges.append((seq, charged))
            result.observations.append((-1, obs.metrics))
        return result

    def finalize(self) -> List[ActorFinalize]:
        """Drain every seat (flush trailing windows), in user order.

        Ordering by ``user_index`` — not by shard arrival — lets the
        service merge finalize observations identically for any shard
        count.  Under a fleet scenario the drain also visits parked and
        destroyed seats: pending faults are applied (inside the seat's
        own collect window), parked snapshots are revived so their
        ledgers survive into the accounting, and a seat left with no
        actor (lossy crash, never rebuilt) contributes an empty record
        so its loss gauges still merge at the right position.
        """
        results: List[ActorFinalize] = []
        if self.fleet is None:
            seats = sorted(self.actors)
        else:
            seats = self.fleet.finalize_seats(self.actors)
        for user_index in seats:
            with trace.collect() as obs:
                if self.fleet is not None:
                    self.fleet.before_finalize(
                        user_index, self.actors, self._revive
                    )
                actor = self.actors.get(user_index)
                if actor is not None:
                    entries_before = len(actor.ledger.entries)
                    actor.finalize()
            if actor is None:
                results.append(
                    ActorFinalize(
                        user_index=user_index,
                        metrics=obs.metrics,
                        charges=[],
                        events_handled=0,
                        ledger_epsilon=0.0,
                        ledger_delta=0.0,
                        ledger_spends=0,
                    )
                )
                continue
            results.append(
                ActorFinalize(
                    user_index=user_index,
                    metrics=obs.metrics,
                    charges=actor.charged_since(entries_before),
                    events_handled=actor.events_handled,
                    ledger_epsilon=actor.ledger.total_epsilon,
                    ledger_delta=actor.ledger.total_delta,
                    ledger_spends=actor.ledger.spends,
                )
            )
        return results

    # -- checkpointing (network-partition support) ------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """The shard's full durable state, picklable and JSON-able.

        Carries every actor snapshot, the fleet runtime's seat/store
        state, and the virtual clock reading.  The ad network is *not*
        checkpointed: its campaign inventory is a pure function of the
        spec seed, and its request counter and bid log never reach the
        response or metrics digests — a restored shard rebuilds it
        fresh and continues bit-identically.
        """
        return {
            "actors": {
                str(i): actor.snapshot()
                for i, actor in sorted(self.actors.items())
            },
            "fleet": (
                None if self.fleet is None else self.fleet.checkpoint_state()
            ),
            "virtual_ticks": (
                self.time_source.ticks
                if isinstance(self.time_source, VirtualTimeSource)
                else None
            ),
        }

    @classmethod
    def from_checkpoint(
        cls,
        spec: ShardSpec,
        schedule: EventSchedule,
        checkpoint: Dict[str, Any],
    ) -> "ShardState":
        """Rebuild a shard from :meth:`checkpoint` output.

        The restored shard resumes the virtual timeline (``seek``) and
        every actor's RNG stream exactly, so a partition-degrade (or a
        heal-rejoin) in replay mode leaves both digests untouched.
        """
        state = cls(spec, schedule)
        ticks = checkpoint.get("virtual_ticks")
        if ticks is not None and isinstance(state.time_source, VirtualTimeSource):
            state.time_source.seek(int(ticks))
        fleet_state = checkpoint.get("fleet")
        if fleet_state is not None and state.fleet is not None:
            state.fleet.restore_state(fleet_state)
        for key, snap in checkpoint.get("actors", {}).items():
            state.actors[int(key)] = state._revive(snap)
        return state


# ---------------------------------------------------------------------------
# Process-backend entry points.  One single-worker ProcessPoolExecutor per
# shard calls _init_shard once (via its initializer) and then submits
# _process_batch/_finalize_shard; the module-global state is safe because
# the executor has exactly one worker.
# ---------------------------------------------------------------------------

_SHARD_STATE: Optional[ShardState] = None


def _init_shard(spec: ShardSpec, payload: Dict[str, Any]) -> None:
    """Worker initializer: import the (possibly shm-backed) schedule."""
    global _SHARD_STATE
    schedule = EventSchedule.from_payload(import_payload(payload))
    _SHARD_STATE = ShardState(spec, schedule)


def _process_batch(batch: List[int]) -> BatchResult:
    """Serve one batch in the worker's shard state."""
    if _SHARD_STATE is None:
        raise RuntimeError("shard worker used before _init_shard")
    return _SHARD_STATE.process(batch)


def _finalize_shard() -> List[ActorFinalize]:
    """Drain the worker's actors for graceful shutdown."""
    if _SHARD_STATE is None:
        raise RuntimeError("shard worker used before _init_shard")
    return _SHARD_STATE.finalize()


def _checkpoint_shard() -> Dict[str, Any]:
    """Snapshot the worker's shard state (partition-degrade path)."""
    if _SHARD_STATE is None:
        raise RuntimeError("shard worker used before _init_shard")
    return _SHARD_STATE.checkpoint()


def _restore_shard(
    spec: ShardSpec, payload: Dict[str, Any], checkpoint: Dict[str, Any]
) -> None:
    """Worker initializer for heal-rejoin: resume from a checkpoint."""
    global _SHARD_STATE
    schedule = EventSchedule.from_payload(import_payload(payload))
    _SHARD_STATE = ShardState.from_checkpoint(spec, schedule, checkpoint)
