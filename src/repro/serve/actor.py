"""The per-user actor: one user's entire edge state behind one mailbox.

The batch :class:`~repro.edge.device.EdgeDevice` multiplexes many users
over shared mechanisms and a shared RNG; that sharing is exactly what a
sharded service cannot have, because which users land together on a
shard depends on the shard count.  A :class:`UserActor` therefore owns
*everything* private to its user — profile windows, the permanent
obfuscation table, the pin-state, the privacy ledger, the nomadic
accountant, and the RNG — and seeds the RNG from
``SeedSequence(entropy=seed, spawn_key=(user_index,))``: the actor's
behaviour is a pure function of ``(seed, user_index,`` its own event
subsequence``)``, never of which shard or process runs it.

Events for one user are processed strictly in schedule order (the shard
loop guarantees it), which is the actor-model serialisation the edge's
permanence invariant needs: the obfuscation table is only ever touched
by one event at a time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.ledger import PrivacyLedger
from repro.edge.clock import TimeSource, WallTimeSource
from repro.edge.device import EdgeConfig
from repro.edge.location_management import LocationManagementModule
from repro.edge.obfuscation import ObfuscationModule
from repro.edge.output_selection import OutputSelectionModule
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn

__all__ = ["UserActor"]


class UserActor:
    """One user's edge-private state and serve logic."""

    def __init__(
        self,
        user_id: str,
        user_index: int,
        seed: int,
        config: EdgeConfig,
        time_source: Optional[TimeSource] = None,
        ledger_max_epsilon: Optional[float] = None,
    ) -> None:
        self.user_id = user_id
        self.user_index = user_index
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(2, user_index))
        )
        self.config = config
        self.time_source: TimeSource = (
            time_source if time_source is not None else WallTimeSource()
        )
        self._nfold = NFoldGaussianMechanism(config.budget, rng=rng)
        self._nomadic = GaussianMechanism(config.budget.with_n(1), rng=rng)
        self.ledger = PrivacyLedger(max_epsilon=ledger_max_epsilon)
        self.accountant: LongitudinalExposureAccountant = (
            LongitudinalExposureAccountant()
        )
        self.management = LocationManagementModule(
            eta=config.eta,
            window_days=config.window_days,
            connect_radius=config.connect_radius,
        )
        self.obfuscation = ObfuscationModule(
            self._nfold,
            match_radius=config.match_radius,
            ledger=self.ledger,
            time_source=self.time_source,
        )
        self.selection = OutputSelectionModule.posterior(
            self._nfold.posterior_sigma, rng=rng
        )
        self.events_handled = 0

    def handle_checkin(self, timestamp: float, x: float, y: float) -> Tuple[Point, str]:
        """Record the check-in and choose the location to report.

        The pinned-candidate path serves known top locations via
        posterior output selection (free post-processing); the nomadic
        path draws a fresh one-shot perturbation and charges its
        longitudinal exposure to the accountant — every release that
        leaves the actor is paid for.
        """
        true_location = Point(x, y)
        new_tops = self.management.record(CheckIn(timestamp, true_location))
        if new_tops:
            self.obfuscation.ensure_obfuscated(new_tops)
        candidates = self.obfuscation.candidates_for(true_location)
        self.events_handled += 1
        if candidates is not None:
            return self.selection.select(candidates), "top"
        reported = self._nomadic.obfuscate(true_location)[0]
        self.accountant.observe(
            self.config.budget.epsilon / self.config.budget.r
        )
        return reported, "nomadic"

    def finalize(self) -> None:
        """Flush the trailing profile window (graceful shutdown).

        Any tops surfacing from the partial window are pinned — and
        ledger-charged — exactly as a window rollover would have.
        """
        tops = self.management.flush()
        if tops:
            self.obfuscation.ensure_obfuscated(tops)

    def charged_since(self, n_entries: int) -> List[Tuple[float, float]]:
        """(epsilon, delta) of ledger entries appended after ``n_entries``."""
        return [
            (entry.budget.epsilon, entry.budget.delta)
            for entry in self.ledger.entries[n_entries:]
        ]
