"""The per-user actor: one user's entire edge state behind one mailbox.

The batch :class:`~repro.edge.device.EdgeDevice` multiplexes many users
over shared mechanisms and a shared RNG; that sharing is exactly what a
sharded service cannot have, because which users land together on a
shard depends on the shard count.  A :class:`UserActor` therefore owns
*everything* private to its user — profile windows, the permanent
obfuscation table, the pin-state, the privacy ledger, the nomadic
accountant, and the RNG — and seeds the RNG from
``SeedSequence(entropy=seed, spawn_key=(user_index,))``: the actor's
behaviour is a pure function of ``(seed, user_index,`` its own event
subsequence``)``, never of which shard or process runs it.

Events for one user are processed strictly in schedule order (the shard
loop guarantees it), which is the actor-model serialisation the edge's
permanence invariant needs: the obfuscation table is only ever touched
by one event at a time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.ledger import PrivacyLedger
from repro.edge.clock import TimeSource, WallTimeSource
from repro.edge.device import EdgeConfig
from repro.edge.location_management import LocationManagementModule
from repro.edge.obfuscation import ObfuscationModule
from repro.edge.output_selection import OutputSelectionModule
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn

__all__ = ["UserActor"]


class UserActor:
    """One user's edge-private state and serve logic."""

    def __init__(
        self,
        user_id: str,
        user_index: int,
        seed: int,
        config: EdgeConfig,
        time_source: Optional[TimeSource] = None,
        ledger_max_epsilon: Optional[float] = None,
        epoch: int = 0,
    ) -> None:
        self.user_id = user_id
        self.user_index = user_index
        self.seed = seed
        #: Incarnation number.  Epoch 0 is the original actor; a *lossy*
        #: device crash (state not persisted) bumps it, so the rebuilt
        #: actor draws a fresh — still deterministic — noise stream
        #: instead of replaying the one the attacker already saw.  Epoch 0
        #: keeps the historical ``(2, user_index)`` spawn key so no-fault
        #: digests are unchanged.
        self.epoch = epoch
        spawn_key: Tuple[int, ...] = (
            (2, user_index) if epoch == 0 else (2, user_index, epoch)
        )
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=spawn_key)
        )
        #: The single Generator shared by the n-fold mechanism, the
        #: nomadic mechanism, and posterior output selection.  Keeping the
        #: reference lets checkpoint/restore capture every noise stream by
        #: saving one bit-generator state.
        self._rng = rng
        self.config = config
        self.time_source: TimeSource = (
            time_source if time_source is not None else WallTimeSource()
        )
        self._nfold = NFoldGaussianMechanism(config.budget, rng=rng)
        self._nomadic = GaussianMechanism(config.budget.with_n(1), rng=rng)
        self.ledger = PrivacyLedger(max_epsilon=ledger_max_epsilon)
        self.accountant: LongitudinalExposureAccountant = (
            LongitudinalExposureAccountant()
        )
        self.management = LocationManagementModule(
            eta=config.eta,
            window_days=config.window_days,
            connect_radius=config.connect_radius,
        )
        self.obfuscation = ObfuscationModule(
            self._nfold,
            match_radius=config.match_radius,
            ledger=self.ledger,
            time_source=self.time_source,
        )
        self.selection = OutputSelectionModule.posterior(
            self._nfold.posterior_sigma, rng=rng
        )
        self.events_handled = 0

    def handle_checkin(self, timestamp: float, x: float, y: float) -> Tuple[Point, str]:
        """Record the check-in and choose the location to report.

        The pinned-candidate path serves known top locations via
        posterior output selection (free post-processing); the nomadic
        path draws a fresh one-shot perturbation and charges its
        longitudinal exposure to the accountant — every release that
        leaves the actor is paid for.
        """
        true_location = Point(x, y)
        new_tops = self.management.record(CheckIn(timestamp, true_location))
        if new_tops:
            self.obfuscation.ensure_obfuscated(new_tops)
        candidates = self.obfuscation.candidates_for(true_location)
        self.events_handled += 1
        if candidates is not None:
            return self.selection.select(candidates), "top"
        reported = self._nomadic.obfuscate(true_location)[0]
        self.accountant.observe(
            self.config.budget.epsilon / self.config.budget.r
        )
        return reported, "nomadic"

    def finalize(self) -> None:
        """Flush the trailing profile window (graceful shutdown).

        Any tops surfacing from the partial window are pinned — and
        ledger-charged — exactly as a window rollover would have.
        """
        tops = self.management.flush()
        if tops:
            self.obfuscation.ensure_obfuscated(tops)

    def charged_since(self, n_entries: int) -> List[Tuple[float, float]]:
        """(epsilon, delta) of ledger entries appended after ``n_entries``."""
        return [
            (entry.budget.epsilon, entry.budget.delta)
            for entry in self.ledger.entries[n_entries:]
        ]

    def snapshot(self) -> Dict[str, Any]:
        """The actor's full durable state as JSON-able primitives.

        Everything a crashed device needs to resume *bit-identically*:
        the module states, the privacy ledger, the longitudinal
        accountant, and — crucially — the state of the one RNG shared by
        all three noise consumers.  ``ledger_max_epsilon`` rides along
        inside the ledger state; ``seed``/``epoch`` pin the identity.
        """
        return {
            "user_id": self.user_id,
            "user_index": self.user_index,
            "seed": self.seed,
            "epoch": self.epoch,
            "events_handled": self.events_handled,
            "rng_state": self._rng.bit_generator.state,
            "ledger": self.ledger.to_state(),
            "accountant": self.accountant.to_state(),
            "management": self.management.snapshot(),
            "obfuscation": self.obfuscation.snapshot(),
            "selection_count": self.selection.selection_count,
        }

    @classmethod
    def from_snapshot(
        cls,
        state: Dict[str, Any],
        config: EdgeConfig,
        time_source: Optional[TimeSource] = None,
        ledger_max_epsilon: Optional[float] = None,
    ) -> "UserActor":
        """Rebuild an actor from :meth:`snapshot` output.

        The actor is constructed normally (wiring mechanisms, modules and
        the shared RNG exactly as a fresh one would), then each module's
        durable state is overlaid.  Restoring the bit-generator state once
        covers the n-fold, nomadic, and selection streams because they
        share the generator.  Ledger and accountant restoration bypass
        ``spend``/``observe``, so no budget gauge is ever re-emitted — a
        restore is free, only new releases are charged.
        """
        actor = cls(
            user_id=str(state["user_id"]),
            user_index=int(state["user_index"]),
            seed=int(state["seed"]),
            config=config,
            time_source=time_source,
            ledger_max_epsilon=ledger_max_epsilon,
            epoch=int(state.get("epoch", 0)),
        )
        actor.events_handled = int(state.get("events_handled", 0))
        actor._rng.bit_generator.state = state["rng_state"]
        actor.ledger = PrivacyLedger.from_state(state["ledger"])
        actor.obfuscation.ledger = actor.ledger
        actor.accountant = LongitudinalExposureAccountant.from_state(
            state["accountant"]
        )
        actor.management.restore(state["management"])
        actor.obfuscation.restore(state["obfuscation"])
        actor.selection.selection_count = int(state.get("selection_count", 0))
        return actor
