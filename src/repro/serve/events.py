"""The serve workload: a seeded check-in/bid-request event schedule.

Every event the service ingests is one user check-in that fires one LBA
bid request — the same unit the batch simulator replays, but laid out as
a flat, columnar schedule so the whole workload can ship to shard worker
processes once (via :mod:`repro.parallel.shared`) and per-event messages
stay as small as an integer index.

The schedule is a pure function of its :class:`ServeWorkloadConfig`:
users come from the datagen mobility models with one
``SeedSequence(entropy=seed, spawn_key=(user_index,))`` stream each, and
the global event order is the timestamp-sorted merge of the per-user
traces.  That purity is what replay mode's bit-identical digest rests
on — any shard count consumes the same schedule in the same per-user
order.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from repro.datagen.mobility import MobilityModel, TopLocation
from repro.datagen.shanghai import STUDY_START_TS, shanghai_planar_bbox
from repro.geo.point import Point

__all__ = [
    "ServeWorkloadConfig",
    "ServeEvent",
    "EventSchedule",
    "build_schedule",
    "shard_of_user",
    "workload_user_ids",
]


@dataclass(frozen=True)
class ServeWorkloadConfig:
    """Knobs of the generated event stream."""

    n_users: int = 50
    n_events: int = 2_000
    n_campaigns: int = 200
    campaign_radius_m: float = 5_000.0
    seed: int = 0
    #: Event-time span of the stream.  Long enough that the default
    #: 90-day profile window rolls over at least once per user, so both
    #: serve paths (pinned top and nomadic) are exercised.
    days: float = 120.0
    start_ts: float = STUDY_START_TS

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.n_events < 1:
            raise ValueError(f"n_events must be >= 1, got {self.n_events}")
        if self.n_campaigns < 0:
            raise ValueError("n_campaigns must be non-negative")
        if self.days <= 0:
            raise ValueError("days must be positive")


@dataclass(frozen=True)
class ServeEvent:
    """One ingested event: a user check-in that triggers a bid request."""

    seq: int
    user_index: int
    user_id: str
    timestamp: float
    x: float
    y: float

    @property
    def point(self) -> Point:
        """The true (raw) check-in location — edge-side only."""
        return Point(self.x, self.y)


def shard_of_user(user_id: str, n_shards: int) -> int:
    """The shard owning ``user_id``'s actor: ``stable_hash(user_id) % n_shards``.

    CRC32 rather than builtin ``hash`` because the routing must be stable
    across processes and runs (``PYTHONHASHSEED`` randomizes ``str``
    hashing per interpreter), and the shard assignment is part of the
    service's documented contract.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(user_id.encode("utf-8")) % n_shards


class EventSchedule:
    """The whole workload as columnar arrays plus the user-id table.

    Columns are parallel over the global event sequence (row ``i`` is the
    event with ``seq == i``, timestamp-ordered).  The ``payload`` dict is
    what ships to shard workers — large arrays travel via shared memory.
    """

    def __init__(
        self,
        user_ids: List[str],
        user_index: np.ndarray,
        timestamps: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
    ) -> None:
        n = len(user_index)
        if not (len(timestamps) == len(xs) == len(ys) == n):
            raise ValueError("schedule columns must have equal length")
        self.user_ids = list(user_ids)
        self.user_index = np.ascontiguousarray(user_index, dtype=np.int64)
        self.timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        self.xs = np.ascontiguousarray(xs, dtype=np.float64)
        self.ys = np.ascontiguousarray(ys, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.user_index)

    @property
    def n_users(self) -> int:
        """Number of distinct users in the schedule."""
        return len(self.user_ids)

    def event(self, seq: int) -> ServeEvent:
        """Materialise one event row as a :class:`ServeEvent`."""
        idx = int(self.user_index[seq])
        return ServeEvent(
            seq=seq,
            user_index=idx,
            user_id=self.user_ids[idx],
            timestamp=float(self.timestamps[seq]),
            x=float(self.xs[seq]),
            y=float(self.ys[seq]),
        )

    def shard_assignment(self, n_shards: int) -> np.ndarray:
        """Per-event owning shard (``int64``), via :func:`shard_of_user`."""
        user_shards = np.asarray(
            [shard_of_user(uid, n_shards) for uid in self.user_ids], dtype=np.int64
        )
        return user_shards[self.user_index]

    def payload(self) -> Dict[str, Any]:
        """The shard-transport payload tree (arrays + the user-id table)."""
        return {
            "user_ids": self.user_ids,
            "user_index": self.user_index,
            "timestamps": self.timestamps,
            "xs": self.xs,
            "ys": self.ys,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "EventSchedule":
        """Rebuild a schedule from a (possibly shm-imported) payload tree."""
        return cls(
            user_ids=list(payload["user_ids"]),
            user_index=np.asarray(payload["user_index"]),
            timestamps=np.asarray(payload["timestamps"]),
            xs=np.asarray(payload["xs"]),
            ys=np.asarray(payload["ys"]),
        )


def workload_user_ids(n_users: int) -> List[str]:
    """The canonical workload user ids, without building a schedule.

    Scenario builders need the id list (fault targets hash the user id
    to a device) before any schedule exists; this is the same format
    :func:`build_schedule` assigns, kept in one place so they cannot
    drift.
    """
    return [f"user-{i:06d}" for i in range(n_users)]


def _user_model(user_index: int, config: ServeWorkloadConfig) -> MobilityModel:
    """One user's mobility model from their private seed stream.

    Spawn-keyed per user (never sequential) so any subset of users — and
    therefore any shard layout — sees exactly the same models.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(0, user_index))
    )
    region = shanghai_planar_bbox()
    home_region = region.expand(-10_000.0)
    hx = float(rng.uniform(home_region.min_x, home_region.max_x))
    hy = float(rng.uniform(home_region.min_y, home_region.max_y))
    n_tops = int(rng.choice([1, 2, 3], p=[0.2, 0.5, 0.3]))
    anchors = [(Point(hx, hy), "home")]
    for kind, (lo, hi) in zip(("work", "other"), ((2_000.0, 12_000.0), (500.0, 5_000.0))):
        if len(anchors) >= n_tops:
            break
        radius = float(rng.uniform(lo, hi))
        theta = float(rng.uniform(0.0, 2.0 * math.pi))
        anchors.append(
            (Point(hx + radius * math.cos(theta), hy + radius * math.sin(theta)), kind)
        )
    top1 = float(rng.uniform(0.55, 0.75))
    rest = np.sort(rng.dirichlet(np.ones(max(1, n_tops - 1))))[::-1] * (1.0 - top1)
    weights = np.concatenate([[top1], rest])[:n_tops]
    tops = [
        TopLocation(point=p, weight=float(w), kind=kind)
        for (p, kind), w in zip(anchors, weights / weights.sum())
    ]
    return MobilityModel(
        user_id=f"user-{user_index:06d}",  # == workload_user_ids(n)[user_index]
        top_locations=tops,
        nomadic_fraction=float(rng.uniform(0.05, 0.2)),
        region=region,
    )


def build_schedule(config: ServeWorkloadConfig) -> EventSchedule:
    """Generate the timestamp-merged event schedule for ``config``.

    Events are split as evenly as possible across users (the first
    ``n_events % n_users`` users get one extra), each user's check-ins
    are drawn from their own spawned RNG stream, and the global order is
    the stable timestamp sort of the union.
    """
    base, extra = divmod(config.n_events, config.n_users)
    user_ids: List[str] = []
    all_user_idx: List[np.ndarray] = []
    all_ts: List[np.ndarray] = []
    all_x: List[np.ndarray] = []
    all_y: List[np.ndarray] = []
    for user_index in range(config.n_users):
        model = _user_model(user_index, config)
        user_ids.append(model.user_id)
        count = base + (1 if user_index < extra else 0)
        if count == 0:
            continue
        trace_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(1, user_index))
        )
        trace = model.generate(count, config.start_ts, config.days, trace_rng)
        all_user_idx.append(np.full(len(trace), user_index, dtype=np.int64))
        all_ts.append(np.asarray([c.timestamp for c in trace], dtype=np.float64))
        all_x.append(np.asarray([c.point.x for c in trace], dtype=np.float64))
        all_y.append(np.asarray([c.point.y for c in trace], dtype=np.float64))
    user_index_col = np.concatenate(all_user_idx)
    ts_col = np.concatenate(all_ts)
    x_col = np.concatenate(all_x)
    y_col = np.concatenate(all_y)
    # Stable sort: equal timestamps keep user order, so the merged
    # schedule is reproducible even on ties.
    order = np.argsort(ts_col, kind="stable")
    return EventSchedule(
        user_ids=user_ids,
        user_index=user_index_col[order],
        timestamps=ts_col[order],
        xs=x_col[order],
        ys=y_col[order],
    )
