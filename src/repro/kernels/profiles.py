"""Population-level location profiling: every user in one aggregation pass.

Replaces ``profiles_from_offsets``'s per-user ``LocationProfile.from_xy``
loop for bulk consumers: component labels come from the population
clustering kernel, centroids from ONE weighted ``bincount`` per axis over
globally renumbered components, and the per-user (frequency desc, x, y)
profile order from one global ``lexsort`` keyed by user first.

Bit-identity with the per-user path holds because ``bincount`` accumulates
in index order (each component's addends arrive in the same order either
way), and ``lexsort`` with the user id as primary key reproduces each
user's standalone sort (it is stable, and full-key ties preserve the same
input order both ways).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.cluster import population_component_labels
from repro.profiles.profile import DEFAULT_CONNECT_RADIUS_M

__all__ = ["ProfileColumns", "population_profiles"]


@dataclass(frozen=True)
class ProfileColumns:
    """CSR columns of every user's location profile, in profile order.

    ``offsets[i]:offsets[i+1]`` slices user ``i``'s clustered locations,
    sorted by decreasing visit count (ties by x then y) — exactly the
    order :class:`repro.profiles.profile.LocationProfile` exposes.
    """

    xs: np.ndarray
    ys: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray

    @property
    def n_users(self) -> int:
        """Number of users the profile columns cover."""
        return len(self.offsets) - 1

    def user_slice(self, i: int) -> slice:
        """The slice of user ``i``'s profile rows in the CSR columns."""
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))


def population_profiles(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
) -> ProfileColumns:
    """Profile an entire CSR shard in one pass.

    For each user ``i`` the returned columns equal
    ``LocationProfile.from_xy(xs[sl], ys[sl], connect_radius)``'s
    ``xs``/``ys``/``counts`` bit for bit.
    """
    xs = np.ascontiguousarray(xs, dtype=float)
    ys = np.ascontiguousarray(ys, dtype=float)
    offsets = np.asarray(offsets, dtype=np.int64)
    n_users = len(offsets) - 1
    n = len(xs)
    if n == 0:
        empty = np.empty(0, dtype=float)
        return ProfileColumns(
            empty, empty.copy(), np.empty(0, dtype=np.int64),
            np.zeros(n_users + 1, dtype=np.int64),
        )

    labels = population_component_labels(xs, ys, offsets, connect_radius)
    sizes_u = np.diff(offsets)
    user_of_point = np.repeat(np.arange(n_users, dtype=np.int64), sizes_u)

    # Per-user component counts -> global component renumbering that keeps
    # components grouped by user and ordered by per-user label.
    ncomp = np.zeros(n_users, dtype=np.int64)
    nonempty = sizes_u > 0
    if nonempty.any():
        ncomp[nonempty] = (
            np.maximum.reduceat(labels, offsets[:-1][nonempty]) + 1
        )
    comp_offsets = np.concatenate([[0], np.cumsum(ncomp)])
    comp_id = comp_offsets[:-1][user_of_point] + labels
    total_comps = int(comp_offsets[-1])

    counts = np.bincount(comp_id, minlength=total_comps)
    cx = np.bincount(comp_id, weights=xs, minlength=total_comps) / counts
    cy = np.bincount(comp_id, weights=ys, minlength=total_comps) / counts

    # Per-user profile order via one global lexsort (user id primary).
    comp_user = np.repeat(np.arange(n_users, dtype=np.int64), ncomp)
    order = np.lexsort((cy, cx, -counts, comp_user))
    return ProfileColumns(
        cx[order], cy[order], counts[order].astype(np.int64), comp_offsets
    )
