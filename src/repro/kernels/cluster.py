"""Population-level connectivity clustering over CSR check-in shards.

:func:`repro.geo.index.component_labels` clusters ONE user's check-ins
with a cell-level union-find whose python loop runs once per adjacent
cell pair.  At population scale (a 100k-user shard holds millions of
check-ins) that per-user python work dominates the profiling stage, so
this kernel clusters **every user of a shard in one array pass**:

* cells are keyed exactly like the per-user index (side
  ``radius / sqrt(2)``, ``floor`` bucketing) but under a composite
  ``user * stride + kx * width + ky`` code, so one sorted code array
  holds every user's grid and users can never alias each other's cells;
* candidate cell pairs come from the same 12 half-plane neighbour
  offsets, located with one ``searchsorted`` per offset over all users
  at once;
* pairs are resolved with per-cell bounding boxes first — box distances
  are monotone bounds of the exact pair predicate, so "surely
  connected" / "surely disconnected" decisions agree with the
  point-level test in exact float arithmetic; the ambiguous remainder
  goes through staged capped witness probes (dropping pairs whose cells
  a provisional component pass already connects), and only the tiny
  leftover pays the full batched cross-pair distance test;
* cell connectivity goes through
  :func:`scipy.sparse.csgraph.connected_components` (C speed) instead
  of a python union-find.

The resulting per-user labels are **bit-identical** to running
``component_labels(user_coords, radius)`` user by user: the edge set is
decided by the same predicate ``dx*dx + dy*dy <= r2`` over the same
cell adjacencies, and label ranks follow the same (size desc, first
member asc) contract.  The property suite pins this equivalence.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components as _graph_components

__all__ = ["population_component_labels", "PAIR_TEST_BATCH", "PROBE_CAPS"]

#: Upper bound on cross-pair elements tested per vectorised batch; keeps
#: the ambiguous-pair resolution memory-bounded on dense shards.
PAIR_TEST_BATCH = 2_000_000

#: Point caps of the staged connectivity probes.  Each stage tests the
#: first ``cap`` points of each side of every still-ambiguous cell pair;
#: any hit is a real edge, and pairs whose cells land in one component
#: are dropped before the next (larger) stage.  Only the tiny remainder
#: pays the full cross-pair test.
PROBE_CAPS = (2, 8)


def _composite_cell_codes(
    xs: np.ndarray, ys: np.ndarray, user_of_point: np.ndarray, cell: float
) -> Tuple[np.ndarray, int]:
    """Collision-free int64 codes ``user * stride + kx * width + ky``.

    ``width``/``stride`` leave >= 2 cells of slack beyond the global key
    ranges, so the +-2 neighbour offsets below can neither alias a cell
    in an adjacent grid row nor reach into another user's code block —
    neighbour lookups stay strictly per-user.
    """
    kx = np.floor(xs / cell).astype(np.int64)
    ky = np.floor(ys / cell).astype(np.int64)
    kx -= kx.min()
    ky -= ky.min()
    width = int(ky.max()) + 5
    stride = (int(kx.max()) + 5) * width
    return user_of_point * stride + kx * width + ky, width


def _neighbor_offsets(cell: float, radius: float) -> list:
    """The half-plane cell offsets whose minimum gap can be <= radius.

    Identical construction to the per-user grid index: Chebyshev
    distance <= 2, each unordered pair once, corner-gap filtered.
    """
    return [
        (ox, oy)
        for ox in range(-2, 3)
        for oy in range(-2, 3)
        if (ox, oy) > (0, 0)
        and math.hypot(max(0, abs(ox) - 1), max(0, abs(oy) - 1)) * cell <= radius
    ]


def _resolve_ambiguous_pairs(
    xs: np.ndarray,
    ys: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    pa: np.ndarray,
    pb: np.ndarray,
    r2: float,
) -> np.ndarray:
    """Exact cross-pair connectivity for cell pairs the boxes left open.

    For each candidate pair ``(pa[i], pb[i])`` of cell indices, tests
    whether ANY cross point pair satisfies ``dx*dx + dy*dy <= r2`` — the
    exact predicate of the per-user path.  Work is chunked so no batch
    materialises more than :data:`PAIR_TEST_BATCH` point pairs.
    """
    n_pairs = len(pa)
    connected = np.zeros(n_pairs, dtype=bool)
    if n_pairs == 0:
        return connected
    cost = sizes[pa] * sizes[pb]
    bounds = np.concatenate([[0], np.cumsum(cost)])
    batch_start = 0
    while batch_start < n_pairs:
        batch_end = batch_start
        base = bounds[batch_start]
        while (
            batch_end < n_pairs
            and (bounds[batch_end + 1] - base <= PAIR_TEST_BATCH or batch_end == batch_start)
        ):
            batch_end += 1
        sel = slice(batch_start, batch_end)
        a, b = pa[sel], pb[sel]
        na, nb = sizes[a], sizes[b]
        pair_cost = na * nb
        total = int(pair_cost.sum())
        pair_id = np.repeat(np.arange(batch_end - batch_start), pair_cost)
        t = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(pair_cost)])[:-1], pair_cost
        )
        nb_rep = np.repeat(nb, pair_cost)
        ai = t // nb_rep
        bi = t - ai * nb_rep
        pts_a = order[np.repeat(starts[a], pair_cost) + ai]
        pts_b = order[np.repeat(starts[b], pair_cost) + bi]
        dx = xs[pts_b] - xs[pts_a]
        dy = ys[pts_b] - ys[pts_a]
        hit = dx * dx + dy * dy <= r2
        if hit.any():
            local = np.zeros(batch_end - batch_start, dtype=bool)
            local[pair_id[hit]] = True
            connected[sel] = local
        batch_start = batch_end
    return connected


def _probe_pairs(
    xs: np.ndarray,
    ys: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    pa: np.ndarray,
    pb: np.ndarray,
    r2: float,
    cap: int,
) -> np.ndarray:
    """Capped any-hit witness test over the first ``cap`` points per side.

    A dense rectangular probe: cells smaller than ``cap`` repeat their
    last sampled point, which only duplicates individual pair tests and
    therefore cannot change an any-hit outcome.  A ``True`` is always a
    real edge (the exact predicate fired on a real cross pair); a
    ``False`` only means the pair stays ambiguous.
    """
    n_pairs = len(pa)
    hit = np.zeros(n_pairs, dtype=bool)
    take = np.arange(cap, dtype=np.int64)
    per_batch = max(1, PAIR_TEST_BATCH // (cap * cap))
    for lo in range(0, n_pairs, per_batch):
        a = pa[lo:lo + per_batch]
        b = pb[lo:lo + per_batch]
        ia = starts[a][:, None] + np.minimum(take, sizes[a][:, None] - 1)
        ib = starts[b][:, None] + np.minimum(take, sizes[b][:, None] - 1)
        ax, ay = xs[order[ia]], ys[order[ia]]
        bx, by = xs[order[ib]], ys[order[ib]]
        dx = ax[:, :, None] - bx[:, None, :]
        dy = ay[:, :, None] - by[:, None, :]
        hit[lo:lo + per_batch] = (dx * dx + dy * dy <= r2).any(axis=(1, 2))
    return hit


def population_component_labels(
    xs: np.ndarray, ys: np.ndarray, offsets: np.ndarray, radius: float
) -> np.ndarray:
    """Per-user component labels for every check-in of a CSR shard.

    ``labels[offsets[i]:offsets[i+1]]`` equals
    ``component_labels(column_stack((xs, ys))[slice], radius)`` for each
    user ``i``, bit for bit: within each user, label ``k`` selects that
    user's ``k``-th largest component (ties by smallest member index).
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    xs = np.ascontiguousarray(xs, dtype=float)
    ys = np.ascontiguousarray(ys, dtype=float)
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(xs)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    user_of_point = np.repeat(
        np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
    )

    # Same cell side as the per-user grid: same-cell points are within
    # radius by construction.
    cell = radius / math.sqrt(2.0)
    code, width = _composite_cell_codes(xs, ys, user_of_point, cell)

    order = np.argsort(code, kind="stable")
    sorted_code = code[order]
    is_start = np.ones(n, dtype=bool)
    is_start[1:] = sorted_code[1:] != sorted_code[:-1]
    starts = np.flatnonzero(is_start)
    unique_codes = sorted_code[starts]
    n_cells = len(unique_codes)
    sizes = np.diff(np.append(starts, n))
    cell_of_point = np.empty(n, dtype=np.int64)
    cell_of_point[order] = np.repeat(np.arange(n_cells, dtype=np.int64), sizes)

    # Per-cell point bounding boxes (segments are non-empty by
    # construction, so reduceat is well defined).
    sx, sy = xs[order], ys[order]
    box_min_x = np.minimum.reduceat(sx, starts)
    box_max_x = np.maximum.reduceat(sx, starts)
    box_min_y = np.minimum.reduceat(sy, starts)
    box_max_y = np.maximum.reduceat(sy, starts)

    # Candidate neighbour pairs: one searchsorted per offset, all users
    # at once (composite codes guarantee matches stay within one user).
    pair_a_parts, pair_b_parts = [], []
    for ox, oy in _neighbor_offsets(cell, radius):
        target = unique_codes + (ox * width + oy)
        pos = np.searchsorted(unique_codes, target)
        pos = np.minimum(pos, n_cells - 1)
        hits = np.flatnonzero(unique_codes[pos] == target)
        pair_a_parts.append(hits)
        pair_b_parts.append(pos[hits])
    if pair_a_parts:
        pa = np.concatenate(pair_a_parts)
        pb = np.concatenate(pair_b_parts)
    else:  # pragma: no cover - offsets list is never empty
        pa = pb = np.empty(0, dtype=np.int64)

    # Box pruning.  Both bounds are monotone under float rounding, so
    # they are exact-conservative with respect to the pair predicate:
    # gap^2 > r2 proves every cross pair fails it, span^2 <= r2 proves
    # every cross pair satisfies it.
    r2 = radius * radius
    gap_x = np.maximum(
        0.0, np.maximum(box_min_x[pb] - box_max_x[pa], box_min_x[pa] - box_max_x[pb])
    )
    gap_y = np.maximum(
        0.0, np.maximum(box_min_y[pb] - box_max_y[pa], box_min_y[pa] - box_max_y[pb])
    )
    surely_apart = gap_x * gap_x + gap_y * gap_y > r2
    span_x = np.maximum(box_max_x[pb] - box_min_x[pa], box_max_x[pa] - box_min_x[pb])
    span_y = np.maximum(box_max_y[pb] - box_min_y[pa], box_max_y[pa] - box_min_y[pb])
    surely_joined = span_x * span_x + span_y * span_y <= r2

    # Staged resolution.  Only the final component PARTITION must match
    # the per-user path — edges already implied by it may be skipped — so
    # each stage unions what it has proven, drops ambiguous pairs whose
    # cells now share a component, and hands the shrunken remainder to
    # the next (more expensive) stage.  On routine-driven populations the
    # capped probes leave the exact cross-pair test almost nothing.
    ambiguous = ~(surely_apart | surely_joined)
    edge_a, edge_b = pa[surely_joined], pb[surely_joined]
    cell_comp = _cell_components(edge_a, edge_b, n_cells)
    rem_a, rem_b = pa[ambiguous], pb[ambiguous]
    rem_a, rem_b = _drop_connected(rem_a, rem_b, cell_comp)
    for cap in PROBE_CAPS:
        if not len(rem_a):
            break
        hit = _probe_pairs(xs, ys, order, starts, sizes, rem_a, rem_b, r2, cap)
        edge_a = np.concatenate([edge_a, rem_a[hit]])
        edge_b = np.concatenate([edge_b, rem_b[hit]])
        cell_comp = _cell_components(edge_a, edge_b, n_cells)
        rem_a, rem_b = _drop_connected(rem_a[~hit], rem_b[~hit], cell_comp)
    if len(rem_a):
        full = _resolve_ambiguous_pairs(
            xs, ys, order, starts, sizes, rem_a, rem_b, r2
        )
        edge_a = np.concatenate([edge_a, rem_a[full]])
        edge_b = np.concatenate([edge_b, rem_b[full]])
        cell_comp = _cell_components(edge_a, edge_b, n_cells)
    point_comp = cell_comp[cell_of_point].astype(np.int64)

    return _rank_components_per_user(point_comp, user_of_point)


def _cell_components(
    edge_a: np.ndarray, edge_b: np.ndarray, n_cells: int
) -> np.ndarray:
    """Connected-component label per cell under the given edge set."""
    graph = coo_matrix(
        (np.ones(len(edge_a), dtype=np.int8), (edge_a, edge_b)),
        shape=(n_cells, n_cells),
    )
    return _graph_components(graph, directed=False)[1]


def _drop_connected(
    pa: np.ndarray, pb: np.ndarray, cell_comp: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep only pairs whose cells are still in different components."""
    keep = cell_comp[pa] != cell_comp[pb]
    return pa[keep], pb[keep]


def _rank_components_per_user(
    point_comp: np.ndarray, user_of_point: np.ndarray
) -> np.ndarray:
    """Per-user (size desc, first member asc) ranks for global components.

    Components never span users (the composite codes keep users apart),
    so ranking within ``user_of_point`` groups reproduces the per-user
    ``component_labels`` ordering contract exactly.
    """
    n = len(point_comp)
    _, inverse, counts = np.unique(point_comp, return_inverse=True, return_counts=True)
    n_comps = len(counts)
    first = np.full(n_comps, n, dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(n, dtype=np.int64))
    comp_user = user_of_point[first]
    order = np.lexsort((first, -counts, comp_user))
    rank = np.empty(n_comps, dtype=np.int64)
    rank[order] = np.arange(n_comps, dtype=np.int64)
    # Rebase ranks to zero within each user block.
    comps_per_user = np.bincount(comp_user, minlength=int(user_of_point.max()) + 1)
    user_base = np.concatenate([[0], np.cumsum(comps_per_user)])[:-1]
    return rank[inverse] - user_base[user_of_point]
