"""Population-level obfuscation kernels: whole CSR shards per array pass.

Two deployment styles, mirroring :mod:`repro.datagen.obfuscate`:

* :func:`one_time_laplace_population` — the one-time geo-IND baseline the
  paper attacks: every check-in of every user perturbed independently.
* :func:`permanent_obfuscate_population` — Edge-PrivLocAd: each user's
  eta-frequent locations get a pinned n-fold candidate set, matched
  check-ins report a posterior-selected candidate, nomadic check-ins go
  through a single-output Gaussian.

Both kernels preserve the per-user ``SeedSequence.spawn`` stream
discipline of :mod:`repro.kernels.gaussian`: the only python-level loop
draws each user's uniforms from that user's own Generator in the exact
call order of the per-user reference path
(:func:`repro.datagen.obfuscate.permanent_obfuscate_batched_xy` /
``one_time_obfuscate_xy``); every transform — Rayleigh and Lambert-W
radius inversion, polar conversion, nearest-top matching, the posterior
weight matrix and its inverse-CDF selection — runs batched over the whole
shard.  Results are bit-identical to the reference, per user, and
therefore invariant to worker chunking.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.posterior import posterior_weights_array
from repro.core.sampling import (
    planar_laplace_radius_from_uniform,
    polar_to_cartesian,
    rayleigh_radius_from_uniform,
)
from repro.kernels.gaussian import user_rng

__all__ = [
    "match_tops_population",
    "one_time_laplace_population",
    "permanent_obfuscate_population",
]

_TWO_PI = 2.0 * math.pi


def match_tops_population(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    top_xs: np.ndarray,
    top_ys: np.ndarray,
    top_offsets: np.ndarray,
    match_radius: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-top matching for every check-in of a shard, in one pass.

    Returns ``(matched, nearest)`` over all check-ins: ``matched[c]`` is
    True when check-in ``c`` lies within ``match_radius`` of its user's
    nearest top location, whose per-user index is ``nearest[c]``.  Same
    distances (``np.hypot``) and same first-occurrence argmin tie-break
    as the per-user ``(m, k)`` matrix path, ragged-batched across users.
    """
    if match_radius <= 0:
        raise ValueError("match radius must be positive")
    offsets = np.asarray(offsets, dtype=np.int64)
    top_offsets = np.asarray(top_offsets, dtype=np.int64)
    n = len(xs)
    matched = np.zeros(n, dtype=bool)
    nearest = np.zeros(n, dtype=np.int64)
    if n == 0:
        return matched, nearest

    m_u = np.diff(offsets)
    k_u = np.diff(top_offsets)
    user_of_point = np.repeat(np.arange(len(m_u), dtype=np.int64), m_u)
    pairs_per_checkin = k_u[user_of_point]
    total_pairs = int(pairs_per_checkin.sum())
    if total_pairs == 0:
        return matched, nearest
    pair_start = np.concatenate([[0], np.cumsum(pairs_per_checkin)])

    # One ragged (check-in x user-top) distance pass.
    ci = np.repeat(np.arange(n, dtype=np.int64), pairs_per_checkin)
    tj = np.arange(total_pairs, dtype=np.int64) - pair_start[:-1][ci]
    top_row = top_offsets[:-1][user_of_point][ci] + tj
    d = np.hypot(xs[ci] - top_xs[top_row], ys[ci] - top_ys[top_row])

    active = np.flatnonzero(pairs_per_checkin > 0)
    starts = pair_start[:-1][active]
    dmin = np.minimum.reduceat(d, starts)
    # First-occurrence argmin: smallest local index attaining the minimum
    # (exactly np.argmin's tie-break).
    dmin_rep = np.repeat(dmin, pairs_per_checkin[active])
    sentinel = int(k_u.max()) + 1
    nearest[active] = np.minimum.reduceat(
        np.where(d == dmin_rep, tj, sentinel), starts
    )
    matched[active] = dmin <= match_radius
    return matched, nearest


def one_time_laplace_population(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    epsilon: float,
    seed: int,
    user_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-time planar-Laplace obfuscation of a whole shard.

    Bit-identical, per user, to ``one_time_obfuscate_xy`` with a
    ``PlanarLaplaceMechanism`` on that user's spawned rng; the Lambert-W
    radius inversion — the expensive part — runs once over all users.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    offsets = np.asarray(offsets, dtype=np.int64)
    n_users = len(offsets) - 1
    if user_ids is None:
        user_ids = np.arange(n_users, dtype=np.int64)
    n = len(xs)
    theta = np.empty(n, dtype=float)
    p = np.empty(n, dtype=float)
    for u in range(n_users):
        lo, hi = int(offsets[u]), int(offsets[u + 1])
        if hi == lo:
            continue
        rng = user_rng(seed, int(user_ids[u]))
        # See pin_candidates_population: one buffer read per user
        # reproduces the reference's theta-then-p uniform pair exactly.
        buf = rng.random(2 * (hi - lo))
        theta[lo:hi] = buf[:hi - lo]
        p[lo:hi] = buf[hi - lo:]
    theta *= _TWO_PI
    noise = polar_to_cartesian(
        planar_laplace_radius_from_uniform(p, epsilon), theta
    )
    return np.column_stack([xs, ys]) + noise


def permanent_obfuscate_population(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    top_xs: np.ndarray,
    top_ys: np.ndarray,
    top_offsets: np.ndarray,
    *,
    sigma: float,
    n: int,
    posterior_sigma: float,
    nomadic_sigma: float,
    seed: int,
    match_radius: float = 100.0,
    user_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The Edge-PrivLocAd reporting stream for a whole shard at once.

    ``(xs, ys, offsets)`` are the check-in CSR columns and
    ``(top_xs, top_ys, top_offsets)`` the matching eta-frequent bundle
    (e.g. from :func:`repro.kernels.frequent.population_eta_tops`).
    ``sigma``/``n``/``posterior_sigma`` parameterise the pinned n-fold
    Gaussian and its selection posterior, ``nomadic_sigma`` the
    single-output Gaussian for unmatched check-ins.

    Per user, the output is bit-identical to
    ``permanent_obfuscate_batched_xy`` with per-user mechanisms on that
    user's spawned rng.  The matching stage is RNG-free, so every user's
    draw sizes are known up front; the draw loop consumes each user's
    stream in reference order (pin, select, nomadic) and all transforms
    are batched: one candidate tensor, one posterior-weights matrix and
    one inverse-CDF selection per shard.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    offsets = np.asarray(offsets, dtype=np.int64)
    top_offsets = np.asarray(top_offsets, dtype=np.int64)
    n_users = len(offsets) - 1
    if user_ids is None:
        user_ids = np.arange(n_users, dtype=np.int64)
    if len(user_ids) != n_users:
        raise ValueError(
            f"user_ids has {len(user_ids)} entries for {n_users} users"
        )

    matched, nearest = match_tops_population(
        xs, ys, offsets, top_xs, top_ys, top_offsets, match_radius
    )
    m_u = np.diff(offsets)
    k_u = np.diff(top_offsets)
    user_of_point = np.repeat(np.arange(n_users, dtype=np.int64), m_u)
    n_matched_u = np.bincount(user_of_point[matched], minlength=n_users)
    n_nomadic_u = m_u - n_matched_u

    # Draw every user's uniforms in reference call order; sizes are fully
    # determined by the (RNG-free) matching above.  Size-0 draws do not
    # advance Generator state, so skipping them preserves the stream.
    pin_sizes = k_u * n
    pin_bounds = np.concatenate([[0], np.cumsum(pin_sizes)])
    sel_bounds = np.concatenate([[0], np.cumsum(n_matched_u)])
    nom_bounds = np.concatenate([[0], np.cumsum(n_nomadic_u)])
    theta_pin = np.empty(int(pin_bounds[-1]), dtype=float)
    s_pin = np.empty(int(pin_bounds[-1]), dtype=float)
    u_sel = np.empty(int(sel_bounds[-1]), dtype=float)
    theta_nom = np.empty(int(nom_bounds[-1]), dtype=float)
    s_nom = np.empty(int(nom_bounds[-1]), dtype=float)
    for u in range(n_users):
        if m_u[u] == 0 and pin_sizes[u] == 0:
            continue
        rng = user_rng(seed, int(user_ids[u]))
        # Each stage reads one buffer per user (uniform(0, high) is
        # high * next_double, see pin_candidates_population); theta
        # scale factors are applied batched below.
        if pin_sizes[u]:
            d = int(pin_sizes[u])
            buf = rng.random(2 * d)
            theta_pin[pin_bounds[u]:pin_bounds[u + 1]] = buf[:d]
            s_pin[pin_bounds[u]:pin_bounds[u + 1]] = buf[d:]
        if n_matched_u[u]:
            u_sel[sel_bounds[u]:sel_bounds[u + 1]] = rng.random(
                int(n_matched_u[u])
            )
        if n_nomadic_u[u]:
            d = int(n_nomadic_u[u])
            buf = rng.random(2 * d)
            theta_nom[nom_bounds[u]:nom_bounds[u + 1]] = buf[:d]
            s_nom[nom_bounds[u]:nom_bounds[u + 1]] = buf[d:]
    theta_pin *= _TWO_PI
    theta_nom *= _TWO_PI

    # Pin: one (total_tops, n, 2) candidate tensor for the shard.
    pin_noise = polar_to_cartesian(
        rayleigh_radius_from_uniform(s_pin, sigma), theta_pin
    )
    tops = np.column_stack([top_xs, top_ys])
    candidates = tops[:, None, :] + pin_noise.reshape(-1, n, 2)

    reported = np.empty((len(xs), 2), dtype=float)

    # Select: one posterior-weights matrix + inverse-CDF pass per shard.
    if matched.any():
        top_row = top_offsets[:-1][user_of_point[matched]] + nearest[matched]
        rows = candidates[top_row]
        weights = posterior_weights_array(rows, posterior_sigma)
        cdf = np.cumsum(weights, axis=1)
        idx = np.minimum((u_sel[:, None] > cdf).sum(axis=1), n - 1)
        reported[matched] = rows[np.arange(len(rows)), idx]

    # Nomadic: single-output Gaussian over the remainder.
    nomadic = ~matched
    if nomadic.any():
        nom_noise = polar_to_cartesian(
            rayleigh_radius_from_uniform(s_nom, nomadic_sigma), theta_nom
        )
        reported[nomadic] = (
            np.column_stack([xs, ys])[nomadic] + nom_noise
        )
    return reported
