"""Population-level eta-frequent location sets (Algorithm 2, all users).

One segment-cumsum over the profile-count CSR columns replaces the
per-user ``eta_frequent_count`` calls: each user's stopping index is the
number of cumulative counts strictly below that user's threshold, counted
with a single ``bincount``.  Visit counts are integers (exact in float64
far beyond any shard size), so the batched float comparison agrees with
the per-user ``searchsorted`` bit for bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.profiles import ProfileColumns

__all__ = ["population_eta_counts", "population_eta_tops"]


def population_eta_counts(profiles: ProfileColumns, eta: float) -> np.ndarray:
    """Per-user eta-frequent prefix lengths for a whole profile shard.

    ``result[i] == eta_frequent_count(profile_i, eta)`` for every user:
    the minimal prefix (in profile order) whose cumulative count reaches
    ``eta`` — absolute when ``eta > 1``, else a fraction of the user's
    total check-ins.  Empty profiles get 0.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    counts = np.asarray(profiles.counts, dtype=np.int64)
    offsets = np.asarray(profiles.offsets, dtype=np.int64)
    n_users = len(offsets) - 1
    nloc = np.diff(offsets)
    if len(counts) == 0:
        return np.zeros(n_users, dtype=np.int64)

    comp_user = np.repeat(np.arange(n_users, dtype=np.int64), nloc)
    totals = np.bincount(comp_user, weights=counts, minlength=n_users)
    # eta * total is computed in float64 either way; totals are exact.
    thresholds = eta * totals if eta <= 1.0 else np.full(n_users, float(eta))

    # Segment cumulative counts: global int64 cumsum rebased per user.
    cum = np.cumsum(counts)
    base = np.concatenate([[0], cum])[offsets[:-1]]
    seg_cum = cum - base[comp_user]

    # searchsorted(cumulative, threshold, side="left") == number of
    # cumulative entries strictly below the threshold.
    below = seg_cum < thresholds[comp_user]
    idx = np.bincount(comp_user[below], minlength=n_users)
    return np.where(nloc > 0, np.minimum(idx + 1, nloc), 0).astype(np.int64)


def population_eta_tops(
    profiles: ProfileColumns, eta: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Every user's eta-frequent coordinates as one CSR bundle.

    Returns ``(top_xs, top_ys, top_offsets)`` where user ``i``'s slice
    equals ``eta_frequent_xy(profile_i, eta)``.
    """
    k = population_eta_counts(profiles, eta)
    top_offsets = np.concatenate([[0], np.cumsum(k)]).astype(np.int64)
    total = int(top_offsets[-1])
    # Gather the first k[i] profile rows of each user: a flat index made
    # of each user's profile base plus a per-segment arange.
    seg_base = np.repeat(np.asarray(profiles.offsets[:-1], dtype=np.int64), k)
    within = np.arange(total, dtype=np.int64) - np.repeat(top_offsets[:-1], k)
    gather = seg_base + within
    return profiles.xs[gather], profiles.ys[gather], top_offsets
