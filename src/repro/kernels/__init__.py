"""Population-level array kernels over the CSR columnar plane.

Each kernel consumes an entire ``CheckInColumns``/``PopulationColumns``
shard and replaces a per-user python loop with one (or a handful of)
array passes, while staying bit-identical to the per-user object path it
supersedes:

* :mod:`repro.kernels.cluster` — connectivity clustering for every
  user's check-ins at once (grid cells, box pruning, C-level connected
  components).
* :mod:`repro.kernels.profiles` — location profiles (centroids + counts,
  profile-ordered) via global bincounts and one lexsort.
* :mod:`repro.kernels.frequent` — eta-frequent location sets via a
  segment cumsum (Algorithm 2 for the whole shard).
* :mod:`repro.kernels.gaussian` — batched n-fold Gaussian pinning with
  per-user ``SeedSequence.spawn`` streams preserved.
* :mod:`repro.kernels.obfuscate` — full reporting streams (one-time
  Laplace and Edge-PrivLocAd permanent deployment) per shard.

The property suite (``tests/property/test_kernel_equivalence.py``) pins
every kernel against its per-user reference.
"""

from repro.kernels.cluster import population_component_labels
from repro.kernels.frequent import population_eta_counts, population_eta_tops
from repro.kernels.gaussian import pin_candidates_population, user_rng
from repro.kernels.obfuscate import (
    match_tops_population,
    one_time_laplace_population,
    permanent_obfuscate_population,
)
from repro.kernels.profiles import ProfileColumns, population_profiles

__all__ = [
    "population_component_labels",
    "ProfileColumns",
    "population_profiles",
    "population_eta_counts",
    "population_eta_tops",
    "user_rng",
    "pin_candidates_population",
    "match_tops_population",
    "one_time_laplace_population",
    "permanent_obfuscate_population",
]
