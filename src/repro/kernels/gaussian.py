"""Batched n-fold Gaussian pinning with per-user RNG streams preserved.

The pinning stage (Definition 7: ``n`` candidates per top location) is
embarrassingly parallel across users, but reproducibility requires each
user's noise to come from that user's own stream regardless of how the
population is chunked across workers.  The kernel therefore keeps ONE
python-level loop whose body only *draws uniforms* — a single buffered
``Generator`` read per user from
``SeedSequence(entropy=seed, spawn_key=(uid,))`` —
and runs every transform (uniform scaling, Rayleigh inversion, polar
conversion, location add) batched over the whole shard.

Because ``SeedSequence(seed).spawn(n)[i]`` equals
``SeedSequence(entropy=seed, spawn_key=(i,))``, per-user streams are a
pure function of ``(seed, global user id)``: the same user produces the
same candidates under ``--workers 1`` and ``--workers 8``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.sampling import polar_to_cartesian, rayleigh_radius_from_uniform

__all__ = ["user_rng", "pin_candidates_population"]

_TWO_PI = 2.0 * math.pi


def user_rng(seed: int, uid: int) -> np.random.Generator:
    """The spawned per-user Generator for global user id ``uid``.

    Identical to ``default_rng(SeedSequence(seed).spawn(uid + 1)[uid])``
    but O(1): spawn keys address child streams directly.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(int(uid),))
    )


def pin_candidates_population(
    top_xs: np.ndarray,
    top_ys: np.ndarray,
    top_offsets: np.ndarray,
    sigma: float,
    n: int,
    seed: int,
    user_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pin every user's top-location candidate sets in one array pass.

    ``(top_xs, top_ys, top_offsets)`` is the CSR bundle of eta-frequent
    locations (user ``i`` owns rows ``top_offsets[i]:top_offsets[i+1]``).
    Returns the ``(total_tops, n, 2)`` candidate tensor, bit-identical to
    calling ``NFoldGaussianMechanism.obfuscate_batch`` per user with the
    user's spawned rng: the same uniforms feed the same elementwise
    transforms, only batched across users.

    ``user_ids`` supplies the *global* user ids for the rng spawn keys
    when the shard is a chunk of a larger population (defaults to
    ``0..n_users-1``).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    top_offsets = np.asarray(top_offsets, dtype=np.int64)
    n_users = len(top_offsets) - 1
    if user_ids is None:
        user_ids = np.arange(n_users, dtype=np.int64)
    if len(user_ids) != n_users:
        raise ValueError(
            f"user_ids has {len(user_ids)} entries for {n_users} users"
        )
    k = np.diff(top_offsets)
    total = int(top_offsets[-1]) * n
    theta = np.empty(total, dtype=float)
    s = np.empty(total, dtype=float)
    pos = 0
    for u in range(n_users):
        draws = int(k[u]) * n
        if draws == 0:
            continue
        rng = user_rng(seed, int(user_ids[u]))
        # One stream read per user: ``uniform(0, high)`` is exactly
        # ``high * next_double`` (and ``uniform(0, 1)`` is the double
        # itself), so splitting one ``random`` buffer reproduces the
        # reference's theta-then-s call pair bit for bit; theta's scale
        # factor is applied batched below.
        buf = rng.random(2 * draws)
        theta[pos:pos + draws] = buf[:draws]
        s[pos:pos + draws] = buf[draws:]
        pos += draws
    theta *= _TWO_PI

    noise = polar_to_cartesian(rayleigh_radius_from_uniform(s, sigma), theta)
    tops = np.column_stack([top_xs, top_ys])
    return tops[:, None, :] + noise.reshape(-1, n, 2)
