"""The output selection module (paper Section V-D).

Per LBA request, draws the reported location from the pinned candidate set
via the posterior-based sampler (Algorithm 4).  Selection is pure
post-processing of the already-released candidates, so it costs no privacy
budget no matter how many requests are served.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.posterior import OutputSelector, PosteriorSelector
from repro.geo.point import Point
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = ["OutputSelectionModule"]


class OutputSelectionModule:
    """Wraps a selection policy and counts selections for the benches."""

    def __init__(self, selector: OutputSelector) -> None:
        self.selector = selector
        self.selection_count = 0

    @classmethod
    def posterior(
        cls, sigma: float, rng: Optional[np.random.Generator] = None
    ) -> "OutputSelectionModule":
        """The paper's default: posterior-weighted sampling at noise scale sigma."""
        return cls(PosteriorSelector(sigma, rng=rng))

    def select(self, candidates: Sequence[Point]) -> Point:
        """Draw the location to report for one ad request."""
        self.selection_count += 1
        if _obs_enabled():
            _obs_registry().counter("edge.selection.requests").inc()
        return self.selector.select(candidates)

    def select_batch(self, candidates: Sequence[Point], size: int) -> List[Point]:
        """Draw reported locations for ``size`` requests against one candidate set.

        Used by the scalability bench (Table III), which serves thousands
        of users per tick.
        """
        if size < 1:
            raise ValueError("size must be positive")
        cand = list(candidates)
        probs = self.selector.probabilities(cand)
        idx = self.selector.rng.choice(len(cand), size=size, p=probs)
        self.selection_count += size
        if _obs_enabled():
            _obs_registry().counter("edge.selection.requests").inc(size)
        return [cand[int(i)] for i in idx]
