"""The honest-but-curious LBA service provider.

Owns the ad network (it follows the serving protocol faithfully) but also
mounts the longitudinal attack on its own bidding log — the paper's threat
model.  Having the attacker inside the system object makes end-to-end
privacy experiments one-liners: replay traces through the edge, then ask
the provider what it could infer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ads.network import AdNetwork
from repro.attack.deobfuscation import DeobfuscationAttack, InferredLocation
from repro.geo.point import Point

__all__ = ["HonestButCuriousProvider", "AttackFinding"]


@dataclass(frozen=True)
class AttackFinding:
    """The provider's inference result for one device."""

    device_id: str
    observations: int
    inferred: tuple  # of InferredLocation


class HonestButCuriousProvider:
    """An ad network operator that also runs the longitudinal attack."""

    def __init__(self, network: Optional[AdNetwork] = None) -> None:
        self.network = network if network is not None else AdNetwork()

    def attack_device(
        self, device_id: str, attack: DeobfuscationAttack, top_n: int = 2
    ) -> AttackFinding:
        """Run the de-obfuscation attack on one device's logged traffic."""
        observations = self.network.bid_log.observations_for(device_id)
        inferred: List[InferredLocation] = []
        if len(observations) > 0:
            inferred = attack.infer_top_locations(observations, top_n)
        return AttackFinding(
            device_id=device_id,
            observations=len(observations),
            inferred=tuple(inferred),
        )

    def attack_all(
        self, attack: DeobfuscationAttack, top_n: int = 2
    ) -> Dict[str, AttackFinding]:
        """Attack every device seen in the bidding log."""
        return {
            device_id: self.attack_device(device_id, attack, top_n)
            for device_id in self.network.bid_log.devices()
        }
