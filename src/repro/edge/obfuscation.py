"""The location obfuscation module and its permanent obfuscation table.

The module maintains the table ``T`` mapping every top location to its
pinned set of obfuscated candidate locations (paper Section V-C).  The
table is *permanent*: a top location is obfuscated exactly once, on first
sight, and the same candidates are reused for every subsequent request —
re-randomising would leak fresh noise draws to the longitudinal attacker
and degrade the budget by composition.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.ledger import PrivacyLedger
from repro.core.mechanism import LPPM
from repro.edge.clock import TimeSource, WallTimeSource
from repro.geo.point import Point
from repro.obs.metrics import DEFAULT_TIME_BUCKETS
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = ["ObfuscationTable", "ObfuscationModule"]


class ObfuscationTable:
    """The permanent map from top locations to candidate output sets.

    Lookups tolerate small drift in the recomputed top-location centroid:
    a query location matches a stored entry when it lies within
    ``match_radius`` of it, so a re-clustered centroid that moved a few
    metres does not trigger a fresh (budget-spending) obfuscation.
    """

    def __init__(self, match_radius: float = 100.0) -> None:
        if match_radius <= 0:
            raise ValueError("match radius must be positive")
        self.match_radius = match_radius
        self._entries: List[Tuple[Point, List[Point]]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, location: Point) -> Optional[List[Point]]:
        """The pinned candidates for ``location``, if already obfuscated."""
        best: Optional[List[Point]] = None
        best_dist = self.match_radius
        for stored, candidates in self._entries:
            d = stored.distance_to(location)
            if d <= best_dist:
                best = candidates
                best_dist = d
        return best

    def pin(self, location: Point, candidates: Sequence[Point]) -> None:
        """Permanently record the candidates for a new top location."""
        if not candidates:
            raise ValueError("cannot pin an empty candidate set")
        if self.lookup(location) is not None:
            raise ValueError(
                f"location {location} already has pinned candidates; "
                "permanent entries must never be replaced"
            )
        self._entries.append((location, list(candidates)))

    @property
    def entries(self) -> List[Tuple[Point, List[Point]]]:
        """Pinned (true location, candidate set) pairs."""
        return [(loc, list(cands)) for loc, cands in self._entries]

    def snapshot(self) -> List[Any]:
        """The pinned entries as JSON-able coordinate pairs, in pin order."""
        return [
            [[loc.x, loc.y], [[c.x, c.y] for c in cands]]
            for loc, cands in self._entries
        ]

    def restore(self, state: List[Any]) -> None:
        """Reload pinned entries from :meth:`snapshot` output.

        Restoration bypasses :meth:`pin`'s duplicate check (the entries
        were validated when first pinned) but preserves pin order, which
        :meth:`lookup` ties break on.
        """
        self._entries = [
            (
                Point(float(loc[0]), float(loc[1])),
                [Point(float(x), float(y)) for x, y in cands],
            )
            for loc, cands in state
        ]


class ObfuscationModule:
    """Generates and pins candidate sets for top locations (Section V-C).

    An optional :class:`~repro.core.ledger.PrivacyLedger` caps the total
    budget the user may spend across profile changes: when the ledger
    refuses a spend, the new top location is simply *not* pinned (the edge
    keeps serving it through the nomadic path), and the skip is counted.
    """

    def __init__(
        self,
        mechanism: LPPM,
        match_radius: float = 100.0,
        ledger: Optional[PrivacyLedger] = None,
        time_source: Optional[TimeSource] = None,
    ) -> None:
        self.mechanism = mechanism
        self.table = ObfuscationTable(match_radius)
        self.ledger = ledger
        #: Where pin-latency readings come from.  The wall clock by
        #: default; replay-mode serving injects a deterministic
        #: :class:`~repro.edge.clock.VirtualTimeSource` so the
        #: ``pin_seconds`` histogram replays bit-identically.
        self.time_source: TimeSource = (
            time_source if time_source is not None else WallTimeSource()
        )
        #: How many times the module actually spent budget (for tests and
        #: the permanence ablation).
        self.obfuscation_count = 0
        #: Pins refused by the ledger cap.
        self.skipped_by_ledger = 0

    def ensure_obfuscated(self, top_locations: Sequence[Point]) -> None:
        """Obfuscate any top location not yet in the table (Algorithm flow).

        Called by the location management module after each time window's
        eta-frequent set is recomputed.
        """
        metering = _obs_enabled()
        registry = _obs_registry() if metering else None
        for top in top_locations:
            if self.table.lookup(top) is not None:
                if registry is not None:
                    registry.counter("edge.obfuscation.table_hits").inc()
                continue
            if self.ledger is not None:
                budget = getattr(self.mechanism, "budget", None)
                if budget is not None and not self.ledger.can_spend(budget):
                    self.skipped_by_ledger += 1
                    if registry is not None:
                        registry.counter("edge.obfuscation.ledger_skips").inc()
                    continue
                if budget is not None:
                    self.ledger.spend(budget, label=f"pin@({top.x:.0f},{top.y:.0f})")
            t0 = self.time_source.monotonic() if metering else 0.0
            # One draw per *distinct* top location, guarded by the lookup
            # above and charged to the ledger: this is the permanent-noise
            # pin itself, not a per-release re-draw.
            # reprolint: disable=BUD002
            candidates = self.mechanism.obfuscate(top)
            self.table.pin(top, candidates)
            self.obfuscation_count += 1
            if registry is not None:
                registry.counter("edge.obfuscation.pins").inc()
                registry.histogram(
                    "edge.obfuscation.pin_seconds", DEFAULT_TIME_BUCKETS
                ).observe(self.time_source.monotonic() - t0)

    def candidates_for(self, location: Point) -> Optional[List[Point]]:
        """The pinned candidates covering ``location``, if it is a known top."""
        return self.table.lookup(location)

    def snapshot(self) -> Dict[str, Any]:
        """The module's durable state (table + counters) as primitives.

        The mechanism and ledger are *not* captured here — they are wired
        in by whoever owns the module (the serve actor snapshots the
        ledger itself, next to the RNG state the mechanism draws from).
        """
        return {
            "table": self.table.snapshot(),
            "obfuscation_count": self.obfuscation_count,
            "skipped_by_ledger": self.skipped_by_ledger,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reload table and counters from :meth:`snapshot` output."""
        self.table.restore(state["table"])
        self.obfuscation_count = int(state.get("obfuscation_count", 0))
        self.skipped_by_ledger = int(state.get("skipped_by_ledger", 0))
