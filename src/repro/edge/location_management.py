"""The location management module (paper Section V-B).

Collects a user's check-ins passively as LBA requests arrive, and at each
time-window boundary recomputes the user's location profile and its
eta-frequent location set — the top locations that the obfuscation module
must (permanently) obfuscate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import DEFAULT_CONNECT_RADIUS_M, LocationProfile
from repro.profiles.windows import DEFAULT_WINDOW_DAYS, WindowedProfileBuilder

__all__ = ["LocationManagementModule", "DEFAULT_ETA"]

#: Default frequent-set threshold: top locations covering 80 % of activity.
DEFAULT_ETA = 0.8


class LocationManagementModule:
    """Per-user profile manager feeding the obfuscation module.

    ``record`` ingests one check-in and returns the *new* top locations
    when a window just closed (None otherwise).  The module keeps the
    latest profile and top-location set queryable at any time.
    """

    def __init__(
        self,
        eta: float = DEFAULT_ETA,
        window_days: float = DEFAULT_WINDOW_DAYS,
        connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
    ) -> None:
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self.eta = eta
        self._builder = WindowedProfileBuilder(
            window_seconds=window_days * SECONDS_PER_DAY,
            connect_radius=connect_radius,
        )
        self._profile: Optional[LocationProfile] = None
        self._top_locations: List[Point] = []
        self.windows_closed = 0
        #: Per-window top-location history, for drift inspection: how a
        #: user's eta-frequent set evolved across recomputation windows.
        self.top_history: List[List[Point]] = []

    @property
    def profile(self) -> Optional[LocationProfile]:
        """The most recent per-window profile (None before the first window)."""
        return self._profile

    @property
    def top_locations(self) -> List[Point]:
        """The current eta-frequent location set."""
        return list(self._top_locations)

    def record(self, checkin: CheckIn) -> Optional[List[Point]]:
        """Ingest a check-in; returns fresh top locations on window rollover."""
        result = self._builder.add(checkin)
        if result is None:
            return None
        return self._refresh(result.profile)

    def flush(self) -> Optional[List[Point]]:
        """Close the trailing partial window (end of a simulation run)."""
        result = self._builder.flush()
        if result is None:
            return None
        return self._refresh(result.profile)

    def _refresh(self, profile: LocationProfile) -> List[Point]:
        self.windows_closed += 1
        self._profile = profile
        self._top_locations = eta_frequent_set(profile, self.eta)
        self.top_history.append(list(self._top_locations))
        return list(self._top_locations)

    def snapshot(self) -> Dict[str, Any]:
        """Durable per-user profile state as JSON-able primitives.

        Carries the open profile window (buffered check-ins) and the
        current eta-frequent set with its history.  The per-window
        :class:`LocationProfile` itself is *not* serialized — it is a
        derived artifact, recomputed at the next window rollover — so a
        restored module reports ``profile is None`` until then.
        """
        return {
            "eta": self.eta,
            "builder": self._builder.snapshot(),
            "top_locations": [[p.x, p.y] for p in self._top_locations],
            "windows_closed": self.windows_closed,
            "top_history": [
                [[p.x, p.y] for p in tops] for tops in self.top_history
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reload profile state from :meth:`snapshot` output."""
        self._builder.restore(state["builder"])
        self._profile = None
        self._top_locations = [
            Point(float(x), float(y)) for x, y in state.get("top_locations", [])
        ]
        self.windows_closed = int(state.get("windows_closed", 0))
        self.top_history = [
            [Point(float(x), float(y)) for x, y in tops]
            for tops in state.get("top_history", [])
        ]

    def is_top_location(self, location: Point, match_radius: float) -> bool:
        """Is ``location`` within ``match_radius`` of a current top location?"""
        return any(
            top.distance_to(location) <= match_radius for top in self._top_locations
        )
