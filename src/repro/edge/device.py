"""The edge device: trusted per-user privacy firewall (paper Section V).

One edge device serves many nearby mobile users.  Per user it runs the
three Edge-PrivLocAd modules — location management, obfuscation, output
selection — and on every ad request it:

1. records the true check-in into the user's profile (recomputing top
   locations at window boundaries and pinning fresh obfuscations);
2. picks the location to report: a pinned candidate when the user is at a
   known top location (via posterior output selection), or a one-shot
   perturbation for nomadic check-ins;
3. forwards the request to the untrusted ad network; and
4. filters the returned ads against the user's true area of interest
   before delivery, saving device bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ads.bidding import Ad
from repro.ads.delivery import DeliveryStats, filter_ads_to_aoi
from repro.ads.network import AdNetwork
from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.ledger import PrivacyLedger
from repro.core.params import GeoIndBudget
from repro.edge.location_management import DEFAULT_ETA, LocationManagementModule
from repro.edge.obfuscation import ObfuscationModule
from repro.edge.output_selection import OutputSelectionModule
from repro.edge.risk import RiskAssessor
from repro.geo.point import Point
from repro.metrics.utilization import DEFAULT_TARGETING_RADIUS_M
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import DEFAULT_CONNECT_RADIUS_M
from repro.profiles.windows import DEFAULT_WINDOW_DAYS

__all__ = ["EdgeConfig", "EdgeServeResult", "EdgeDevice"]


@dataclass(frozen=True)
class EdgeConfig:
    """Configuration shared by every user of an edge device."""

    budget: GeoIndBudget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    eta: float = DEFAULT_ETA
    window_days: float = DEFAULT_WINDOW_DAYS
    connect_radius: float = DEFAULT_CONNECT_RADIUS_M
    #: A check-in within this distance of a current top location is served
    #: from the pinned candidate set.
    match_radius: float = 100.0
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M
    #: When set, the edge assesses each user's longitudinal risk at every
    #: window rollover and pins permanent obfuscations only for users the
    #: assessment flags (paper Section I: "assess the risk ... and adopt
    #: the appropriate LPPM").  Low-risk users stay on the one-shot path.
    adaptive: bool = False
    seed: int = 0


@dataclass(frozen=True)
class EdgeServeResult:
    """Everything the edge produced for one ad request."""

    user_id: str
    reported_location: Point
    path: str  # "top" | "nomadic"
    delivered_ads: tuple
    delivery: DeliveryStats


@dataclass
class _UserState:
    management: LocationManagementModule
    obfuscation: ObfuscationModule
    selection: OutputSelectionModule
    #: Whether this user's top locations get the permanent treatment
    #: (always True when the edge is not adaptive).
    protect: bool = True


class EdgeDevice:
    """A trusted edge device multiplexing the three modules across users."""

    def __init__(self, device_id: str, network: AdNetwork, config: EdgeConfig) -> None:
        self.device_id = device_id
        self.network = network
        self.config = config
        rng = np.random.default_rng(config.seed)
        # Mechanisms are shared across users (stateless apart from the RNG);
        # tables and profiles are per user.
        self._nfold = NFoldGaussianMechanism(config.budget, rng=rng)
        self._nomadic = GaussianMechanism(config.budget.with_n(1), rng=rng)
        self._selector_rng = rng
        self._assessor = RiskAssessor() if config.adaptive else None
        self._users: Dict[str, _UserState] = {}
        self.requests_served = 0
        #: Longitudinal exposure accrued by nomadic one-shot releases.
        #: Each nomadic report is an independent perturbation of the true
        #: check-in, so repeated observations compose (paper Section IV);
        #: the accountant makes that decay measurable per device.
        self.nomadic_accountant = LongitudinalExposureAccountant()

    @property
    def user_count(self) -> int:
        """Number of users registered on this edge."""
        return len(self._users)

    @property
    def nfold_sigma(self) -> float:
        """Noise scale of the edge's n-fold Gaussian mechanism."""
        return self._nfold.sigma

    def state_for(self, user_id: str) -> _UserState:
        """The per-user module state, created on first contact."""
        state = self._users.get(user_id)
        if state is None:
            state = _UserState(
                management=LocationManagementModule(
                    eta=self.config.eta,
                    window_days=self.config.window_days,
                    connect_radius=self.config.connect_radius,
                ),
                obfuscation=ObfuscationModule(
                    self._nfold,
                    match_radius=self.config.match_radius,
                    # Per-user ledger: every pinned top location is a
                    # (r, eps, delta, n) release and must be on the books.
                    ledger=PrivacyLedger(),
                ),
                selection=OutputSelectionModule.posterior(
                    self._nfold.posterior_sigma, rng=self._selector_rng
                ),
            )
            self._users[user_id] = state
        return state

    def choose_report_location(
        self, user_id: str, true_location: Point, timestamp: float
    ) -> "tuple[Point, str]":
        """Steps 1-2: record the check-in and pick the reported location."""
        state = self.state_for(user_id)
        new_tops = state.management.record(CheckIn(timestamp, true_location))
        if new_tops:
            self._maybe_pin(state, new_tops)
        candidates = state.obfuscation.candidates_for(true_location)
        if candidates is not None:
            return state.selection.select(candidates), "top"
        reported = self._nomadic.obfuscate(true_location)[0]
        # A nomadic release is a fresh independent perturbation: charge its
        # per-metre epsilon so longitudinal decay shows up in the accounts.
        self.nomadic_accountant.observe(
            self.config.budget.epsilon / self.config.budget.r
        )
        return reported, "nomadic"

    def _maybe_pin(self, state: _UserState, new_tops: List[Point]) -> None:
        """Pin fresh tops, subject to the adaptive risk policy."""
        if self._assessor is not None and state.management.profile is not None:
            assessment = self._assessor.assess(state.management.profile)
            state.protect = assessment.needs_permanent_obfuscation
        if state.protect:
            state.obfuscation.ensure_obfuscated(new_tops)

    def handle_ad_request(
        self, user_id: str, true_location: Point, timestamp: float
    ) -> EdgeServeResult:
        """The full serve path: report, bid, filter, deliver."""
        reported, path = self.choose_report_location(
            user_id, true_location, timestamp
        )
        request = self.network.new_request(user_id, reported, timestamp)
        response = self.network.handle(request)
        delivered, stats = filter_ads_to_aoi(
            response.ads, true_location, self.config.targeting_radius
        )
        self.requests_served += 1
        return EdgeServeResult(
            user_id=user_id,
            reported_location=reported,
            path=path,
            delivered_ads=tuple(delivered),
            delivery=stats,
        )

    def finalize_user(self, user_id: str) -> None:
        """Flush the user's trailing window (end of a trace replay)."""
        state = self._users.get(user_id)
        if state is None:
            return
        tops = state.management.flush()
        if tops:
            self._maybe_pin(state, tops)

    def snapshot_user(self, user_id: str) -> Optional[Dict[str, object]]:
        """One user's durable edge state as JSON-able primitives.

        Captures everything that must survive a device handoff: the open
        profile window, the permanent obfuscation table, the privacy
        ledger, and the module counters.  The device-shared mechanisms and
        their RNG are deliberately *not* per-user state — a user restored
        onto another device draws from that device's streams (the serve
        layer's :class:`~repro.serve.actor.UserActor`, which owns a
        private RNG, snapshots it too).  Returns ``None`` for a user this
        device has never served.
        """
        state = self._users.get(user_id)
        if state is None:
            return None
        ledger = state.obfuscation.ledger
        return {
            "user_id": user_id,
            "management": state.management.snapshot(),
            "obfuscation": state.obfuscation.snapshot(),
            "ledger": None if ledger is None else ledger.to_state(),
            "selection_count": state.selection.selection_count,
            "protect": state.protect,
        }

    def restore_user(self, user_id: str, snapshot: Dict[str, object]) -> None:
        """Adopt a user from :meth:`snapshot_user` output (handoff target).

        The restored modules are wired to *this* device's shared
        mechanisms; the snapshot supplies only the durable per-user state.
        Restoring never replays ledger spends, so budget gauges are not
        double-charged (see :meth:`PrivacyLedger.from_state
        <repro.core.ledger.PrivacyLedger.from_state>`).
        """
        state = self.state_for(user_id)
        state.management.restore(snapshot["management"])  # type: ignore[arg-type]
        state.obfuscation.restore(snapshot["obfuscation"])  # type: ignore[arg-type]
        ledger_state = snapshot.get("ledger")
        if ledger_state is not None:
            state.obfuscation.ledger = PrivacyLedger.from_state(
                ledger_state  # type: ignore[arg-type]
            )
        state.selection.selection_count = int(
            snapshot.get("selection_count", 0)  # type: ignore[arg-type]
        )
        state.protect = bool(snapshot.get("protect", True))
