"""Secure multi-edge profile merging via additive secret sharing.

Users roam across edge devices, so each edge holds only a local fragment
of a user's location profile; Section V-B notes that merging the fragments
"can be accomplished through a secure multi-party computation protocol"
and leaves the protocol orthogonal.  We implement the standard simple
instantiation so the system is complete end to end:

* the user's activity area is rasterised onto a shared grid;
* each edge turns its local check-in counts into a per-cell histogram and
  splits every count into ``n_parties`` additive shares modulo a large
  prime — any strict subset of shares is uniformly random and reveals
  nothing about the count;
* aggregators sum the share vectors; only the reconstructed *sum* of all
  shares (the merged histogram) becomes visible;
* the merged eta-frequent location set is computed from the merged
  histogram.

The protocol is honest-but-curious secure: correctness and the
uniformity of strict share subsets are covered by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.point import Point
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import LocationProfile, ProfileEntry

__all__ = [
    "MODULUS",
    "GridSpec",
    "share_histogram",
    "reconstruct_histogram",
    "SecureProfileMerge",
]

#: A 61-bit Mersenne prime: large enough that realistic counts never wrap.
MODULUS = (1 << 61) - 1


@dataclass(frozen=True)
class GridSpec:
    """The shared rasterisation grid all parties agree on."""

    origin_x: float
    origin_y: float
    cell_size: float
    cells_x: int
    cells_y: int

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ValueError("cell size must be positive")
        if self.cells_x < 1 or self.cells_y < 1:
            raise ValueError("grid must have at least one cell per axis")

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return self.cells_x * self.cells_y

    def cell_of(self, p: Point) -> int:
        """Flat cell index of a point (clamped to the grid edges)."""
        ix = int((p.x - self.origin_x) // self.cell_size)
        iy = int((p.y - self.origin_y) // self.cell_size)
        ix = min(max(ix, 0), self.cells_x - 1)
        iy = min(max(iy, 0), self.cells_y - 1)
        return iy * self.cells_x + ix

    def center_of(self, cell: int) -> Point:
        """Planar centre of a flat cell index."""
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell index out of range: {cell}")
        iy, ix = divmod(cell, self.cells_x)
        return Point(
            self.origin_x + (ix + 0.5) * self.cell_size,
            self.origin_y + (iy + 0.5) * self.cell_size,
        )

    def histogram(self, checkins: Sequence[CheckIn]) -> np.ndarray:
        """Per-cell check-in counts as an ``(n_cells,)`` int64 vector."""
        counts = np.zeros(self.n_cells, dtype=np.int64)
        for c in checkins:
            counts[self.cell_of(c.point)] += 1
        return counts


def share_histogram(
    counts: np.ndarray, n_parties: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Split a count vector into ``n_parties`` additive shares mod MODULUS.

    The first ``n_parties - 1`` shares are uniform in [0, MODULUS); the
    last is the modular complement, so any strict subset is independent of
    the secret.
    """
    if n_parties < 2:
        raise ValueError("secret sharing needs at least two parties")
    counts = np.asarray(counts, dtype=np.int64)
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    if (counts >= MODULUS).any():
        raise ValueError("counts exceed the sharing modulus")
    shares = [
        rng.integers(0, MODULUS, size=counts.shape, dtype=np.int64)
        for _ in range(n_parties - 1)
    ]
    partial = np.zeros_like(counts)
    for s in shares:
        partial = (partial + s) % MODULUS
    last = (counts - partial) % MODULUS
    shares.append(last)
    return shares


def reconstruct_histogram(shares: Sequence[np.ndarray]) -> np.ndarray:
    """Sum share vectors mod MODULUS back into the plain counts."""
    if not shares:
        raise ValueError("no shares to reconstruct from")
    total = np.zeros_like(np.asarray(shares[0], dtype=np.int64))
    for s in shares:
        total = (total + np.asarray(s, dtype=np.int64)) % MODULUS
    return total


class SecureProfileMerge:
    """Coordinator for the multi-edge secure histogram aggregation.

    Each participating edge calls :meth:`contribute` with its local slice
    of a user's check-ins; the edge locally shares its histogram and sends
    share ``j`` to aggregator ``j``.  :meth:`merge` sums each aggregator's
    pool and reconstructs only the total histogram — individual edges'
    histograms never exist in the clear outside their owner.
    """

    def __init__(
        self,
        grid: GridSpec,
        n_aggregators: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_aggregators < 2:
            raise ValueError("need at least two aggregators")
        self.grid = grid
        self.n_aggregators = n_aggregators
        # Seeded fallback keeps simulations reproducible; real deployments
        # must pass a Generator backed by OS entropy, since share blinding
        # is only hiding if the masks are unpredictable.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._pools: List[np.ndarray] = [
            np.zeros(grid.n_cells, dtype=np.int64) for _ in range(n_aggregators)
        ]
        self.contributions = 0

    def contribute(self, local_checkins: Sequence[CheckIn]) -> None:
        """One edge contributes its local slice (shares only leave the edge)."""
        counts = self.grid.histogram(local_checkins)
        shares = share_histogram(counts, self.n_aggregators, self._rng)
        for pool, share in zip(self._pools, shares):
            np.copyto(pool, (pool + share) % MODULUS)
        self.contributions += 1

    def merge(self) -> np.ndarray:
        """Reconstruct the merged histogram from the aggregator pools."""
        return reconstruct_histogram(self._pools)

    def merged_profile(self) -> LocationProfile:
        """The merged histogram as a LocationProfile (cell centres)."""
        counts = self.merge()
        entries = [
            ProfileEntry(self.grid.center_of(int(i)), int(c))
            for i, c in enumerate(counts)
            if c > 0
        ]
        return LocationProfile(entries)
