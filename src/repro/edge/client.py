"""The mobile client: trace-driven ad-request trigger.

A client replays a user's (true) check-in trace against its edge device —
each check-in stands for an app session that fires an LBA request.  The
client never talks to the ad network directly: the edge is its only
upstream, which is the system's trust boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.edge.device import EdgeDevice, EdgeServeResult
from repro.profiles.checkin import CheckIn

__all__ = ["MobileClient", "ClientStats"]


@dataclass
class ClientStats:
    """What the client observed across its session."""

    requests: int = 0
    ads_received: int = 0
    top_path_requests: int = 0
    nomadic_path_requests: int = 0

    def update(self, result: EdgeServeResult) -> None:
        """Fold one serve result into the running counters."""
        self.requests += 1
        self.ads_received += len(result.delivered_ads)
        if result.path == "top":
            self.top_path_requests += 1
        else:
            self.nomadic_path_requests += 1


class MobileClient:
    """One user's device, bound to an edge device."""

    def __init__(self, user_id: str, edge: EdgeDevice) -> None:
        self.user_id = user_id
        self.edge = edge
        self.stats = ClientStats()

    def request_ad(self, checkin: CheckIn) -> EdgeServeResult:
        """Fire one LBA request at the user's current true location."""
        result = self.edge.handle_ad_request(
            self.user_id, checkin.point, checkin.timestamp
        )
        self.stats.update(result)
        return result

    def replay(self, trace: Sequence[CheckIn]) -> List[EdgeServeResult]:
        """Replay a whole trace chronologically, finalizing the profile."""
        results = [self.request_ad(c) for c in sorted(trace)]
        self.edge.finalize_user(self.user_id)
        return results
