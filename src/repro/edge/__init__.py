"""The Edge-PrivLocAd system: clients, edge devices, provider, orchestration."""

from repro.edge.client import ClientStats, MobileClient
from repro.edge.clock import (
    SimulationClock,
    TimeSource,
    VirtualTimeSource,
    WallTimeSource,
)
from repro.edge.device import EdgeConfig, EdgeDevice, EdgeServeResult
from repro.edge.location_management import DEFAULT_ETA, LocationManagementModule
from repro.edge.obfuscation import ObfuscationModule, ObfuscationTable
from repro.edge.output_selection import OutputSelectionModule
from repro.edge.provider import AttackFinding, HonestButCuriousProvider
from repro.edge.system import (
    EdgePrivLocAdSystem,
    SystemConfig,
    SystemReport,
    seed_campaigns,
)

__all__ = [
    "EdgeConfig",
    "EdgeDevice",
    "EdgeServeResult",
    "LocationManagementModule",
    "DEFAULT_ETA",
    "ObfuscationModule",
    "ObfuscationTable",
    "OutputSelectionModule",
    "MobileClient",
    "ClientStats",
    "HonestButCuriousProvider",
    "AttackFinding",
    "SimulationClock",
    "TimeSource",
    "WallTimeSource",
    "VirtualTimeSource",
    "EdgePrivLocAdSystem",
    "SystemConfig",
    "SystemReport",
    "seed_campaigns",
]

from repro.edge.secure_merge import (
    MODULUS,
    GridSpec,
    SecureProfileMerge,
    reconstruct_histogram,
    share_histogram,
)

__all__ += [
    "GridSpec",
    "SecureProfileMerge",
    "share_histogram",
    "reconstruct_histogram",
    "MODULUS",
]

from repro.edge.risk import RiskAssessment, RiskAssessor, RiskLevel, self_attack_margin

__all__ += ["RiskAssessor", "RiskAssessment", "RiskLevel", "self_attack_margin"]
