"""A manual simulation clock shared by all simulated participants.

Keeping time explicit (rather than reading the wall clock) makes the
system simulation deterministic and lets trace-driven runs jump through
two years of check-ins in milliseconds.
"""

from __future__ import annotations

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonically advancing simulated unix time."""

    def __init__(self, start_ts: float = 0.0) -> None:
        self._now = float(start_ts)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, ts: float) -> None:
        """Move the clock forward to ``ts`` (never backwards)."""
        if ts < self._now:
            raise ValueError(
                f"clock cannot move backwards: {ts} < {self._now}"
            )
        self._now = float(ts)

    def advance_by(self, seconds: float) -> None:
        """Move the clock forward by a non-negative duration."""
        if seconds < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now += seconds
