"""Simulation and monotonic time for the edge: explicit, swappable clocks.

Two kinds of time live here:

* :class:`SimulationClock` — the manual *event-time* clock shared by all
  simulated participants.  Keeping event time explicit (rather than
  reading the wall clock) makes the system simulation deterministic and
  lets trace-driven runs jump through two years of check-ins in
  milliseconds.
* :class:`TimeSource` — the *measurement-time* seam.  Instrumented edge
  code (pin latency, serve latency) needs a monotonic reading; taking it
  straight from ``time.perf_counter()`` would make every latency
  histogram depend on when and where the code ran.  A :class:`TimeSource`
  makes the reading injectable: production paths use
  :class:`WallTimeSource` (a thin ``perf_counter`` wrapper), while the
  replay mode of :mod:`repro.serve` installs a :class:`VirtualTimeSource`
  whose readings are a pure function of how many readings were taken —
  so a ``--replay`` run's latency histograms are bit-identical no matter
  the host, the shard count, or the scheduler.
"""

from __future__ import annotations

import time

__all__ = [
    "SimulationClock",
    "TimeSource",
    "WallTimeSource",
    "VirtualTimeSource",
    "DEFAULT_VIRTUAL_TICK",
]

#: Seconds a :class:`VirtualTimeSource` advances per reading.  A power
#: of two (~0.95 us), so every ``count * tick`` product — and therefore
#: every paired ``t1 - t0`` duration — is an exact float64 no matter how
#: far the source has advanced.  A non-dyadic tick (say 1e-6) would make
#: the same k-tick duration round differently at different absolute
#: offsets, and replay histograms would stop being shard-count-invariant.
DEFAULT_VIRTUAL_TICK = 2.0 ** -20


class SimulationClock:
    """Monotonically advancing simulated unix time."""

    def __init__(self, start_ts: float = 0.0) -> None:
        self._now = float(start_ts)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, ts: float) -> None:
        """Move the clock forward to ``ts`` (never backwards)."""
        if ts < self._now:
            raise ValueError(
                f"clock cannot move backwards: {ts} < {self._now}"
            )
        self._now = float(ts)

    def advance_by(self, seconds: float) -> None:
        """Move the clock forward by a non-negative duration."""
        if seconds < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now += seconds


class TimeSource:
    """A monotonic reading for latency measurement (the injectable seam).

    Subclasses override :meth:`monotonic`.  The base class doubles as the
    abstract interface; instrumented code should accept any
    :class:`TimeSource` and never call ``time.perf_counter()`` directly —
    that is what keeps replay-mode latency deterministic.
    """

    def monotonic(self) -> float:
        """A monotonically non-decreasing reading in seconds."""
        raise NotImplementedError


class WallTimeSource(TimeSource):
    """The production source: ``time.perf_counter()``."""

    __slots__ = ()

    def monotonic(self) -> float:
        """The process's high-resolution performance counter."""
        return time.perf_counter()


class VirtualTimeSource(TimeSource):
    """Deterministic monotonic time: every reading advances a fixed tick.

    A paired ``t1 - t0`` measurement with ``k - 1`` readings in between
    always yields exactly ``k * tick`` — the source counts readings as an
    integer and multiplies by the (power-of-two) tick on the way out, so
    durations never pick up accumulation error and are bit-identical at
    any absolute offset.  ``advance`` adds explicit whole ticks of
    virtual delay on top (e.g. modelling per-event service time).
    """

    __slots__ = ("_ticks", "tick")

    def __init__(self, tick: float = DEFAULT_VIRTUAL_TICK) -> None:
        if tick < 0:
            raise ValueError(f"tick must be non-negative, got {tick}")
        self._ticks = 0
        self.tick = float(tick)

    @property
    def now(self) -> float:
        """The current virtual reading (without advancing it)."""
        return self._ticks * self.tick

    def monotonic(self) -> float:
        """Advance by one tick and return the new reading."""
        self._ticks += 1
        return self._ticks * self.tick

    def advance(self, ticks: int) -> None:
        """Add ``ticks`` whole ticks of virtual delay (non-negative)."""
        if ticks < 0:
            raise ValueError("cannot advance by a negative duration")
        self._ticks += int(ticks)

    @property
    def ticks(self) -> int:
        """The integer reading count (the source's whole durable state)."""
        return self._ticks

    def seek(self, ticks: int) -> None:
        """Restore the reading count from a checkpoint (monotonic only).

        Used by shard checkpoint/restore: a shard rebuilt from a
        checkpoint must resume its virtual timeline exactly where the
        original left off, or every later latency reading — and hence the
        replay metrics digest — would shift.
        """
        if ticks < self._ticks:
            raise ValueError(
                f"virtual time cannot move backwards: {ticks} < {self._ticks}"
            )
        self._ticks = int(ticks)
