"""End-to-end orchestration of the Edge-PrivLocAd system.

Wires clients, edge devices, and the honest-but-curious provider together
and replays synthetic user traces through the full pipeline in global
chronological order.  The resulting object exposes both sides of the
story: serving statistics (fill rate, relevance, path mix) for the utility
view, and the provider's bidding log for the attack view.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ads.campaign import Advertiser, Campaign
from repro.ads.network import AdNetwork
from repro.datagen.population import SyntheticUser
from repro.edge.client import MobileClient
from repro.edge.clock import SimulationClock
from repro.edge.device import EdgeConfig, EdgeDevice
from repro.edge.provider import HonestButCuriousProvider
from repro.geo.bbox import BoundingBox
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry
from repro.obs.trace import span as _obs_span
from repro.profiles.checkin import CheckIn

__all__ = ["SystemConfig", "SystemReport", "EdgePrivLocAdSystem", "seed_campaigns"]


@dataclass(frozen=True)
class SystemConfig:
    """Top-level simulation knobs."""

    edge: EdgeConfig = EdgeConfig()
    n_edge_devices: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_edge_devices < 1:
            raise ValueError("need at least one edge device")


@dataclass
class SystemReport:
    """Aggregate outcome of a trace replay."""

    requests: int = 0
    ads_delivered: int = 0
    ads_received: int = 0
    top_path_requests: int = 0
    nomadic_path_requests: int = 0

    @property
    def relevance_ratio(self) -> float:
        """Share of network-returned ads that survived the AOI filter."""
        return self.ads_delivered / self.ads_received if self.ads_received else 1.0

    @property
    def top_path_share(self) -> float:
        """Share of requests served from the pinned top-location path."""
        return self.top_path_requests / self.requests if self.requests else 0.0


def seed_campaigns(
    region: BoundingBox,
    count: int,
    radius_m: float,
    rng: np.random.Generator,
    platform: Optional[str] = None,
    deterministic_ids: bool = False,
) -> List[Campaign]:
    """Scatter radius-targeting campaigns uniformly over the region.

    With ``deterministic_ids`` the campaign ids are a pure function of
    the index (``campaign-<i>``) instead of the process-global counter —
    required when several processes must build the *same* inventory
    (every serve shard replicates the campaign set, and response digests
    compare campaign ids across shard layouts).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    from repro.geo.point import Point

    campaigns = []
    locs = region.sample_uniform(count, rng)
    for i, (x, y) in enumerate(locs):
        advertiser = Advertiser(advertiser_id=f"adv-{i:05d}", name=f"Business {i}")
        campaigns.append(
            Campaign.create(
                advertiser=advertiser,
                business_location=Point(float(x), float(y)),
                radius_m=radius_m,
                bid_price=float(rng.uniform(0.5, 5.0)),
                platform=platform,
                campaign_id=f"campaign-{i:06d}" if deterministic_ids else None,
            )
        )
    return campaigns


class EdgePrivLocAdSystem:
    """The full simulated deployment."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config if config is not None else SystemConfig()
        self.provider = HonestButCuriousProvider(AdNetwork())
        self.clock = SimulationClock()
        base = self.config.edge
        self.edges = [
            EdgeDevice(
                device_id=f"edge-{i:03d}",
                network=self.provider.network,
                config=EdgeConfig(
                    budget=base.budget,
                    eta=base.eta,
                    window_days=base.window_days,
                    connect_radius=base.connect_radius,
                    match_radius=base.match_radius,
                    targeting_radius=base.targeting_radius,
                    adaptive=base.adaptive,
                    seed=self.config.seed + i,
                ),
            )
            for i in range(self.config.n_edge_devices)
        ]
        self._clients: Dict[str, MobileClient] = {}

    @property
    def network(self) -> AdNetwork:
        """The ad network shared by every edge device."""
        return self.provider.network

    def register_campaigns(self, campaigns: Sequence[Campaign]) -> None:
        """Register advertiser campaigns with the untrusted network."""
        self.network.register_campaigns(campaigns)

    def client_for(self, user_id: str) -> MobileClient:
        """The user's client, bound to an edge by stable assignment.

        Users attach to the edge device nearest them in a real deployment;
        the simulation assigns by a stable hash, which preserves the
        property that matters — one user's state lives on one edge.
        """
        client = self._clients.get(user_id)
        if client is None:
            edge = self.edges[hash(user_id) % len(self.edges)]
            client = MobileClient(user_id, edge)
            self._clients[user_id] = client
        return client

    def run(self, users: Iterable[SyntheticUser]) -> SystemReport:
        """Replay all users' traces in global chronological order."""
        report = SystemReport()

        # Merge the per-user (already sorted) traces on timestamp.  The
        # helper pins each user into its own closure; a bare generator
        # expression in the comprehension would share one loop variable.
        def stream(user: SyntheticUser) -> Iterator[Tuple[float, str, CheckIn]]:
            for c in sorted(user.trace):
                yield (c.timestamp, user.user_id, c)

        with _obs_span("edge.run", devices=len(self.edges)):
            streams = [stream(u) for u in users]
            for timestamp, user_id, checkin in heapq.merge(*streams):
                self.clock.advance_to(timestamp)
                client = self.client_for(user_id)
                result = client.request_ad(checkin)
                report.requests += 1
                report.ads_delivered += len(result.delivered_ads)
                report.ads_received += result.delivery.received
                if result.path == "top":
                    report.top_path_requests += 1
                else:
                    report.nomadic_path_requests += 1
            for user_id, client in self._clients.items():
                client.edge.finalize_user(user_id)
        if _obs_enabled():
            # One end-of-run rollup (not per-request increments) keeps the
            # replay loop free of metering overhead.
            registry = _obs_registry()
            registry.counter("edge.requests").inc(report.requests)
            registry.counter("edge.ads_delivered").inc(report.ads_delivered)
            registry.counter("edge.ads_received").inc(report.ads_received)
            registry.counter("edge.top_path_requests").inc(report.top_path_requests)
            registry.counter("edge.nomadic_path_requests").inc(
                report.nomadic_path_requests
            )
        return report
