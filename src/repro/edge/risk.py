"""Edge-side privacy risk assessment (paper Section I / V-A, first role).

The paper tasks the trusted edge with three jobs; the first is to "assess
the risk of location privacy breaches ... and adopt the appropriate LPPM".
This module implements that assessment:

* a *static* risk score from the user's location statistics — low entropy
  plus many observations is exactly the profile the longitudinal attack
  exploits (Figure 3), so those users need the permanent n-fold release
  while high-entropy, low-volume users are fine with one-time geo-IND;
* a *red-team* check: the edge simulates the longitudinal attack against
  the user's own outgoing report stream and measures how close the best
  inferred location comes to any true top location — a direct, empirical
  exposure margin;
* a mechanism recommendation mapping the assessed risk to an LPPM
  configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.mechanism import LPPM
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import LocationProfile

__all__ = ["RiskLevel", "RiskAssessment", "RiskAssessor", "self_attack_margin"]


class RiskLevel(enum.Enum):
    """Coarse longitudinal-exposure risk levels."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class RiskAssessment:
    """The edge's verdict for one user."""

    level: RiskLevel
    entropy: float
    observations: int
    top1_share: float
    reasons: tuple

    @property
    def needs_permanent_obfuscation(self) -> bool:
        """Should this user's top locations get the n-fold treatment?"""
        return self.level is not RiskLevel.LOW


class RiskAssessor:
    """Scores a user's longitudinal-exposure risk from their statistics.

    Thresholds default to the dataset's structure: the paper's Figure 3
    shows entropy below 2 for 88.8 % of users and declining with
    observation count — i.e. almost everyone trends HIGH over time, which
    is the paper's point.
    """

    def __init__(
        self,
        entropy_threshold: float = 2.0,
        observation_threshold: int = 200,
        top1_share_threshold: float = 0.5,
        min_evidence: int = 50,
    ) -> None:
        if entropy_threshold <= 0:
            raise ValueError("entropy threshold must be positive")
        if observation_threshold < 1:
            raise ValueError("observation threshold must be positive")
        if not 0.0 < top1_share_threshold < 1.0:
            raise ValueError("top-1 share threshold must be in (0, 1)")
        if min_evidence < 1:
            raise ValueError("min_evidence must be positive")
        self.entropy_threshold = entropy_threshold
        self.observation_threshold = observation_threshold
        self.top1_share_threshold = top1_share_threshold
        #: Entropy/top-share signals need this many check-ins to count:
        #: a handful of observations always has low entropy (bounded by
        #: ln M), which is noise, not routine.
        self.min_evidence = min_evidence

    def assess(self, profile: LocationProfile) -> RiskAssessment:
        """Static assessment from the user's (true-side) location profile."""
        entropy = profile.entropy()
        observations = profile.total_checkins
        top1_share = (
            profile[0].frequency / observations if observations else 0.0
        )
        reasons: List[str] = []
        signals = 0
        evidence = observations >= self.min_evidence
        if evidence and entropy < self.entropy_threshold:
            signals += 1
            reasons.append(
                f"low location entropy ({entropy:.2f} < {self.entropy_threshold})"
            )
        if observations >= self.observation_threshold:
            signals += 1
            reasons.append(
                f"long observation history ({observations} check-ins)"
            )
        if evidence and top1_share >= self.top1_share_threshold:
            signals += 1
            reasons.append(
                f"dominant top-1 location ({top1_share:.0%} of activity)"
            )
        level = (
            RiskLevel.HIGH
            if signals >= 2
            else RiskLevel.MEDIUM
            if signals == 1
            else RiskLevel.LOW
        )
        if not reasons:
            reasons.append("diffuse, low-volume mobility")
        return RiskAssessment(
            level=level,
            entropy=entropy,
            observations=observations,
            top1_share=top1_share,
            reasons=tuple(reasons),
        )


def self_attack_margin(
    reported_stream: Sequence[CheckIn],
    true_tops: Sequence[Point],
    mechanism: LPPM,
    top_n: int = 2,
) -> float:
    """Red-team margin: how close the attack gets to any true top location.

    The edge — which knows both the outgoing obfuscated stream and the
    true tops — runs the paper's own de-obfuscation attack against itself
    and reports the minimum distance between any inferred location and any
    true top.  A small margin means the current LPPM configuration is
    failing this user; the paper's one-time deployments show margins of
    tens of metres, the permanent n-fold deployment of kilometres.
    """
    if not true_tops:
        raise ValueError("need at least one true top location")
    if not reported_stream:
        return float("inf")
    attack = DeobfuscationAttack.against(mechanism)
    inferred = attack.infer_top_locations(list(reported_stream), top_n)
    if not inferred:
        return float("inf")
    return min(
        guess.location.distance_to(top)
        for guess in inferred
        for top in true_tops
    )
