"""Command-line interface for the Edge-PrivLocAd reproduction.

Subcommands::

    repro experiments fig6 fig7 --scale small --workers 4 --cache
                                                # regenerate paper results
    repro bench fig6 --scale small              # cold/warm cache benchmark
    repro bench --compare OLD.json NEW.json     # wall-clock regression gate
    repro simulate --users 40 --campaigns 300   # end-to-end system run
    repro serve --shards 4 --qps 2000 --duration 5
                                                # streaming edge service run
    repro serve --replay --shards 2 --duration-events 2000
                                                # bit-identical replay mode
    repro fleet run churn10 --shards 4          # serve under deterministic
                                                # fault injection (docs/fleet.md)
    repro attack --level ln2                    # case-study attack demo
    repro verify --r 500 --epsilon 1 --delta 0.01 --n 10
                                                # check a budget's calibration
    repro lint src/repro --baseline reprolint-baseline.json
                                                # privacy/determinism lint
    repro obs trace.jsonl                       # span/metrics trace summary
    repro obs trace.jsonl --format prom         # Prometheus-style dump

The work-running subcommands (``experiments``, ``simulate``, ``serve``,
``attack``, ``verify``) share one option set: ``--workers N``, ``--cache/--no-cache``,
``--seed S``, and ``--trace PATH`` (record a :mod:`repro.obs` trace,
inspected with ``repro obs``).  Options that do not apply to a subcommand
are accepted and ignored, so scripts can pass a uniform flag set.

(Equivalent to ``python -m repro.cli ...``; also installed as the
``repro`` console script.)
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

_LEVELS = {"ln2": math.log(2), "ln4": math.log(4), "ln6": math.log(6)}


@contextmanager
def _maybe_trace(path: Optional[str]) -> Iterator[None]:
    """Record a repro.obs trace around the body when ``path`` is given."""
    if path is None:
        yield
        return
    from repro import obs

    obs.enable(path)
    try:
        yield
    finally:
        obs.shutdown()


def _common_options() -> argparse.ArgumentParser:
    """The shared option set every work-running subcommand inherits.

    One parent parser (``parents=[...]``) keeps spelling, defaults, and
    help text identical across ``experiments``, ``simulate``, ``serve``,
    ``fleet``, ``attack``, and ``verify``.  The data-plane flags
    (``--workers``, ``--cache``, ``--tier``, ``--mmap``, ``--no-shm``,
    ``--cache-dir``) come from :mod:`repro.data.plane`, so every
    subcommand documents them identically and a handler turns them into
    one :class:`~repro.data.plane.DataPlaneConfig`.  ``--seed`` defaults
    to ``None`` so each handler can keep its historical fallback (0 for
    simulate, 11 for attack, the scale preset for experiments).
    """
    from repro.data.plane import add_data_plane_arguments

    common = argparse.ArgumentParser(add_help=False)
    add_data_plane_arguments(common)
    common.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="root RNG seed (default: the subcommand's historical default)",
    )
    common.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a repro.obs trace (spans + metrics, JSON lines) to "
        "PATH; inspect with 'repro obs PATH'",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Edge-PrivLocAd reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_options()

    p_exp = sub.add_parser(
        "experiments", help="regenerate paper tables/figures", parents=[common]
    )
    p_exp.add_argument("ids", nargs="+", help="experiment ids or 'all'")
    p_exp.add_argument("--scale", default="small", choices=["small", "medium", "full"])

    p_bench = sub.add_parser(
        "bench",
        help="cache/shared-memory benchmarks and the regression gate",
        add_help=False,
    )
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER)

    p_sim = sub.add_parser(
        "simulate", help="run the end-to-end system", parents=[common]
    )
    p_sim.add_argument("--users", type=int, default=20)
    p_sim.add_argument("--campaigns", type=int, default=200)
    p_sim.add_argument("--edges", type=int, default=4)
    p_sim.add_argument(
        "--attack", action="store_true", help="also run the provider-side attack"
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the sharded streaming edge service (see docs/serving.md)",
        parents=[common],
    )
    p_srv.add_argument(
        "--shards", type=int, default=2, help="actor shards (worker processes)"
    )
    p_srv.add_argument(
        "--qps",
        type=float,
        default=0.0,
        help="live-mode producer pacing in events/s (0 = unpaced)",
    )
    p_srv.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="live run length in seconds; with --qps this sizes the "
        "workload (overrides --duration-events)",
    )
    p_srv.add_argument(
        "--duration-events",
        type=int,
        default=2_000,
        metavar="N",
        help="workload size in events when --duration is not given",
    )
    p_srv.add_argument(
        "--replay",
        action="store_true",
        help="deterministic replay: virtual clock, blocking ingress, "
        "bit-identical response/metrics digests at any shard count",
    )
    p_srv.add_argument("--users", type=int, default=50)
    p_srv.add_argument("--campaigns", type=int, default=200)
    p_srv.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="per-shard bounded ingress queue depth (live mode sheds "
        "beyond it)",
    )
    p_srv.add_argument("--batch-max", type=int, default=32)
    p_srv.add_argument(
        "--inline",
        action="store_true",
        help="run shards inline instead of in worker processes",
    )
    p_srv.add_argument(
        "--prom-file",
        default=None,
        metavar="PATH",
        help="write the fleet metrics snapshot as Prometheus text to PATH",
    )
    p_srv.add_argument(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write a BENCH payload (for 'repro bench --compare') to PATH",
    )

    p_flt = sub.add_parser(
        "fleet",
        help="run the serve workload under deterministic fault injection "
        "(see docs/fleet.md)",
        parents=[common],
    )
    flt_sub = p_flt.add_subparsers(dest="fleet_command", required=True)
    p_flt_run = flt_sub.add_parser(
        "run",
        help="run one scenario (a built-in name or a YAML/JSON file) "
        "against the seeded serve workload",
        parents=[common],
    )
    p_flt_run.add_argument(
        "scenario",
        help="built-in scenario name (churn10, churn25, lossy-crash) or a "
        "scenario file path",
    )
    p_flt_run.add_argument(
        "--shards", type=int, default=2, help="actor shards (worker processes)"
    )
    p_flt_run.add_argument("--users", type=int, default=50)
    p_flt_run.add_argument("--campaigns", type=int, default=200)
    p_flt_run.add_argument(
        "--duration-events",
        type=int,
        default=2_000,
        metavar="N",
        help="workload size in events",
    )
    p_flt_run.add_argument(
        "--live",
        action="store_true",
        help="wall-clock mode (fleet runs replay by default: virtual "
        "clock, bit-identical digests at any shard count)",
    )
    p_flt_run.add_argument(
        "--qps",
        type=float,
        default=0.0,
        help="live-mode producer pacing in events/s (0 = unpaced)",
    )
    p_flt_run.add_argument(
        "--inline",
        action="store_true",
        help="run shards inline instead of in worker processes",
    )
    p_flt_run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="mirror actor crash snapshots to JSON files under DIR",
    )
    p_flt_run.add_argument(
        "--baseline",
        action="store_true",
        help="also run the no-fault baseline and print the SLO deltas",
    )
    p_flt_run.add_argument(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write a BENCH_fleet payload (needs --baseline) to PATH",
    )

    p_atk = sub.add_parser(
        "attack", help="case-study de-obfuscation attack", parents=[common]
    )
    p_atk.add_argument("--level", default="ln2", choices=sorted(_LEVELS))

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the privacy/determinism static analysis",
        add_help=False,
    )
    p_lint.add_argument("lint_args", nargs=argparse.REMAINDER)

    p_ver = sub.add_parser(
        "verify", help="verify a (r, eps, delta, n) budget", parents=[common]
    )
    p_ver.add_argument("--r", type=float, default=500.0)
    p_ver.add_argument("--epsilon", type=float, default=1.0)
    p_ver.add_argument("--delta", type=float, default=0.01)
    p_ver.add_argument("--n", type=int, default=10)
    p_ver.add_argument("--samples", type=int, default=100_000)

    p_obs = sub.add_parser(
        "obs", help="inspect a recorded repro.obs trace file"
    )
    p_obs.add_argument("trace_file", help="JSON-lines trace written by --trace")
    p_obs.add_argument(
        "--format",
        dest="obs_format",
        default="summary",
        choices=["summary", "prom"],
        help="summary: span tree + metrics table; prom: Prometheus-style "
        "text exposition",
    )
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.data.plane import DataPlaneConfig
    from repro.experiments.runner import main as runner_main

    try:
        plane = DataPlaneConfig.from_args(args)
    except ValueError as exc:
        print(f"repro experiments: error: {exc}", file=sys.stderr)
        return 2
    argv = list(args.ids) + ["--scale", args.scale]
    if plane.workers is not None:
        argv += ["--workers", str(plane.workers)]
    if plane.cache:
        argv += ["--cache"]
    if plane.tier is not None:
        argv += ["--tier", plane.tier]
    if plane.mmap:
        argv += ["--mmap"]
    if not plane.shm:
        argv += ["--no-shm"]
    if plane.cache_dir is not None:
        argv += ["--cache-dir", str(plane.cache_dir)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.trace is not None:
        argv += ["--trace", args.trace]
    return runner_main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import main as bench_main

    return bench_main(args.bench_args or None)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.attack import DeobfuscationAttack, evaluate_user, success_rate
    from repro.core import GeoIndBudget, NFoldGaussianMechanism
    from repro.datagen import PopulationConfig, generate_population, shanghai_planar_bbox
    from repro.edge import EdgePrivLocAdSystem, SystemConfig, seed_campaigns

    seed = args.seed if args.seed is not None else 0
    with _maybe_trace(args.trace):
        users = generate_population(
            PopulationConfig(n_users=args.users, seed=seed)
        )
        system = EdgePrivLocAdSystem(
            SystemConfig(n_edge_devices=args.edges, seed=seed)
        )
        rng = np.random.default_rng(seed)
        system.register_campaigns(
            seed_campaigns(shanghai_planar_bbox(), args.campaigns, 5_000.0, rng)
        )
        report = system.run(users)
        print(f"requests served:       {report.requests}")
        print(f"top-path share:        {report.top_path_share:.1%}")
        print(f"ad relevance ratio:    {report.relevance_ratio:.1%}")

        if args.attack:
            budget = GeoIndBudget(500.0, 1.0, 0.01, 10)
            attack = DeobfuscationAttack.against(NFoldGaussianMechanism(budget))
            findings = system.provider.attack_all(attack, top_n=1)
            outcomes = [
                evaluate_user(
                    [i.location for i in findings[u.user_id].inferred],
                    u.true_tops[:1],
                )
                for u in users
            ]
            for threshold in (200.0, 500.0):
                rate = success_rate(outcomes, 1, threshold)
                print(f"attack success @{threshold:.0f}m: {rate:.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.obs.render import render_prometheus
    from repro.serve.harness import bench_payload, run_service

    seed = args.seed if args.seed is not None else 0
    qps = args.qps
    if args.duration is not None:
        if qps <= 0:
            qps = 500.0
        n_events = max(1, int(qps * args.duration))
    else:
        n_events = args.duration_events
    with _maybe_trace(args.trace):
        report = run_service(
            n_users=args.users,
            n_events=n_events,
            n_campaigns=args.campaigns,
            seed=seed,
            n_shards=args.shards,
            queue_capacity=args.queue_capacity,
            batch_max=args.batch_max,
            qps=0.0 if args.replay else qps,
            replay=args.replay,
            use_processes=not args.inline,
        )
    print(json.dumps(report.slo, indent=2, sort_keys=True))
    if args.prom_file is not None:
        with open(args.prom_file, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(report.metrics))
            fh.write("\n")
    if args.bench_json is not None:
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            json.dump(
                bench_payload(report.result, report.config),
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.data.plane import DataPlaneConfig
    from repro.fleet import bench_fleet_payload, run_fleet

    try:
        plane = DataPlaneConfig.from_args(args)
    except ValueError as exc:
        print(f"repro fleet: error: {exc}", file=sys.stderr)
        return 2
    plane.apply()
    if args.bench_json is not None and not args.baseline:
        print(
            "repro fleet: error: --bench-json needs --baseline "
            "(the payload pins churn SLOs against the no-fault run)",
            file=sys.stderr,
        )
        return 2
    seed = args.seed if args.seed is not None else 0
    kwargs = dict(
        n_users=args.users,
        n_events=args.duration_events,
        n_campaigns=args.campaigns,
        seed=seed,
        n_shards=args.shards,
        replay=not args.live,
        use_processes=not args.inline,
        qps=args.qps if args.live else 0.0,
    )
    with _maybe_trace(args.trace):
        try:
            report = run_fleet(
                args.scenario, checkpoint_dir=args.checkpoint_dir, **kwargs
            )
        except ValueError as exc:
            print(f"repro fleet: error: {exc}", file=sys.stderr)
            return 2
        payload = report.to_dict()
        if args.baseline:
            baseline = run_fleet(None, **kwargs)
            payload["baseline"] = {
                "qps_achieved": baseline.slo["qps_achieved"],
                "pin_p99_s": baseline.slo["pin_p99_s"],
                "response_digest": baseline.digest,
                "processed": baseline.processed,
            }
            if args.bench_json is not None:
                with open(args.bench_json, "w", encoding="utf-8") as fh:
                    json.dump(
                        bench_fleet_payload(report, baseline),
                        fh,
                        indent=2,
                        sort_keys=True,
                    )
                    fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if report.audit.ok else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attack import DeobfuscationAttack
    from repro.core import (
        LongitudinalExposureAccountant,
        PlanarLaplaceMechanism,
        default_rng,
    )
    from repro.datagen import make_fig4_user, one_time_obfuscate
    from repro.datagen.shanghai import STUDY_START_TS
    from repro.profiles import SECONDS_PER_DAY, checkins_to_array, filter_window

    seed = args.seed if args.seed is not None else 11
    with _maybe_trace(args.trace):
        user = make_fig4_user()
        mechanism = PlanarLaplaceMechanism.from_level(
            _LEVELS[args.level], 200.0, rng=default_rng(seed)
        )
        observed = one_time_obfuscate(user.trace, mechanism)
        # Each one-time release composes; showing the accrued effective
        # level next to the recovery error is the point of the demo.
        accountant = LongitudinalExposureAccountant()
        accountant.observe(mechanism.epsilon, count=max(1, len(observed)))
        attack = DeobfuscationAttack.against(mechanism)
        print(f"victim: {len(observed)} check-ins, level {args.level} at 200 m")
        print(
            f"longitudinal exposure: effective l = "
            f"{accountant.effective_level(200.0):.1f} at 200 m after "
            f"{accountant.observations} composed releases"
        )
        for label, days in (("one week", 7), ("one month", 30), ("full year", 365)):
            window = filter_window(
                observed, STUDY_START_TS, STUDY_START_TS + days * SECONDS_PER_DAY
            )
            tops = (
                attack.estimate_xy(checkins_to_array(window), 1) if window else []
            )
            err = (
                tops[0].distance_to(user.true_tops[0]) if tops else float("inf")
            )
            print(f"  {label:>9}: home recovered to {err:7.1f} m ({len(window)} obs)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core import NFoldGaussianMechanism, GeoIndBudget, default_rng
    from repro.core.verification import empirical_privacy_check, verify_gaussian_geo_ind

    budget = GeoIndBudget(args.r, args.epsilon, args.delta, args.n)
    mechanism = NFoldGaussianMechanism(budget)
    with _maybe_trace(args.trace):
        print(
            f"budget: r={args.r} m, eps={args.epsilon}, delta={args.delta}, n={args.n}"
        )
        print(f"calibrated sigma (Theorem 2): {mechanism.sigma:.1f} m")
        analytic = verify_gaussian_geo_ind(
            args.r, args.epsilon, args.delta, args.n, mechanism.sigma
        )
        print(f"analytic check:  {'OK' if analytic else 'VIOLATED'}")
        kwargs = {}
        if args.seed is not None:
            kwargs["rng"] = default_rng(args.seed)
        report = empirical_privacy_check(
            args.r, args.epsilon, args.delta, args.n, mechanism.sigma,
            samples=args.samples,
            **kwargs,
        )
        print(report)
    return 0 if (analytic and report.satisfied) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(args.lint_args or None)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.render import read_trace, render_prometheus, render_summary

    try:
        trace = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace_file}: {exc}", file=sys.stderr)
        return 1
    if args.obs_format == "prom":
        print(render_prometheus(trace.metrics))
    else:
        print(render_summary(trace))
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "bench": _cmd_bench,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "attack": _cmd_attack,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw[:1] == ["lint"]:
        # Delegate everything after "lint" verbatim: argparse's REMAINDER
        # does not capture a leading flag (e.g. "lint --list-rules").
        from repro.analysis.cli import main as lint_main

        return lint_main(raw[1:])
    if raw[:1] == ["bench"]:
        # Same REMAINDER caveat for "bench --compare OLD NEW".
        from repro.experiments.bench import main as bench_main

        return bench_main(raw[1:])
    args = build_parser().parse_args(raw)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream closed early (e.g. ``repro obs trace | head``);
        # detach stdout so the interpreter's exit flush stays quiet.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
        return 0


if __name__ == "__main__":
    sys.exit(main())
