"""Check-in records: the raw spatiotemporal unit of the paper.

A *check-in* is one (location, timestamp) observation of a user — in the
paper these are the raw RTB bid-log entries.  Check-ins are the input to
both sides of the system: the trusted edge builds location profiles from
them, and the honest-but-curious provider mounts the longitudinal attack
on their obfuscated counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from repro.geo.point import Point, points_to_array

__all__ = ["CheckIn", "checkins_to_array", "filter_window", "SECONDS_PER_DAY"]

#: One day in the unix-seconds timeline used throughout the simulators.
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, order=True)
class CheckIn:
    """One spatiotemporal observation.

    Ordering is by timestamp (then coordinates), so sorted streams of
    check-ins are chronological.
    """

    timestamp: float
    point: Point = field(compare=False)

    @property
    def x(self) -> float:
        """Planar x coordinate of the check-in."""
        return self.point.x

    @property
    def y(self) -> float:
        """Planar y coordinate of the check-in."""
        return self.point.y

    def displaced(self, dx: float, dy: float) -> "CheckIn":
        """A copy whose location is shifted by ``(dx, dy)`` metres."""
        return CheckIn(self.timestamp, self.point.translate(dx, dy))


def checkins_to_array(checkins: Iterable[CheckIn]) -> np.ndarray:
    """Pack check-in coordinates into an ``(n, 2)`` float array."""
    return points_to_array(c.point for c in checkins)


def filter_window(
    checkins: Sequence[CheckIn], start: float, end: float
) -> List[CheckIn]:
    """Check-ins with ``start <= timestamp < end`` (chronological slices).

    Used to run the attack and the profile builder over the paper's
    one-week / one-month / full-year observation windows.
    """
    if end < start:
        raise ValueError(f"window end {end} precedes start {start}")
    return [c for c in checkins if start <= c.timestamp < end]
