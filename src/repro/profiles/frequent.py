"""The eta-frequent location set (paper Definition 6 / Algorithm 2).

Given a user's location profile ordered by decreasing frequency, the
eta-frequent location set is the minimal prefix of locations whose
cumulative frequency reaches the threshold ``eta``.  The edge's location
management module recomputes this set once per time window and hands it to
the obfuscation module; these are the "top locations" that receive
permanent n-fold Gaussian obfuscation.
"""

from __future__ import annotations

from typing import List

from repro.geo.point import Point
from repro.profiles.profile import LocationProfile, ProfileEntry

__all__ = ["eta_frequent_set", "eta_frequent_entries", "coverage_of_top"]


def eta_frequent_entries(profile: LocationProfile, eta: float) -> List[ProfileEntry]:
    """Algorithm 2 over profile entries.

    ``eta`` may be given either as an absolute check-in count (``eta > 1``)
    or as a fraction of the user's total check-ins (``0 < eta <= 1``); the
    fractional form is what the experiments use ("top locations covering
    80% of activity").  Returns all entries if the profile's total mass is
    below the threshold.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    total = profile.total_checkins
    threshold = eta * total if eta <= 1.0 else eta
    out: List[ProfileEntry] = []
    cumulative = 0.0
    for entry in profile:  # profile iterates in decreasing-frequency order
        out.append(entry)
        cumulative += entry.frequency
        if cumulative >= threshold:
            break
    return out


def eta_frequent_set(profile: LocationProfile, eta: float) -> List[Point]:
    """The eta-frequent location set L_eta as plain locations."""
    return [entry.location for entry in eta_frequent_entries(profile, eta)]


def coverage_of_top(profile: LocationProfile, k: int) -> float:
    """Fraction of all check-ins explained by the top-k locations.

    A diagnostic the dataset calibration uses: the paper's population is
    dominated by the top 1-2 locations for most users.
    """
    total = profile.total_checkins
    if total == 0:
        return 0.0
    return sum(e.frequency for e in profile.top(k)) / total
