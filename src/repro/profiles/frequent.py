"""The eta-frequent location set (paper Definition 6 / Algorithm 2).

Given a user's location profile ordered by decreasing frequency, the
eta-frequent location set is the minimal prefix of locations whose
cumulative frequency reaches the threshold ``eta``.  The edge's location
management module recomputes this set once per time window and hands it to
the obfuscation module; these are the "top locations" that receive
permanent n-fold Gaussian obfuscation.

The prefix length is found with one ``searchsorted`` over the cumulative
counts; visit counts are integers, so the float comparison against the
threshold is exact and the result matches the element-by-element
accumulation loop bit for bit.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geo.point import Point
from repro.profiles.profile import LocationProfile, ProfileEntry

__all__ = [
    "eta_frequent_set",
    "eta_frequent_entries",
    "eta_frequent_count",
    "eta_frequent_xy",
    "coverage_of_top",
]


def eta_frequent_count(profile: LocationProfile, eta: float) -> int:
    """The size of the eta-frequent prefix (Algorithm 2's stopping index).

    ``eta`` may be given either as an absolute check-in count (``eta > 1``)
    or as a fraction of the user's total check-ins (``0 < eta <= 1``); the
    fractional form is what the experiments use ("top locations covering
    80% of activity").  The whole profile counts if its total mass is
    below the threshold.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    counts = profile.counts
    if len(counts) == 0:
        return 0
    total = int(counts.sum())
    threshold = eta * total if eta <= 1.0 else eta
    cumulative = np.cumsum(counts)
    # First prefix whose cumulative count reaches the threshold; counts
    # are integers, so >= against the float threshold is exact.
    idx = int(np.searchsorted(cumulative, threshold, side="left"))
    return min(idx + 1, len(counts))


def eta_frequent_xy(
    profile: LocationProfile, eta: float
) -> Tuple[np.ndarray, np.ndarray]:
    """The eta-frequent locations as coordinate column views (zero copy)."""
    k = eta_frequent_count(profile, eta)
    return profile.xs[:k], profile.ys[:k]


def eta_frequent_entries(profile: LocationProfile, eta: float) -> List[ProfileEntry]:
    """Algorithm 2 over profile entries (see :func:`eta_frequent_count`)."""
    return profile.top(eta_frequent_count(profile, eta))


def eta_frequent_set(profile: LocationProfile, eta: float) -> List[Point]:
    """The eta-frequent location set L_eta as plain locations."""
    return [entry.location for entry in eta_frequent_entries(profile, eta)]


def coverage_of_top(profile: LocationProfile, k: int) -> float:
    """Fraction of all check-ins explained by the top-k locations.

    A diagnostic the dataset calibration uses: the paper's population is
    dominated by the top 1-2 locations for most users.
    """
    total = profile.total_checkins
    if total == 0:
        return 0.0
    return sum(e.frequency for e in profile.top(k)) / total
