"""Check-ins, location profiles, frequent-location sets, time windows."""

from repro.profiles.checkin import (
    SECONDS_PER_DAY,
    CheckIn,
    checkins_to_array,
    filter_window,
)
from repro.profiles.frequent import (
    coverage_of_top,
    eta_frequent_entries,
    eta_frequent_set,
)
from repro.profiles.profile import (
    DEFAULT_CONNECT_RADIUS_M,
    LocationProfile,
    ProfileEntry,
)
from repro.profiles.windows import (
    DEFAULT_WINDOW_DAYS,
    WindowedProfileBuilder,
    WindowResult,
)

__all__ = [
    "CheckIn",
    "SECONDS_PER_DAY",
    "checkins_to_array",
    "filter_window",
    "LocationProfile",
    "ProfileEntry",
    "DEFAULT_CONNECT_RADIUS_M",
    "eta_frequent_set",
    "eta_frequent_entries",
    "coverage_of_top",
    "WindowedProfileBuilder",
    "WindowResult",
    "DEFAULT_WINDOW_DAYS",
]
