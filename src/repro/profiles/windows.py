"""Time-window management for periodic profile recomputation.

The location management module rebuilds the top-location set once per
configurable time window (the paper's evaluation uses three months),
because users occasionally change their top locations.  This module keeps
the windowing logic out of the edge device: it buffers check-ins, detects
window boundaries on the simulation timeline, and emits per-window
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn
from repro.profiles.profile import DEFAULT_CONNECT_RADIUS_M, LocationProfile

__all__ = ["WindowedProfileBuilder", "WindowResult", "DEFAULT_WINDOW_DAYS"]

#: The paper's evaluation recomputes profiles every three months.
DEFAULT_WINDOW_DAYS = 90.0


@dataclass
class WindowResult:
    """The profile computed when a time window closed."""

    window_start: float
    window_end: float
    profile: LocationProfile


@dataclass
class WindowedProfileBuilder:
    """Accumulate check-ins and emit a profile at each window boundary.

    ``add`` returns a :class:`WindowResult` when the incoming check-in's
    timestamp crosses the current window's end (possibly skipping empty
    windows), otherwise ``None``.  ``flush`` closes the trailing partial
    window.
    """

    window_seconds: float = DEFAULT_WINDOW_DAYS * SECONDS_PER_DAY
    connect_radius: float = DEFAULT_CONNECT_RADIUS_M
    _buffer: List[CheckIn] = field(default_factory=list)
    _window_start: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError(f"window must be positive, got {self.window_seconds}")
        if self.connect_radius <= 0:
            raise ValueError(f"connect radius must be positive, got {self.connect_radius}")

    @property
    def pending(self) -> int:
        """Check-ins buffered in the currently open window."""
        return len(self._buffer)

    def add(self, checkin: CheckIn) -> Optional[WindowResult]:
        """Feed one check-in; emits the previous window's profile on rollover.

        Check-ins must arrive in non-decreasing timestamp order, which the
        simulation guarantees.
        """
        if self._window_start is None:
            self._window_start = checkin.timestamp
        if self._buffer and checkin.timestamp < self._buffer[-1].timestamp:
            raise ValueError("check-ins must be fed in chronological order")
        result: Optional[WindowResult] = None
        window_end = self._window_start + self.window_seconds
        if checkin.timestamp >= window_end:
            result = self._close_window(window_end)
            # Fast-forward the window start over any empty gap.
            gap = checkin.timestamp - self._window_start
            skipped = int(gap // self.window_seconds)
            self._window_start += skipped * self.window_seconds
        self._buffer.append(checkin)
        return result

    def flush(self) -> Optional[WindowResult]:
        """Close the open window, emitting its profile if non-empty."""
        if not self._buffer or self._window_start is None:
            return None
        return self._close_window(self._window_start + self.window_seconds)

    def snapshot(self) -> Dict[str, Any]:
        """The builder's open-window state as JSON-able primitives.

        Captures the buffered check-ins and the window origin, which is
        everything a crashed edge device needs to resume windowing exactly
        where it left off (closed windows already left as profiles).
        """
        return {
            "window_seconds": self.window_seconds,
            "connect_radius": self.connect_radius,
            "window_start": self._window_start,
            "buffer": [[c.timestamp, c.point.x, c.point.y] for c in self._buffer],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reload the open-window state from :meth:`snapshot` output."""
        self._window_start = (
            None if state["window_start"] is None else float(state["window_start"])
        )
        self._buffer = [
            CheckIn(float(ts), Point(float(x), float(y)))
            for ts, x, y in state.get("buffer", [])
        ]

    def _close_window(self, window_end: float) -> WindowResult:
        profile = LocationProfile.from_checkins(self._buffer, self.connect_radius)
        result = WindowResult(
            window_start=float(self._window_start),
            window_end=float(window_end),
            profile=profile,
        )
        self._buffer.clear()
        return result
