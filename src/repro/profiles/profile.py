"""User location profiles (paper Eq. 2) and location entropy (Eq. 3).

A location profile is the set of ``(location, frequency)`` tuples obtained
by clustering a user's check-ins: check-ins within a connectivity threshold
(50 m in the paper) of each other belong to the same *location*, whose
coordinate is the cluster centroid and whose frequency is the cluster size.

The profile is stored column-wise (coordinate and frequency arrays sorted
by decreasing frequency); :class:`ProfileEntry` objects are materialised
lazily, so bulk consumers — the edge profiling thousands of users per
window, Algorithm 2 reading only a short prefix — never pay for
per-location object construction they don't use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.index import component_labels
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = [
    "ProfileEntry",
    "LocationProfile",
    "DEFAULT_CONNECT_RADIUS_M",
    "profiles_from_offsets",
]

#: The paper's connectivity threshold for raw check-ins (Section III-B-1).
DEFAULT_CONNECT_RADIUS_M = 50.0


@dataclass(frozen=True)
class ProfileEntry:
    """One clustered location with its visit frequency."""

    location: Point
    frequency: int

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {self.frequency}")


class LocationProfile:
    """An ordered location profile ``P = {(l_1, f_1), ..., (l_M, f_M)}``.

    Entries are kept sorted by decreasing frequency (ties broken by
    coordinates for determinism), matching the ordered-sequence form that
    the eta-frequent-location-set algorithm (Algorithm 2) consumes.
    """

    def __init__(self, entries: Sequence[ProfileEntry] = ()) -> None:
        entries = list(entries)
        xs = np.asarray([e.location.x for e in entries], dtype=float)
        ys = np.asarray([e.location.y for e in entries], dtype=float)
        freqs = np.asarray([e.frequency for e in entries], dtype=np.int64)
        self._init_columns(xs, ys, freqs)

    def _init_columns(
        self, xs: np.ndarray, ys: np.ndarray, freqs: np.ndarray
    ) -> None:
        order = np.lexsort((ys, xs, -freqs))
        self._xs = xs[order]
        self._ys = ys[order]
        self._freqs = freqs[order]
        self._entry_cache: List[Optional[ProfileEntry]] = [None] * len(self._freqs)

    @classmethod
    def _from_columns(
        cls, xs: np.ndarray, ys: np.ndarray, freqs: np.ndarray
    ) -> "LocationProfile":
        profile = cls.__new__(cls)
        profile._init_columns(xs, ys, freqs)
        return profile

    @classmethod
    def from_checkins(
        cls,
        checkins: Sequence[CheckIn],
        connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
    ) -> "LocationProfile":
        """Cluster check-ins into a profile by connectivity (Section III-B-1).

        Two check-ins are connected when their Euclidean distance is within
        ``connect_radius``; each connected component becomes one location
        with the component centroid as coordinate and the component size as
        frequency.
        """
        if not checkins:
            return cls()
        return cls.from_coords(checkins_to_array(checkins), connect_radius)

    @classmethod
    def from_coords(
        cls,
        coords: np.ndarray,
        connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
    ) -> "LocationProfile":
        """Profile an ``(n, 2)`` coordinate array directly.

        The vectorised ingest path: per-component centroids come from one
        label aggregation (a bincount per axis) instead of a mean() call
        per component, which matters when an edge profiles thousands of
        users back to back.
        """
        coords = np.asarray(coords, dtype=float)
        if len(coords) == 0:
            return cls()
        labels = component_labels(coords, connect_radius)
        k = int(labels.max()) + 1
        counts = np.bincount(labels, minlength=k)
        cx = np.bincount(labels, weights=coords[:, 0], minlength=k) / counts
        cy = np.bincount(labels, weights=coords[:, 1], minlength=k) / counts
        return cls._from_columns(cx, cy, counts.astype(np.int64))

    @classmethod
    def from_xy(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
    ) -> "LocationProfile":
        """Profile separate coordinate columns (the CSR-slice ingest path)."""
        xs = np.asarray(xs, dtype=float)
        if len(xs) == 0:
            return cls()
        return cls.from_coords(np.column_stack((xs, ys)), connect_radius)

    def _entry(self, i: int) -> ProfileEntry:
        cached = self._entry_cache[i]
        if cached is None:
            cached = ProfileEntry(
                Point(float(self._xs[i]), float(self._ys[i])),
                int(self._freqs[i]),
            )
            self._entry_cache[i] = cached
        return cached

    def __len__(self) -> int:
        return len(self._freqs)

    def __iter__(self) -> Iterator[ProfileEntry]:
        for i in range(len(self._freqs)):
            yield self._entry(i)

    def __getitem__(self, i: int) -> ProfileEntry:
        if not -len(self._freqs) <= i < len(self._freqs):
            raise IndexError(i)
        return self._entry(i % len(self._freqs) if i < 0 else i)

    def __bool__(self) -> bool:
        return len(self._freqs) > 0

    @property
    def entries(self) -> Tuple[ProfileEntry, ...]:
        """The profile's entries as a tuple."""
        return tuple(self)

    @property
    def xs(self) -> np.ndarray:
        """Location x coordinates in profile (decreasing-frequency) order."""
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        """Location y coordinates in profile order."""
        return self._ys

    @property
    def counts(self) -> np.ndarray:
        """Visit counts (int64) in profile order — no float conversion."""
        return self._freqs

    @property
    def locations(self) -> List[Point]:
        """The entries' locations, in profile order."""
        return [e.location for e in self]

    @property
    def frequencies(self) -> np.ndarray:
        """Visit counts as a float array."""
        return self._freqs.astype(float)

    @property
    def total_checkins(self) -> int:
        """The ``sum`` term of Eq. 3 — total number of clustered check-ins."""
        return int(self._freqs.sum())

    def top(self, k: int) -> List[ProfileEntry]:
        """The ``k`` most frequent locations (fewer if the profile is small)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return [self._entry(i) for i in range(min(k, len(self._freqs)))]

    def entropy(self) -> float:
        """Location entropy (Eq. 3), in nats; 0 for empty profiles.

        Low entropy means the user's activity concentrates on few top
        locations — 88.8% of the paper's users fall below 2.
        """
        if not len(self._freqs):
            return 0.0
        freqs = self.frequencies
        total = freqs.sum()
        probs = freqs / total
        return float(-(probs * np.log(probs)).sum())

    def merged_with(self, other: "LocationProfile", merge_radius: float) -> "LocationProfile":
        """Merge two partial profiles, coalescing locations within ``merge_radius``.

        Users roam across edge devices, so each edge holds only a local
        part of the profile (Section V-B); this implements the profile
        union the paper delegates to an orthogonal MPC protocol.  Matching
        locations are combined with a frequency-weighted centroid.
        """
        combined: List[ProfileEntry] = list(self)
        for entry in other:
            match_idx = None
            for i, mine in enumerate(combined):
                if mine.location.distance_to(entry.location) <= merge_radius:
                    match_idx = i
                    break
            if match_idx is None:
                combined.append(entry)
            else:
                mine = combined[match_idx]
                total = mine.frequency + entry.frequency
                merged_loc = Point(
                    (mine.location.x * mine.frequency + entry.location.x * entry.frequency) / total,
                    (mine.location.y * mine.frequency + entry.location.y * entry.frequency) / total,
                )
                combined[match_idx] = ProfileEntry(merged_loc, total)
        return LocationProfile(combined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(
            f"({x:.0f},{y:.0f})x{f}"
            for x, y, f in zip(self._xs[:3], self._ys[:3], self._freqs[:3])
        )
        suffix = ", ..." if len(self._freqs) > 3 else ""
        return f"LocationProfile[{len(self._freqs)} locations: {head}{suffix}]"


def profiles_from_offsets(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
) -> List[LocationProfile]:
    """One profile per CSR row of ``(xs, ys, offsets)``.

    The bulk-ingest path for :class:`repro.data.columns.CheckInColumns`:
    each user's profile is built from a zero-copy slice of the flat
    columns, bit-identical to profiling that user's object trace.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    return [
        LocationProfile.from_xy(
            xs[offsets[i]:offsets[i + 1]],
            ys[offsets[i]:offsets[i + 1]],
            connect_radius,
        )
        for i in range(len(offsets) - 1)
    ]
