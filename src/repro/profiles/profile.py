"""User location profiles (paper Eq. 2) and location entropy (Eq. 3).

A location profile is the set of ``(location, frequency)`` tuples obtained
by clustering a user's check-ins: check-ins within a connectivity threshold
(50 m in the paper) of each other belong to the same *location*, whose
coordinate is the cluster centroid and whose frequency is the cluster size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.geo.index import connected_components
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = ["ProfileEntry", "LocationProfile", "DEFAULT_CONNECT_RADIUS_M"]

#: The paper's connectivity threshold for raw check-ins (Section III-B-1).
DEFAULT_CONNECT_RADIUS_M = 50.0


@dataclass(frozen=True)
class ProfileEntry:
    """One clustered location with its visit frequency."""

    location: Point
    frequency: int

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {self.frequency}")


class LocationProfile:
    """An ordered location profile ``P = {(l_1, f_1), ..., (l_M, f_M)}``.

    Entries are kept sorted by decreasing frequency (ties broken by
    coordinates for determinism), matching the ordered-sequence form that
    the eta-frequent-location-set algorithm (Algorithm 2) consumes.
    """

    def __init__(self, entries: Sequence[ProfileEntry] = ()):
        self._entries: List[ProfileEntry] = sorted(
            entries,
            key=lambda e: (-e.frequency, e.location.x, e.location.y),
        )

    @classmethod
    def from_checkins(
        cls,
        checkins: Sequence[CheckIn],
        connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
    ) -> "LocationProfile":
        """Cluster check-ins into a profile by connectivity (Section III-B-1).

        Two check-ins are connected when their Euclidean distance is within
        ``connect_radius``; each connected component becomes one location
        with the component centroid as coordinate and the component size as
        frequency.
        """
        if not checkins:
            return cls()
        coords = checkins_to_array(checkins)
        entries = []
        for component in connected_components(coords, connect_radius):
            member_coords = coords[component]
            cx, cy = member_coords.mean(axis=0)
            entries.append(
                ProfileEntry(Point(float(cx), float(cy)), len(component))
            )
        return cls(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ProfileEntry]:
        return iter(self._entries)

    def __getitem__(self, i: int) -> ProfileEntry:
        return self._entries[i]

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def entries(self) -> Tuple[ProfileEntry, ...]:
        return tuple(self._entries)

    @property
    def locations(self) -> List[Point]:
        return [e.location for e in self._entries]

    @property
    def frequencies(self) -> np.ndarray:
        return np.asarray([e.frequency for e in self._entries], dtype=float)

    @property
    def total_checkins(self) -> int:
        """The ``sum`` term of Eq. 3 — total number of clustered check-ins."""
        return int(sum(e.frequency for e in self._entries))

    def top(self, k: int) -> List[ProfileEntry]:
        """The ``k`` most frequent locations (fewer if the profile is small)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return list(self._entries[:k])

    def entropy(self) -> float:
        """Location entropy (Eq. 3), in nats; 0 for empty profiles.

        Low entropy means the user's activity concentrates on few top
        locations — 88.8% of the paper's users fall below 2.
        """
        if not self._entries:
            return 0.0
        freqs = self.frequencies
        total = freqs.sum()
        probs = freqs / total
        return float(-(probs * np.log(probs)).sum())

    def merged_with(self, other: "LocationProfile", merge_radius: float) -> "LocationProfile":
        """Merge two partial profiles, coalescing locations within ``merge_radius``.

        Users roam across edge devices, so each edge holds only a local
        part of the profile (Section V-B); this implements the profile
        union the paper delegates to an orthogonal MPC protocol.  Matching
        locations are combined with a frequency-weighted centroid.
        """
        combined: List[ProfileEntry] = list(self._entries)
        for entry in other:
            match_idx = None
            for i, mine in enumerate(combined):
                if mine.location.distance_to(entry.location) <= merge_radius:
                    match_idx = i
                    break
            if match_idx is None:
                combined.append(entry)
            else:
                mine = combined[match_idx]
                total = mine.frequency + entry.frequency
                merged_loc = Point(
                    (mine.location.x * mine.frequency + entry.location.x * entry.frequency) / total,
                    (mine.location.y * mine.frequency + entry.location.y * entry.frequency) / total,
                )
                combined[match_idx] = ProfileEntry(merged_loc, total)
        return LocationProfile(combined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(
            f"({e.location.x:.0f},{e.location.y:.0f})x{e.frequency}"
            for e in self._entries[:3]
        )
        suffix = ", ..." if len(self._entries) > 3 else ""
        return f"LocationProfile[{len(self._entries)} locations: {head}{suffix}]"
