"""JSON persistence for traces, profiles, and obfuscation tables.

A deployable system must survive restarts: the obfuscation table in
particular is *permanent* state — losing it and re-randomising would both
waste budget and hand the longitudinal attacker fresh noise.  This module
round-trips the library's durable objects through plain JSON (no pickle,
so files are inspectable and safe to exchange).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.edge.obfuscation import ObfuscationTable
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn
from repro.profiles.profile import LocationProfile, ProfileEntry

__all__ = [
    "trace_to_json",
    "trace_from_json",
    "profile_to_json",
    "profile_from_json",
    "table_to_json",
    "table_from_json",
    "save_json",
    "load_json",
]


def _point_obj(p: Point) -> Dict[str, float]:
    return {"x": p.x, "y": p.y}


def _point_from(obj: Dict[str, Any]) -> Point:
    return Point(float(obj["x"]), float(obj["y"]))


def trace_to_json(trace: Sequence[CheckIn]) -> str:
    """Serialise a check-in trace."""
    payload = [
        {"t": c.timestamp, "x": c.point.x, "y": c.point.y} for c in trace
    ]
    return json.dumps({"kind": "trace", "checkins": payload})


def trace_from_json(text: str) -> List[CheckIn]:
    """Parse a trace serialised by :func:`trace_to_json`."""
    obj = json.loads(text)
    _expect_kind(obj, "trace")
    return [
        CheckIn(float(c["t"]), Point(float(c["x"]), float(c["y"])))
        for c in obj["checkins"]
    ]


def profile_to_json(profile: LocationProfile) -> str:
    """Serialise a location profile."""
    payload = [
        {"location": _point_obj(e.location), "frequency": e.frequency}
        for e in profile
    ]
    return json.dumps({"kind": "profile", "entries": payload})


def profile_from_json(text: str) -> LocationProfile:
    """Parse a profile serialised by :func:`profile_to_json`."""
    obj = json.loads(text)
    _expect_kind(obj, "profile")
    return LocationProfile(
        [
            ProfileEntry(_point_from(e["location"]), int(e["frequency"]))
            for e in obj["entries"]
        ]
    )


def table_to_json(table: ObfuscationTable) -> str:
    """Serialise the permanent obfuscation table (the critical state)."""
    payload = [
        {
            "top": _point_obj(top),
            "candidates": [_point_obj(c) for c in candidates],
        }
        for top, candidates in table.entries
    ]
    return json.dumps(
        {"kind": "obfuscation-table", "match_radius": table.match_radius,
         "entries": payload}
    )


def table_from_json(text: str) -> ObfuscationTable:
    """Parse a table serialised by :func:`table_to_json`."""
    obj = json.loads(text)
    _expect_kind(obj, "obfuscation-table")
    table = ObfuscationTable(match_radius=float(obj["match_radius"]))
    for entry in obj["entries"]:
        table.pin(
            _point_from(entry["top"]),
            [_point_from(c) for c in entry["candidates"]],
        )
    return table


def save_json(path: str, text: str) -> None:
    """Write a serialised object to disk."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def load_json(path: str) -> str:
    """Read a serialised object from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def _expect_kind(obj: Dict[str, Any], kind: str) -> None:
    found = obj.get("kind")
    if found != kind:
        raise ValueError(f"expected a {kind!r} document, found {found!r}")
