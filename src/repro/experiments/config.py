"""Shared experiment parameters (paper Section VII-A).

The paper's settings: delta = 0.01, epsilon in {1, 1.5}, indistinguishable
radius r in {500, 600, 700, 800} m, targeting radius R = 5 km, confidence
alpha = 0.9, 100,000 Monte-Carlo trials per parameter combination, and
one-time geo-IND levels l in {ln 2, ln 4, ln 6} at 200 m.

``ExperimentScale`` lets every driver run the same sweep at a reduced
trial/user budget by default (laptop-friendly minutes) or at full paper
scale on demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PAPER_DELTA",
    "PAPER_EPSILONS",
    "PAPER_RADII_M",
    "PAPER_TARGETING_RADIUS_M",
    "PAPER_ALPHA",
    "PAPER_TRIALS",
    "PAPER_ONETIME_LEVELS",
    "PAPER_ONETIME_RADIUS_M",
    "PAPER_NFOLD_N",
    "ExperimentScale",
    "SMALL",
    "MEDIUM",
    "FULL",
]

PAPER_DELTA = 0.01
PAPER_EPSILONS = (1.0, 1.5)
PAPER_RADII_M = (500.0, 600.0, 700.0, 800.0)
PAPER_TARGETING_RADIUS_M = 5_000.0
PAPER_ALPHA = 0.9
PAPER_TRIALS = 100_000
PAPER_ONETIME_LEVELS = (math.log(2), math.log(4), math.log(6))
PAPER_ONETIME_RADIUS_M = 200.0
PAPER_NFOLD_N = 10
PAPER_N_USERS = 37_262


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run: trials per parameter combo and population size."""

    name: str
    trials: int
    n_users: int
    mc_samples: int = 1024
    seed: int = 20220522

    def __post_init__(self) -> None:
        if self.trials < 1 or self.n_users < 1 or self.mc_samples < 1:
            raise ValueError("scale parameters must be positive")


#: Seconds-scale runs for tests and quick iteration.
SMALL = ExperimentScale(name="small", trials=400, n_users=60, mc_samples=512)
#: Minutes-scale default for the benches.
MEDIUM = ExperimentScale(name="medium", trials=3_000, n_users=400, mc_samples=1024)
#: The paper's own scale (hours on a laptop).
FULL = ExperimentScale(
    name="full", trials=PAPER_TRIALS, n_users=PAPER_N_USERS, mc_samples=4096
)
