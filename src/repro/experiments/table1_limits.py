"""Table I: radius-targeting limits on the surveyed LBA platforms.

Pure reference data, reproduced so the campaign validator and the
experiment parameter choices (targeting radius R = 5 km) trace back to the
paper's survey.
"""

from __future__ import annotations

from repro.ads.platform_limits import PLATFORM_LIMITS, common_radius_interval
from repro.experiments.tables import ExperimentReport

__all__ = ["run"]


def run() -> ExperimentReport:
    """Regenerate Table I's platform-limit rows."""
    rows = [
        {
            "platform": limit.name,
            "min_radius_m": limit.min_radius_m,
            "max_radius_m": limit.max_radius_m,
        }
        for limit in PLATFORM_LIMITS.values()
    ]
    lo, hi = common_radius_interval()
    return ExperimentReport(
        experiment_id="table1",
        title="targeting range on top players' LBA platforms",
        rows=rows,
        notes=[
            f"common interval: {lo / 1000:.0f} km .. {hi / 1000:.0f} km "
            "(paper picks R = 5 km, the hardest end)",
        ],
    )
