"""Figure 3: location entropy declines with the number of check-ins.

Runs the location profiling attack over the synthetic population and
reports mean entropy per check-in-count bucket, plus the share of users
below entropy 2 (the paper reports 88.8 % of its 37,262 users).
"""

from __future__ import annotations

from typing import Optional

from repro.attack.profiling import (
    bucket_mean_entropy,
    entropy_vs_checkins,
    fraction_below_entropy,
)
from repro.datagen.population import PopulationConfig, iter_population
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport

__all__ = ["run"]

BUCKET_EDGES = [20, 50, 100, 200, 500, 1000, 2000, 5000]


def run(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Regenerate Figure 3's entropy-vs-check-ins statistics."""
    config = PopulationConfig(n_users=scale.n_users, seed=scale.seed)
    traces = {u.user_id: u.trace for u in iter_population(config)}
    observations = entropy_vs_checkins(traces)
    rows = [
        {"checkins_bucket": label, "users": count, "mean_entropy": mean}
        for label, count, mean in bucket_mean_entropy(observations, BUCKET_EDGES)
    ]
    below2 = fraction_below_entropy(observations, 2.0)
    return ExperimentReport(
        experiment_id="fig3",
        title="location entropy vs number of check-ins",
        rows=rows,
        notes=[
            f"users: {len(observations)} (paper: 37,262)",
            f"fraction with entropy < 2: {below2:.3f} (paper: 0.888)",
            "paper: entropy declines as check-ins grow (routine dominates)",
        ],
    )
