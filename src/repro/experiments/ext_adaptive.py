"""Extension experiment: risk-adaptive LPPM selection at the edge.

The paper's edge is supposed to "assess the risk of location privacy
breaches ... and adopt the appropriate LPPM" (Section I).  This experiment
quantifies that policy against the two static extremes:

* **all one-time** — every user reports through per-check-in planar
  Laplace noise (sharp reports, no longitudinal protection);
* **adaptive** — the edge assesses each user's risk from their profile
  and gives MEDIUM/HIGH-risk users the permanent n-fold treatment while
  LOW-risk users keep one-time noise;
* **all permanent** — every user gets the n-fold treatment.

Reported per policy: longitudinal attack success (privacy) and the mean
distance between true and reported locations (report utility).  The
adaptive policy should track the permanent policy's privacy at a fraction
of its utility cost, because the vulnerable users are exactly the
routine-heavy ones.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.success import UserAttackOutcome, evaluate_user, success_rate
from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.datagen.population import PopulationConfig, SyntheticUser, iter_population
from repro.edge.risk import RiskAssessor
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.profiles.checkin import CheckIn
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile

__all__ = ["run", "POLICIES"]

POLICIES = ("all one-time", "adaptive", "all permanent")

_ONETIME_LEVEL = math.log(2)
_DEFENSE_BUDGET = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)


def _report_stream(
    user: SyntheticUser,
    policy: str,
    assessor: RiskAssessor,
    seed: int,
    accountant: LongitudinalExposureAccountant,
) -> Tuple[List[CheckIn], bool]:
    """The user's outgoing stream under a policy; returns (stream, permanent?).

    Every release is charged to ``accountant``: one epsilon-per-metre
    observation per check-in on the one-time path (they compose), one
    n-fold release per pinned top on the permanent path (replays of a
    pinned candidate are free by the sufficient-statistic analysis).
    """
    profile = LocationProfile.from_checkins(user.trace)
    rng = default_rng(seed)
    if policy == "all one-time":
        permanent = False
    elif policy == "all permanent":
        permanent = True
    elif policy == "adaptive":
        permanent = assessor.assess(profile).needs_permanent_obfuscation
    else:
        raise ValueError(f"unknown policy: {policy}")

    if not permanent:
        mech = PlanarLaplaceMechanism.from_level(
            _ONETIME_LEVEL, 200.0, rng=rng
        )
        stream = one_time_obfuscate(user.trace, mech)
        accountant.observe(mech.epsilon, count=max(1, len(stream)))
        return stream, False
    mech = NFoldGaussianMechanism(_DEFENSE_BUDGET, rng=rng)
    nomadic = GaussianMechanism(_DEFENSE_BUDGET.with_n(1), rng=rng)
    selector = PosteriorSelector(mech.posterior_sigma, rng=rng)
    tops = eta_frequent_set(profile, 0.8)
    accountant.observe(
        _DEFENSE_BUDGET.epsilon / _DEFENSE_BUDGET.r, count=max(1, len(tops))
    )
    return (
        permanent_obfuscate(
            user.trace, tops, mech, selector, nomadic_mechanism=nomadic
        ),
        True,
    )


def _attack_stream(stream: Sequence[CheckIn], permanent: bool):
    mech = (
        NFoldGaussianMechanism(_DEFENSE_BUDGET)
        if permanent
        else PlanarLaplaceMechanism.from_level(_ONETIME_LEVEL, 200.0)
    )
    return DeobfuscationAttack.against(mech)


def run(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Compare the three protection policies on one population."""
    users = list(
        iter_population(PopulationConfig(n_users=scale.n_users, seed=scale.seed))
    )
    assessor = RiskAssessor()
    rows = []
    for policy in POLICIES:
        outcomes: List[UserAttackOutcome] = []
        report_errors: List[float] = []
        protected = 0
        accountant = LongitudinalExposureAccountant()
        for i, user in enumerate(users):
            stream, permanent = _report_stream(
                user, policy, assessor, seed=scale.seed + i, accountant=accountant
            )
            protected += int(permanent)
            report_errors.extend(
                true.point.distance_to(obs.point)
                for true, obs in zip(user.trace, stream)
            )
            attack = _attack_stream(stream, permanent)
            inferred = [
                r.location for r in attack.infer_top_locations(stream, 1)
            ]
            outcomes.append(evaluate_user(inferred, user.true_tops[:1]))
        rows.append(
            {
                "policy": policy,
                "permanent_users": protected,
                "attack_top1_within_200m": success_rate(outcomes, 1, 200.0),
                "mean_report_error_m": float(np.mean(report_errors)),
                "epsilon_per_m_spent": accountant.total_epsilon,
            }
        )
    return ExperimentReport(
        experiment_id="ext_adaptive",
        title="risk-adaptive LPPM selection (extension)",
        rows=rows,
        notes=[
            "the edge protects only users its risk assessment flags; the "
            "vulnerable users are the routine-heavy ones, so adaptive "
            "should approach all-permanent privacy at lower report cost",
        ],
    )
