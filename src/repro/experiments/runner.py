"""Command-line runner for every reproduced table and figure.

Usage::

    python -m repro.experiments.runner all --scale small
    python -m repro.experiments.runner fig6 fig7 --scale medium
    python -m repro.experiments.runner table2 --scale full --workers 4

``--scale`` picks the trial/population budget; ``full`` matches the
paper's own 100,000-trial, 37,262-user settings.  ``--workers`` sizes
the process pool for the parallelizable experiments (default: all
cores); any worker count produces bit-identical report rows at the
same seed.  ``--cache`` reuses content-addressed stage artifacts under
``benchmarks/results/cache/`` (also bit-identical — a hit returns the
exact arrays a recompute would); ``--no-shm`` turns off the
shared-memory payload transport and ships worker payloads by pickle.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.data.plane import DataPlaneConfig, add_data_plane_arguments
from repro.experiments import (
    ext_adaptive,
    fig2_mobility,
    fig3_entropy,
    fig4_case_study,
    fig6_attack,
    fig7_mechanisms,
    fig8_min_utilization,
    fig9_efficacy,
    table1_limits,
    table2_obfuscation_time,
    table3_selection_time,
)
from repro.experiments.config import FULL, MEDIUM, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport

__all__ = ["main", "EXPERIMENTS", "WORKER_AWARE", "CACHE_AWARE", "TIER_AWARE"]

SCALES: Dict[str, ExperimentScale] = {s.name: s for s in (SMALL, MEDIUM, FULL)}

#: Experiment id -> callable(scale, **kwargs) -> ExperimentReport.
#: Scale-free experiments ignore the argument; worker/cache-aware ones
#: accept the keywords named in the frozensets below.
EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "table1": lambda scale: table1_limits.run(),
    "fig2": lambda scale: fig2_mobility.run(),
    "fig3": fig3_entropy.run,
    "fig4": lambda scale: fig4_case_study.run(),
    "fig6": fig6_attack.run,
    "fig7": fig7_mechanisms.run,
    "fig8": fig8_min_utilization.run,
    "fig9": fig9_efficacy.run,
    "table2": table2_obfuscation_time.run,
    "table3": table3_selection_time.run,
    # Extensions beyond the paper's own figures:
    "ext_adaptive": ext_adaptive.run,
}

#: Experiments whose ``run`` accepts a ``workers`` keyword (the per-user
#: loops and sweeps wired through :mod:`repro.parallel`).
WORKER_AWARE = frozenset({"fig6", "fig7", "fig8", "fig9", "table2", "table3"})

#: Experiments whose ``run`` accepts a ``cache`` keyword (the stage-cached
#: pipelines; cached and uncached runs produce bit-identical rows).
CACHE_AWARE = frozenset({"fig6", "fig7", "fig9", "table2", "table3"})

#: Experiments whose ``run`` accepts ``tier``/``mmap`` keywords (the
#: population-tier workloads that can serve columns out of core).
TIER_AWARE = frozenset({"fig6", "table2"})


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print their reports."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="trial/population budget (default: small)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also draw ASCII charts for experiments with curve series",
    )
    add_data_plane_arguments(parser)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="override the scale preset's root seed",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a repro.obs trace (spans + metrics, JSON lines) to PATH; "
        "inspect with 'repro obs PATH'",
    )
    args = parser.parse_args(argv)

    try:
        plane = DataPlaneConfig.from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    requested = (
        list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    if plane.tier is not None:
        not_tiered = [e for e in requested if e not in TIER_AWARE]
        if not_tiered:
            parser.error(
                f"--tier only applies to {', '.join(sorted(TIER_AWARE))}; "
                f"got: {', '.join(not_tiered)}"
            )

    plane.apply()
    cache = plane.stage_cache()
    scale = SCALES[args.scale]
    if args.seed is not None:
        scale = dataclasses.replace(scale, seed=args.seed)
    if args.trace is not None:
        obs.enable(args.trace)
    try:
        for exp_id in requested:
            kwargs: Dict[str, object] = {}
            if exp_id in WORKER_AWARE:
                kwargs["workers"] = plane.workers
            if exp_id in CACHE_AWARE and cache is not None:
                kwargs["cache"] = cache
            if exp_id in TIER_AWARE and plane.tier is not None:
                kwargs["tier"] = plane.tier
                kwargs["mmap"] = plane.mmap
            with obs.span("experiment", id=exp_id, scale=scale.name):
                report = EXPERIMENTS[exp_id](scale, **kwargs)
            print(report.render())
            if args.charts:
                chart = _chart_for(exp_id, report)
                if chart:
                    print()
                    print(chart)
            print()
    finally:
        if args.trace is not None:
            obs.shutdown()
    return 0


#: Chart layout per experiment: (x column, y columns, optional group column).
_CHART_SPECS = {
    "fig7": ("n", ["mean_UR"], "mechanism"),
    "fig8": ("n", ["min_UR(r=500)", "min_UR(r=800)"], None),
    "fig9": ("n", ["efficacy(r=500)", "efficacy(r=800)"], None),
    "table2": ("users", ["seconds"], None),
    "table3": ("users", ["milliseconds"], None),
}


def _chart_for(exp_id: str, report: ExperimentReport) -> str:
    """Render the experiment's curve chart, or '' when it has none."""
    from repro.experiments.plotting import chart_from_rows

    spec = _CHART_SPECS.get(exp_id)
    if spec is None or not report.rows:
        return ""
    x_key, y_keys, group_key = spec
    rows = [r for r in report.rows if all(k in r for k in [x_key, *y_keys])]
    if group_key is None and rows and "epsilon" in rows[0]:
        # fig8 sweeps two epsilon blocks; chart the first for clarity.
        first_eps = rows[0]["epsilon"]
        rows = [r for r in rows if r["epsilon"] == first_eps]
    return chart_from_rows(rows, x_key, y_keys, group_key=group_key)


if __name__ == "__main__":
    sys.exit(main())
