"""Figure 2: a single user's 7-day mobility pattern.

The paper illustrates the threat with one victim's 7-day trace (2,414 raw
check-ins) whose top-1/top-2 locations are visually obvious.  This driver
regenerates the equivalent synthetic victim and reports the reconstructed
profile — the textual analogue of the figure: a couple of dominant
clusters plus scattered nomadic visits.
"""

from __future__ import annotations

from repro.attack.profiling import ProfilingAttack
from repro.datagen.casestudy import make_fig2_user
from repro.experiments.tables import ExperimentReport

__all__ = ["run"]


def run(seed: int = 7) -> ExperimentReport:
    """Regenerate Figure 2's single-victim mobility summary."""
    user = make_fig2_user(seed=seed)
    profile = ProfilingAttack().build_profile(user.trace)
    rows = []
    for rank, entry in enumerate(profile.top(5), start=1):
        true_err = min(
            entry.location.distance_to(t) for t in user.true_tops
        )
        # Report rows are published artifacts: only distances (which carry
        # no absolute position) may appear, never the reconstructed
        # coordinates themselves — printing the victim's recovered home
        # would be exactly the longitudinal leak the paper describes.
        rows.append(
            {
                "rank": rank,
                "frequency": entry.frequency,
                "share": entry.frequency / profile.total_checkins,
                "dist_to_true_anchor_m": true_err,
            }
        )
    return ExperimentReport(
        experiment_id="fig2",
        title="7-day mobility pattern of one victim",
        rows=rows,
        notes=[
            f"trace: {len(user.trace)} check-ins over 7 days "
            f"(paper victim: 2,414)",
            f"clustered locations: {len(profile)}; entropy: {profile.entropy():.3f}",
            "paper: top-1 (home) and top-2 (office) dominate and are "
            "visually recoverable",
        ],
    )
