"""Table II: obfuscation processing time as the user count grows.

The paper measures, on a Raspberry Pi 3, the time for an edge device to
build every user's location profile and generate their candidate
locations, for 2,000..32,000 users (340 s .. 4,014 s — near-linear).  We
measure the same workload on this host: per user, cluster the trace into a
profile, compute the eta-frequent set, and pin n-fold candidates.

The workload fans out over :func:`repro.parallel.parallel_map` when
``workers > 1`` — the per-user jobs are independent, exactly the property
the paper relies on to scale edges horizontally.

Absolute numbers differ from the Pi 3; the reproduced claim is the
near-linear scaling shape (see the doubling ratios in the notes).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache
from repro.data.stages import population_coords_pool
from repro.edge.location_management import DEFAULT_ETA
from repro.experiments.config import PAPER_DELTA, PAPER_NFOLD_N, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.metrics.timing import measure_scaling
from repro.obs.trace import span as _obs_span
from repro.parallel import parallel_map, resolve_workers
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile

__all__ = [
    "run",
    "obfuscation_workload",
    "PAPER_SIZES",
    "DEFAULT_SIZES",
    "POOL_MIN_USERS",
]

#: The paper's workload sizes.
PAPER_SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)
#: Scaled-down default so the bench completes in seconds.
DEFAULT_SIZES = (200, 400, 800, 1_600, 3_200)

#: Paper-reported Pi 3 timings for the notes (seconds).
PAPER_TIMES_S = {2_000: 340, 4_000: 627, 8_000: 1_166, 16_000: 2_090, 32_000: 4_014}

#: Minimum batch size before the process pool is worth its fork cost;
#: per-user work is ~1 ms, so small batches run in-process.
POOL_MIN_USERS = 2_000


def _obfuscate_users(indices: List[int], rng: np.random.Generator, payload) -> list:
    """Chunk worker: profile + eta-set + candidate pinning per user."""
    coords_pool, budget = payload
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    for i in indices:
        coords = coords_pool[i % len(coords_pool)]
        profile = LocationProfile.from_coords(coords)
        tops = eta_frequent_set(profile, DEFAULT_ETA)
        if tops:
            mechanism.obfuscate_batch([(p.x, p.y) for p in tops])
    return [None] * len(indices)


def obfuscation_workload(
    coords_pool: Sequence[np.ndarray],
    budget: GeoIndBudget,
    workers: Optional[int] = 1,
    seed: int = 0,
) -> Callable[[int], None]:
    """Returns the per-size workload callable for :func:`measure_scaling`."""
    payload = (list(coords_pool), budget)

    def workload(n_users: int) -> None:
        with _obs_span("table2.obfuscation", users=n_users):
            parallel_map(
                _obfuscate_users,
                range(n_users),
                workers=workers if n_users >= POOL_MIN_USERS else 1,
                seed=seed,
                payload=payload,
            )

    return workload


def run(
    scale: ExperimentScale = SMALL,
    sizes: Sequence[int] = DEFAULT_SIZES,
    pool_size: int = 50,
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
) -> ExperimentReport:
    """Regenerate Table II's obfuscation-time scaling rows.

    The trace pool (test fixture, not measured work) is served through the
    stage cache when one is given, so repeated timing runs skip the
    population generation entirely.
    """
    workers = resolve_workers(workers)
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=PAPER_DELTA, n=PAPER_NFOLD_N)
    pool_start = time.perf_counter()
    with _obs_span("table2.datagen", pool_size=pool_size):
        coords_pool = population_coords_pool(pool_size, scale.seed, cache)
    pool_seconds = time.perf_counter() - pool_start
    workload = obfuscation_workload(coords_pool, budget, workers=workers, seed=scale.seed)
    timings = measure_scaling(workload, sizes, warmup=1)
    rows = [
        {"users": t.size, "seconds": t.seconds, "ms_per_user": t.per_item_ms}
        for t in timings
    ]
    ratios = [
        timings[i + 1].seconds / timings[i].seconds for i in range(len(timings) - 1)
    ]
    return ExperimentReport(
        experiment_id="table2",
        title="obfuscation processing time vs number of users",
        rows=rows,
        notes=[
            "paper (Pi 3, Scala): "
            + ", ".join(f"{k}: {v}s" for k, v in PAPER_TIMES_S.items()),
            "paper shape: ~2x time per 2x users; measured doubling ratios: "
            + ", ".join(f"{r:.2f}" for r in ratios),
            f"workers: {workers}",
        ],
        meta={
            "workers": workers,
            "stage_seconds": {str(t.size): t.seconds for t in timings},
            "pool_seconds": pool_seconds,
            "cache": cache.stats() if cache is not None and cache.enabled else None,
        },
    )
