"""Table II: obfuscation processing time as the user count grows.

The paper measures, on a Raspberry Pi 3, the time for an edge device to
build every user's location profile and generate their candidate
locations, for 2,000..32,000 users (340 s .. 4,014 s — near-linear).  We
measure the same workload on this host: per user, cluster the trace into a
profile, compute the eta-frequent set, and pin n-fold candidates.

Absolute numbers differ from the Pi 3; the reproduced claim is the
near-linear scaling shape (see the doubling ratios in the notes).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.datagen.population import PopulationConfig, iter_population
from repro.edge.location_management import DEFAULT_ETA
from repro.experiments.config import PAPER_DELTA, PAPER_NFOLD_N, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.metrics.timing import TimingRow, measure_scaling
from repro.profiles.checkin import CheckIn
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile

__all__ = ["run", "obfuscation_workload", "PAPER_SIZES", "DEFAULT_SIZES"]

#: The paper's workload sizes.
PAPER_SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)
#: Scaled-down default so the bench completes in seconds.
DEFAULT_SIZES = (200, 400, 800, 1_600, 3_200)

#: Paper-reported Pi 3 timings for the notes (seconds).
PAPER_TIMES_S = {2_000: 340, 4_000: 627, 8_000: 1_166, 16_000: 2_090, 32_000: 4_014}


def _trace_pool(pool_size: int, seed: int) -> List[List[CheckIn]]:
    """A pool of realistic traces reused cyclically across the workload.

    Trace generation itself is not part of the measured edge workload, so
    the pool is built once up front.
    """
    config = PopulationConfig(n_users=pool_size, seed=seed)
    return [u.trace for u in iter_population(config)]


def obfuscation_workload(traces: Sequence[List[CheckIn]], budget: GeoIndBudget):
    """Returns the per-size workload callable for :func:`measure_scaling`."""
    mechanism = NFoldGaussianMechanism(budget, rng=default_rng(0))

    def workload(n_users: int) -> None:
        for i in range(n_users):
            trace = traces[i % len(traces)]
            profile = LocationProfile.from_checkins(trace)
            tops = eta_frequent_set(profile, DEFAULT_ETA)
            for top in tops:
                mechanism.obfuscate(top)

    return workload


def run(
    scale: ExperimentScale = SMALL,
    sizes: Sequence[int] = DEFAULT_SIZES,
    pool_size: int = 50,
) -> ExperimentReport:
    """Regenerate Table II's obfuscation-time scaling rows."""
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=PAPER_DELTA, n=PAPER_NFOLD_N)
    traces = _trace_pool(pool_size, scale.seed)
    workload = obfuscation_workload(traces, budget)
    timings = measure_scaling(workload, sizes)
    rows = [
        {"users": t.size, "seconds": t.seconds, "ms_per_user": t.per_item_ms}
        for t in timings
    ]
    ratios = [
        timings[i + 1].seconds / timings[i].seconds for i in range(len(timings) - 1)
    ]
    return ExperimentReport(
        experiment_id="table2",
        title="obfuscation processing time vs number of users",
        rows=rows,
        notes=[
            "paper (Pi 3, Scala): "
            + ", ".join(f"{k}: {v}s" for k, v in PAPER_TIMES_S.items()),
            "paper shape: ~2x time per 2x users; measured doubling ratios: "
            + ", ".join(f"{r:.2f}" for r in ratios),
        ],
    )
