"""Table II: obfuscation processing time as the user count grows.

The paper measures, on a Raspberry Pi 3, the time for an edge device to
build every user's location profile and generate their candidate
locations, for 2,000..32,000 users (340 s .. 4,014 s — near-linear).  We
measure the same workload on this host: cluster each user's trace into a
profile, compute the eta-frequent set, and pin n-fold candidates.

Two execution modes measure the same workload:

* ``mode="kernel"`` (default) — the population kernels of
  :mod:`repro.kernels`: each chunk of users is profiled, eta-reduced and
  pinned in whole-chunk array passes.
* ``mode="loop"`` — the per-user reference: one profile / eta set /
  ``obfuscate_batch`` call per user.

Both modes draw each user's pinning noise from the user's own
``SeedSequence.spawn`` stream, so their candidate outputs are
bit-identical to each other and across ``--workers N`` — the digest in
the report meta pins that.  Populations come either from the classic
replicated coords pool (``tier=None``, laptop-friendly) or from a named
dataset tier (``tier="city"`` / ``"metro-100k"``) served through the
stage cache.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache
from repro.data.columns import CheckInColumns, chunk_csr
from repro.data.mmapstore import release_pages
from repro.data.stages import population_coords_pool
from repro.data.tiers import tier_columns
from repro.edge.location_management import DEFAULT_ETA
from repro.experiments.config import PAPER_DELTA, PAPER_NFOLD_N, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.kernels.frequent import population_eta_tops
from repro.kernels.gaussian import pin_candidates_population, user_rng
from repro.kernels.profiles import population_profiles
from repro.metrics.timing import measure_scaling
from repro.obs.trace import span as _obs_span
from repro.parallel import parallel_map, resolve_workers
from repro.profiles.frequent import eta_frequent_xy
from repro.profiles.profile import LocationProfile

__all__ = [
    "run",
    "obfuscation_workload",
    "obfuscation_digest",
    "PAPER_SIZES",
    "DEFAULT_SIZES",
    "POOL_MIN_USERS",
]

#: The paper's workload sizes.
PAPER_SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)
#: Scaled-down default so the bench completes in seconds.
DEFAULT_SIZES = (200, 400, 800, 1_600, 3_200)

#: Paper-reported Pi 3 timings for the notes (seconds).
PAPER_TIMES_S = {2_000: 340, 4_000: 627, 8_000: 1_166, 16_000: 2_090, 32_000: 4_014}

#: Minimum batch size before the process pool is worth its fork cost.
POOL_MIN_USERS = 2_000


def _chunk_csr(
    ck_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray], indices: List[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rebase a contiguous user range of a CSR payload to local offsets."""
    xs, ys, offsets = ck_arrays
    return chunk_csr(xs, ys, offsets, indices[0], indices[-1] + 1)


def _obfuscate_users_kernel(
    indices: List[int], rng: np.random.Generator, payload
) -> list:
    """Chunk worker (kernel mode): three array passes over the whole chunk."""
    (xs, ys, offsets), budget, seed = payload
    cxs, cys, coffsets = _chunk_csr((xs, ys, offsets), indices)
    mechanism = NFoldGaussianMechanism(budget)
    with _obs_span("table2.profile", users=len(indices)):
        profiles = population_profiles(cxs, cys, coffsets)
    with _obs_span("table2.eta", users=len(indices)):
        top_xs, top_ys, top_offsets = population_eta_tops(profiles, DEFAULT_ETA)
    with _obs_span("table2.pin", users=len(indices)):
        # Timing benchmark: the pinned candidates are discarded, nothing
        # is released to any consumer, so there is no budget to charge.
        # reprolint: disable=BUD101
        pin_candidates_population(
            top_xs, top_ys, top_offsets, mechanism.sigma, budget.n, seed,
            user_ids=np.asarray(indices, dtype=np.int64),
        )
    # Surrender this chunk's window of file-backed pages (no-op for heap
    # columns): worker residency stays one window, not the whole tier.
    release_pages(xs, ys, offsets)
    return [None] * len(indices)


def _obfuscate_users_loop(
    indices: List[int], rng: np.random.Generator, payload
) -> list:
    """Chunk worker (loop mode): the per-user reference path."""
    (xs, ys, offsets), budget, seed = payload
    for i in indices:
        sl = slice(offsets[i], offsets[i + 1])
        profile = LocationProfile.from_xy(xs[sl], ys[sl])
        top_xs, top_ys = eta_frequent_xy(profile, DEFAULT_ETA)
        if len(top_xs):
            mechanism = NFoldGaussianMechanism(budget, rng=user_rng(seed, i))
            # Timing benchmark: output discarded, nothing released.
            # reprolint: disable=BUD101
            mechanism.obfuscate_batch(np.column_stack((top_xs, top_ys)))
    release_pages(xs, ys, offsets)
    return [None] * len(indices)


_MODE_WORKERS = {"kernel": _obfuscate_users_kernel, "loop": _obfuscate_users_loop}


def _digest_chunk(indices: List[int], rng: np.random.Generator, payload) -> list:
    """Chunk worker: sha256 of the chunk's pinned candidate bytes.

    Hashes the kernel path's output per chunk; chunk boundaries are a
    pure function of the item count, so the combined digest is invariant
    to the worker count — and the loop path produces the same bytes.
    """
    (xs, ys, offsets), budget, seed = payload
    cxs, cys, coffsets = _chunk_csr((xs, ys, offsets), indices)
    mechanism = NFoldGaussianMechanism(budget)
    profiles = population_profiles(cxs, cys, coffsets)
    top_xs, top_ys, top_offsets = population_eta_tops(profiles, DEFAULT_ETA)
    # Equivalence check: the candidates are reduced to a sha256 digest
    # (which carries no coordinates) and discarded, not released.
    # reprolint: disable=BUD101
    candidates = pin_candidates_population(
        top_xs, top_ys, top_offsets, mechanism.sigma, budget.n, seed,
        user_ids=np.asarray(indices, dtype=np.int64),
    )
    h = hashlib.sha256()
    # Derived (heap) arrays, not tier columns: hashing requires the exact
    # contiguous bytes the kernels produced.
    # reprolint: disable=PERF003
    h.update(np.ascontiguousarray(top_offsets).tobytes())
    # reprolint: disable=PERF003
    h.update(np.ascontiguousarray(candidates).tobytes())
    digest = h.hexdigest()
    release_pages(xs, ys, offsets)
    return [digest] + [None] * (len(indices) - 1)


def obfuscation_digest(
    ck: CheckInColumns,
    n_users: int,
    budget: GeoIndBudget,
    seed: int,
    workers: Optional[int] = 1,
) -> str:
    """Combined sha256 of the first ``n_users`` users' pinned candidates.

    The worker-invariance witness for the bench artifacts: the same value
    must come back for any ``workers`` (and from either workload mode,
    since both draw from the same per-user streams).
    """
    chunk_digests = parallel_map(
        _digest_chunk,
        range(n_users),
        workers=workers,
        seed=seed,
        payload=((ck.xs, ck.ys, ck.offsets), budget, seed),
    )
    combined = hashlib.sha256()
    for d in chunk_digests:
        if d is not None:
            combined.update(d.encode())
    return combined.hexdigest()


def obfuscation_workload(
    ck: CheckInColumns,
    budget: GeoIndBudget,
    workers: Optional[int] = 1,
    seed: int = 0,
    mode: str = "kernel",
) -> Callable[[int], None]:
    """Per-size workload callable for :func:`measure_scaling`.

    ``workload(n)`` profiles + eta-reduces + pins the first ``n`` users of
    ``ck`` in the requested mode.
    """
    if mode not in _MODE_WORKERS:
        raise ValueError(f"unknown mode {mode!r}; expected one of {sorted(_MODE_WORKERS)}")
    fn = _MODE_WORKERS[mode]
    payload = ((ck.xs, ck.ys, ck.offsets), budget, seed)

    def workload(n_users: int) -> None:
        with _obs_span("table2.obfuscation", users=n_users, mode=mode):
            parallel_map(
                fn,
                range(n_users),
                workers=workers if n_users >= POOL_MIN_USERS else 1,
                seed=seed,
                payload=payload,
            )

    return workload


def _pool_columns(coords_pool: Sequence[np.ndarray], n_users: int) -> CheckInColumns:
    """Tile a coords pool into an ``n_users``-user CSR workload input."""
    pool = list(coords_pool)
    picks = [pool[i % len(pool)] for i in range(n_users)]
    lengths = np.asarray([len(c) for c in picks], dtype=np.int64)
    stacked = (
        np.concatenate(picks) if picks else np.empty((0, 2), dtype=float)
    ).reshape(-1, 2)
    return CheckInColumns(
        xs=stacked[:, 0],
        ys=stacked[:, 1],
        timestamps=np.zeros(len(stacked)),
        offsets=np.concatenate([[0], np.cumsum(lengths)]),
    )


def run(
    scale: ExperimentScale = SMALL,
    sizes: Optional[Sequence[int]] = DEFAULT_SIZES,
    pool_size: int = 50,
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
    tier: Optional[str] = None,
    mode: str = "kernel",
    with_digest: bool = False,
    mmap: bool = False,
) -> ExperimentReport:
    """Regenerate Table II's obfuscation-time scaling rows.

    With ``tier`` set, the workload runs over that named dataset tier's
    CSR population (sizes default to quarter/half/full tier) instead of
    the replicated coords pool.  Population generation is a test fixture,
    not measured work — it is served through the stage cache when one is
    given.  ``mmap`` serves the tier out of core (memmap-backed columns,
    shipped to workers by path+offset); candidates are bit-identical to
    the in-memory run, only peak RSS changes.  ``with_digest`` adds the
    (untimed) candidate digest of the largest size to the report meta.
    """
    workers = resolve_workers(workers)
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=PAPER_DELTA, n=PAPER_NFOLD_N)
    pool_start = time.perf_counter()
    if tier is not None:
        with _obs_span("table2.datagen", tier=tier, mmap=mmap):
            ck = tier_columns(tier, cache, workers=workers, mmap=mmap).checkins
        if sizes is None or sizes is DEFAULT_SIZES:
            sizes = (ck.n_users // 4, ck.n_users // 2, ck.n_users)
    else:
        if sizes is None:
            sizes = DEFAULT_SIZES
        with _obs_span("table2.datagen", pool_size=pool_size):
            coords_pool = population_coords_pool(pool_size, scale.seed, cache)
        ck = _pool_columns(coords_pool, max(sizes))
    pool_seconds = time.perf_counter() - pool_start

    workload = obfuscation_workload(
        ck, budget, workers=workers, seed=scale.seed, mode=mode
    )
    timings = measure_scaling(workload, sizes, warmup=1)
    rows = [
        {"users": t.size, "seconds": t.seconds, "ms_per_user": t.per_item_ms}
        for t in timings
    ]
    ratios = [
        timings[i + 1].seconds / timings[i].seconds for i in range(len(timings) - 1)
    ]
    digest = (
        obfuscation_digest(ck, max(sizes), budget, scale.seed, workers=workers)
        if with_digest
        else None
    )
    return ExperimentReport(
        experiment_id="table2",
        title="obfuscation processing time vs number of users",
        rows=rows,
        notes=[
            "paper (Pi 3, Scala): "
            + ", ".join(f"{k}: {v}s" for k, v in PAPER_TIMES_S.items()),
            "paper shape: ~2x time per 2x users; measured doubling ratios: "
            + ", ".join(f"{r:.2f}" for r in ratios),
            f"workers: {workers}, mode: {mode}"
            + (f", tier: {tier}" if tier else "")
            + (", mmap" if mmap else ""),
        ],
        meta={
            "workers": workers,
            "mode": mode,
            "tier": tier,
            "mmap": mmap if tier is not None else None,
            "stage_seconds": {str(t.size): t.seconds for t in timings},
            "pool_seconds": pool_seconds,
            "digest": digest,
            "cache": cache.stats() if cache is not None and cache.enabled else None,
        },
    )
