"""Figure 9: advertising efficacy vs n under various radii (eps = 1).

Measures the probability that an ad requested from the selected reported
location is relevant to the user's true location, as the candidate count n
grows — with the posterior output-selection module doing the selection.

Paper result: thanks to output selection, efficacy does not significantly
decrease as n grows.  The ``selector`` parameter allows the ablation run
with uniform selection, where efficacy *does* decay.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import OutputSelector, PosteriorSelector, UniformSelector
from repro.data.cache import StageCache, stage_key
from repro.experiments.config import (
    PAPER_DELTA,
    PAPER_RADII_M,
    PAPER_TARGETING_RADIUS_M,
    SMALL,
    ExperimentScale,
)
from repro.experiments.tables import ExperimentReport
from repro.metrics.efficacy import efficacy_samples_batched
from repro.obs.trace import span as _obs_span
from repro.parallel import parallel_map

__all__ = ["run", "efficacy_for", "EFFICACY_STAGE_VERSION"]

#: Bump when the efficacy sweep changes output for unchanged parameters.
#: "2": trials run through efficacy_samples_batched (three array passes
#: per sweep point), which consumes the rng in batched call order.
EFFICACY_STAGE_VERSION = "2"


def efficacy_for(
    epsilon: float,
    r: float,
    n: int,
    trials: int,
    seed: int,
    selector_kind: str = "posterior",
) -> float:
    """Mean advertising efficacy for one parameter combination."""
    budget = GeoIndBudget(r=r, epsilon=epsilon, delta=PAPER_DELTA, n=n)
    rng = default_rng(seed)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    selector: OutputSelector
    if selector_kind == "posterior":
        selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
    elif selector_kind == "uniform":
        selector = UniformSelector(rng=rng)
    else:
        raise ValueError(f"unknown selector kind: {selector_kind}")
    samples = efficacy_samples_batched(
        mechanism,
        selector,
        trials=trials,
        targeting_radius=PAPER_TARGETING_RADIUS_M,
        rng=rng,
    )
    return float(samples.mean())


def _fig9_combo(combos: List[int], rng: np.random.Generator, payload) -> list:
    """Chunk worker: one efficacy row per n, sweeping all radii.

    Each n reuses its explicit ``scale.seed + n`` seed, so rows do not
    depend on the chunk schedule or worker count.
    """
    scale, epsilon, selector_kind = payload
    rows = []
    for n in combos:
        with _obs_span("fig9.sweep_point", n=n, epsilon=epsilon):
            row = {"n": n}
            for r in PAPER_RADII_M:
                row[f"efficacy(r={r:.0f})"] = efficacy_for(
                    epsilon,
                    r,
                    n,
                    trials=scale.trials,
                    seed=scale.seed + n,
                    selector_kind=selector_kind,
                )
            rows.append(row)
    return rows


def _row_key(
    n: int, epsilon: float, selector_kind: str, scale: ExperimentScale
) -> str:
    return stage_key(
        "fig9-efficacy",
        {
            "n": n,
            "epsilon": epsilon,
            "delta": PAPER_DELTA,
            "selector": selector_kind,
            "radii": PAPER_RADII_M,
            "trials": scale.trials,
            "seed": scale.seed + n,
        },
        EFFICACY_STAGE_VERSION,
    )


def run(
    scale: ExperimentScale = SMALL,
    epsilon: float = 1.0,
    ns: Sequence[int] = tuple(range(1, 11)),
    selector_kind: str = "posterior",
    workers: Optional[int] = 1,
    cache: Optional[StageCache] = None,
) -> ExperimentReport:
    """Regenerate Figure 9's efficacy-vs-n sweep.

    Sweep points are individually cached; partial recomputes stay
    bit-identical because each n consumes its own ``scale.seed + n`` seed.
    """
    if cache is None:
        cache = StageCache.disabled()
    ns = list(ns)
    by_n = {}
    missing = []
    for n in ns:
        arrays = cache.load(_row_key(n, epsilon, selector_kind, scale))
        if arrays is None:
            missing.append(n)
        else:
            values = arrays["efficacy"]
            row = {"n": n}
            for r, v in zip(PAPER_RADII_M, values):
                row[f"efficacy(r={r:.0f})"] = float(v)
            by_n[n] = row
    if missing:
        computed = parallel_map(
            _fig9_combo,
            missing,
            workers=workers,
            seed=scale.seed,
            chunk_size=1,
            payload=(scale, epsilon, selector_kind),
        )
        for n, row in zip(missing, computed):
            values = np.asarray(
                [row[f"efficacy(r={r:.0f})"] for r in PAPER_RADII_M], dtype=float
            )
            cache.store(
                _row_key(n, epsilon, selector_kind, scale), {"efficacy": values}
            )
            by_n[n] = row
    rows = [by_n[n] for n in ns]
    return ExperimentReport(
        experiment_id="fig9",
        title=f"advertising efficacy vs n (eps={epsilon}, {selector_kind} selection)",
        rows=rows,
        notes=[
            f"trials per point: {scale.trials} (paper: 100,000)",
            "paper: with posterior output selection, efficacy does not "
            "significantly decrease as n grows",
        ],
        meta={
            "workers": workers,
            "cache": cache.stats() if cache.enabled else None,
        },
    )
