"""Benchmark harness for the experiment pipelines.

Three jobs, all reachable through ``repro bench``:

* ``repro bench <experiment>`` — run a cache-aware experiment cold (cache
  cleared) and then warm (second run over the same cache), archive both
  as ``BENCH_<id>_cache_cold.json`` / ``BENCH_<id>_cache_warm.json`` in
  the same shape as the pytest-benchmark archives, and print the warm
  speedup.  For the deterministic experiments the harness also asserts
  the cold and warm rows are bit-identical.  The table2 workload takes
  ``--tier small|city|metro-100k`` (named dataset tiers), ``--mode
  kernel|loop`` (population kernels vs the per-user reference path),
  ``--digest`` (attach the candidate sha256 — the worker-invariance
  witness; cold/warm digests must agree) and ``--trace`` (attach
  per-span timing summaries from ``repro.obs``); the bench id grows
  matching suffixes, e.g. ``BENCH_table2_city_kernel_cache_cold.json``.
* ``repro bench shm`` — measure the shared-memory fan-out transport:
  ship the same large payload to a process pool with shared memory on
  and off and archive bytes-over-pickle vs bytes-over-shm.
* ``repro bench --compare OLD.json NEW.json`` — regression gate: exits
  non-zero when NEW's wall clock (overall or any shared stage) regresses
  more than ``--threshold`` (default 10 %) over OLD.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pickle
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.cache import StageCache
from repro.data.plane import DataPlaneConfig, add_data_plane_arguments
from repro.experiments import (
    fig6_attack,
    fig7_mechanisms,
    fig9_efficacy,
    table2_obfuscation_time,
    table3_selection_time,
)
from repro.experiments.config import FULL, MEDIUM, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.obs import trace as _trace
from repro.obs.rss import peak_rss_bytes
from repro.parallel import (
    parallel_map_with_stats,
    set_shared_memory_enabled,
    shared_memory_enabled,
)

__all__ = [
    "main",
    "compare_benches",
    "run_cold_warm",
    "run_shm_bench",
    "BENCH_RUNNERS",
    "DEFAULT_REGRESSION_THRESHOLD",
    "MIN_REGRESSION_SECONDS",
]

SCALES: Dict[str, ExperimentScale] = {s.name: s for s in (SMALL, MEDIUM, FULL)}

#: Wall-clock regressions beyond this fraction fail ``--compare``.
DEFAULT_REGRESSION_THRESHOLD = 0.10

#: Stages faster than this are pure noise at CI runner granularity;
#: regressions must also exceed it in absolute terms to fail the gate.
MIN_REGRESSION_SECONDS = 0.05

#: Cache-aware experiment drivers: id -> run(scale, workers, cache).
BENCH_RUNNERS: Dict[
    str, Callable[[ExperimentScale, Optional[int], StageCache], ExperimentReport]
] = {
    "fig6": lambda scale, workers, cache: fig6_attack.run(
        scale, workers=workers, cache=cache
    ),
    "fig7": lambda scale, workers, cache: fig7_mechanisms.run(
        scale, workers=workers, cache=cache
    ),
    "fig9": lambda scale, workers, cache: fig9_efficacy.run(
        scale, workers=workers, cache=cache
    ),
    "table2": lambda scale, workers, cache: table2_obfuscation_time.run(
        scale, workers=workers, cache=cache
    ),
    "table3": lambda scale, workers, cache: table3_selection_time.run(
        scale, workers=workers, cache=cache
    ),
}

#: Experiments whose rows are pure functions of the seed (the timing
#: tables measure wall clock, which never replays identically).
DETERMINISTIC_ROWS = frozenset({"fig6", "fig7", "fig9"})


def _payload(
    report: ExperimentReport,
    bench_id: str,
    wall_seconds: float,
    scale: ExperimentScale,
    spans: Optional[Dict[str, dict]] = None,
) -> dict:
    """One archive entry, same shape as ``benchmarks/conftest.py`` writes."""
    out = {
        "experiment_id": bench_id,
        "title": report.title,
        "wall_seconds": wall_seconds,
        "workers": report.meta.get("workers"),
        "scale": dataclasses.asdict(scale),
        "stage_seconds": report.meta.get("stage_seconds", {}),
        "cache": report.meta.get("cache"),
        "rows": report.rows,
        "notes": report.notes,
        # Process-lifetime high-water mark (parent or any reaped pool
        # worker): the number that separates the out-of-core data plane
        # from heap materialisation at the big tiers.
        "peak_rss_bytes": peak_rss_bytes(include_children=True),
    }
    for key in ("mode", "tier", "mmap", "digest"):
        if report.meta.get(key) is not None:
            out[key] = report.meta[key]
    if spans is not None:
        out["spans"] = spans
    return out


def _summarise_spans(spans: List[dict]) -> Dict[str, dict]:
    """Aggregate raw span records to per-name count/total-seconds."""
    summary: Dict[str, dict] = {}
    for record in spans:
        entry = summary.setdefault(record["name"], {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += float(record["seconds"])
    for entry in summary.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return summary


def _archive(payload: dict, results_dir: Path) -> Path:
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{payload['experiment_id']}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def _timed_run(
    runner: Callable[[ExperimentScale, Optional[int], StageCache], ExperimentReport],
    scale: ExperimentScale,
    workers: Optional[int],
    cache: StageCache,
    with_spans: bool,
) -> Tuple[ExperimentReport, float, Optional[Dict[str, dict]]]:
    start = time.perf_counter()
    if with_spans:
        with _trace.collect() as obs:
            report = runner(scale, workers, cache)
        spans: Optional[Dict[str, dict]] = _summarise_spans(obs.spans)
    else:
        report = runner(scale, workers, cache)
        spans = None
    return report, time.perf_counter() - start, spans


def run_cold_warm(
    exp_id: str,
    scale: ExperimentScale,
    workers: Optional[int] = 1,
    cache_dir: Optional[Path] = None,
    results_dir: Optional[Path] = None,
    tier: Optional[str] = None,
    mode: Optional[str] = None,
    with_digest: bool = False,
    with_spans: bool = False,
    mmap: bool = False,
) -> Tuple[dict, dict]:
    """Run ``exp_id`` cold (cleared cache) then warm; archive both runs.

    Returns the (cold, warm) archive payloads.  Raises ``RuntimeError``
    if a deterministic experiment's warm rows differ from its cold rows —
    a cache hit must be indistinguishable from a recompute.

    ``tier``/``mode``/``with_digest``/``mmap`` parameterise the table2
    workload (dataset tier, kernel-vs-loop execution, candidate digest,
    out-of-core serving); the bench id grows matching suffixes so each
    combination archives separately.  ``with_spans`` wraps both runs in
    the observability collector and attaches per-span-name timing
    summaries.
    """
    if exp_id not in BENCH_RUNNERS:
        raise ValueError(
            f"unknown cache-aware experiment {exp_id!r}; "
            f"choose from {sorted(BENCH_RUNNERS)}"
        )
    if tier is not None or mode is not None or with_digest or mmap:
        if exp_id != "table2":
            raise ValueError("tier/mode/digest/mmap options only apply to table2")
        if mmap and tier is None:
            raise ValueError("--mmap needs a --tier (only tiers are mmap-served)")

        def runner(
            scale: ExperimentScale, workers: Optional[int], cache: StageCache
        ) -> ExperimentReport:
            return table2_obfuscation_time.run(
                scale,
                workers=workers,
                cache=cache,
                tier=tier,
                mode=mode or "kernel",
                with_digest=with_digest,
                mmap=mmap,
            )

        bench_id = "_".join(
            [exp_id]
            + ([tier] if tier else [])
            + ([mode] if mode else [])
            + (["mmap"] if mmap else [])
        )
    else:
        runner = BENCH_RUNNERS[exp_id]
        bench_id = exp_id
    cache = StageCache(cache_dir)
    cache.clear()

    cold_report, cold_seconds, cold_spans = _timed_run(
        runner, scale, workers, cache, with_spans
    )
    warm_cache = StageCache(cache_dir)
    warm_report, warm_seconds, warm_spans = _timed_run(
        runner, scale, workers, warm_cache, with_spans
    )

    if exp_id in DETERMINISTIC_ROWS and warm_report.rows != cold_report.rows:
        raise RuntimeError(
            f"{exp_id}: warm-cache rows differ from cold-cache rows — "
            "a stage cache entry is not bit-identical to its recompute"
        )
    cold_digest = cold_report.meta.get("digest")
    warm_digest = warm_report.meta.get("digest")
    if cold_digest is not None and cold_digest != warm_digest:
        raise RuntimeError(
            f"{exp_id}: warm-cache candidate digest differs from cold — "
            "the cached tier is not bit-identical to its regeneration"
        )
    cold = _payload(
        cold_report, f"{bench_id}_cache_cold", cold_seconds, scale, cold_spans
    )
    warm = _payload(
        warm_report, f"{bench_id}_cache_warm", warm_seconds, scale, warm_spans
    )
    if results_dir is not None:
        _archive(cold, results_dir)
        _archive(warm, results_dir)
    return cold, warm


def _shm_probe_chunk(indices: List[int], rng: np.random.Generator, payload) -> list:
    """Touch every shipped array so transport cost is actually paid."""
    coords = payload["coords"]
    return [float(coords[i % len(coords)].sum()) for i in indices]


def run_shm_bench(
    n_points: int = 500_000,
    n_tasks: int = 64,
    workers: int = 2,
    results_dir: Optional[Path] = None,
) -> dict:
    """Compare shipping one large read-only array via shm vs pickle.

    The payload is deterministic (an ``arange`` grid), so both transports
    must return identical results; the archived metrics are the bytes
    that crossed each transport and the wall clock of each fan-out.
    """
    coords = np.arange(n_points * 2, dtype=np.float64).reshape(n_points, 2)
    payload = {"coords": coords}
    was_enabled = shared_memory_enabled()
    try:
        set_shared_memory_enabled(True)
        start = time.perf_counter()
        shm_results, shm_stats = parallel_map_with_stats(
            _shm_probe_chunk, range(n_tasks), workers=workers, seed=0, payload=payload
        )
        shm_seconds = time.perf_counter() - start

        set_shared_memory_enabled(False)
        start = time.perf_counter()
        pickle_results, pickle_stats = parallel_map_with_stats(
            _shm_probe_chunk, range(n_tasks), workers=workers, seed=0, payload=payload
        )
        pickle_seconds = time.perf_counter() - start
    finally:
        set_shared_memory_enabled(was_enabled)

    if shm_results != pickle_results:
        raise RuntimeError(
            "shared-memory fan-out returned different results than pickling"
        )
    result = {
        "experiment_id": "shm_fanout",
        "title": "worker payload transport: shared memory vs pickle",
        "workers": workers,
        "n_points": n_points,
        "payload_nbytes": int(coords.nbytes),
        "shm": {
            "wall_seconds": shm_seconds,
            "shared_arrays": shm_stats.shared_arrays,
            "shared_bytes": shm_stats.shared_bytes,
            "pickled_payload_bytes": _exported_pickle_bytes(payload),
        },
        "pickle": {
            "wall_seconds": pickle_seconds,
            "shared_arrays": pickle_stats.shared_arrays,
            "shared_bytes": pickle_stats.shared_bytes,
            "pickled_payload_bytes": len(pickle.dumps(payload)),
        },
        "notes": [
            "identical results on both transports (asserted)",
            "shm ships array bodies out-of-band: workers attach by name "
            "instead of deserialising a copy each",
        ],
    }
    if results_dir is not None:
        _archive(result, results_dir)
    return result


def _exported_pickle_bytes(payload: dict) -> int:
    """Bytes the pool pickles once the large arrays ride out-of-band."""
    from repro.parallel import export_payload

    exported, lease = export_payload(payload)
    try:
        return len(pickle.dumps(exported))
    finally:
        lease.release()


def _stage_regressions(
    old: dict, new: dict, threshold: float, min_abs: float
) -> List[str]:
    problems = []
    old_wall = old.get("wall_seconds")
    new_wall = new.get("wall_seconds")
    if (
        isinstance(old_wall, (int, float))
        and isinstance(new_wall, (int, float))
        and np.isfinite(old_wall)
        and np.isfinite(new_wall)
        and new_wall > old_wall * (1.0 + threshold)
        and new_wall - old_wall > min_abs
    ):
        problems.append(
            f"wall_seconds: {old_wall:.3f}s -> {new_wall:.3f}s "
            f"(+{(new_wall / old_wall - 1.0) * 100.0:.1f}%)"
        )
    old_stages = old.get("stage_seconds") or {}
    new_stages = new.get("stage_seconds") or {}
    if not isinstance(old_stages, dict):
        old_stages = {}
    if not isinstance(new_stages, dict):
        new_stages = {}
    for stage in sorted(set(old_stages) & set(new_stages)):
        try:
            o, n = float(old_stages[stage]), float(new_stages[stage])
        except (TypeError, ValueError):
            continue
        if n > o * (1.0 + threshold) and n - o > min_abs:
            problems.append(
                f"stage {stage!r}: {o:.3f}s -> {n:.3f}s "
                f"(+{(n / o - 1.0) * 100.0:.1f}%)"
            )
    return problems


def stage_key_notes(old: dict, new: dict) -> List[str]:
    """Non-fatal notes about stage keys the gate could not compare.

    A stage-version bump (or a renamed span) silently drops keys out of
    the OLD∩NEW intersection the regression gate walks; these notes make
    the uncomparable keys explicit so a "clean" comparison that actually
    compared nothing is visible in the gate's output.
    """
    old_stages = old.get("stage_seconds") or {}
    new_stages = new.get("stage_seconds") or {}
    if not isinstance(old_stages, dict) or not isinstance(new_stages, dict):
        return ["stage_seconds is not a mapping in one archive; stages not compared"]
    notes: List[str] = []
    gone = sorted(set(old_stages) - set(new_stages))
    added = sorted(set(new_stages) - set(old_stages))
    if gone:
        notes.append(
            "stages only in OLD (removed or renamed, not compared): "
            + ", ".join(repr(s) for s in gone)
        )
    if added:
        notes.append(
            "stages only in NEW (added or renamed, not compared): "
            + ", ".join(repr(s) for s in added)
        )
    if old_stages and new_stages and not (set(old_stages) & set(new_stages)):
        notes.append(
            "no common stage keys — only the overall wall clock was gated"
        )
    return notes


def compare_benches(
    old: dict,
    new: dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_abs_seconds: float = MIN_REGRESSION_SECONDS,
) -> List[str]:
    """Wall-clock regressions of ``new`` over ``old``; empty when clean.

    A regression is flagged when a stage (or the overall wall clock) is
    both ``threshold`` fractionally slower *and* ``min_abs_seconds``
    absolutely slower — the absolute floor keeps millisecond-scale stages
    from tripping the gate on scheduler noise.
    """
    return _stage_regressions(old, new, threshold, min_abs_seconds)


def _cmd_compare(old_path: str, new_path: str, threshold: float) -> int:
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    problems = compare_benches(old, new, threshold)
    label = f"{old.get('experiment_id', old_path)} -> {new.get('experiment_id', new_path)}"
    for note in stage_key_notes(old, new):
        print(f"note ({label}): {note}")
    if problems:
        print(f"REGRESSION ({label}):")
        for p in problems:
            print(f"  {p}")
        return 1
    old_wall, new_wall = old.get("wall_seconds"), new.get("wall_seconds")
    if isinstance(old_wall, (int, float)) and isinstance(new_wall, (int, float)):
        print(f"ok ({label}): {old_wall:.3f}s -> {new_wall:.3f}s")
    else:
        print(f"ok ({label})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro bench`` / ``python -m repro.experiments.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="cache/shared-memory benchmarks and the regression gate",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=sorted(BENCH_RUNNERS) + ["shm"],
        help="experiment to bench cold-then-warm, or 'shm' for the "
        "payload-transport bench",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        help="compare two bench archives; non-zero exit on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="fractional wall-clock regression tolerated by --compare "
        f"(default: {DEFAULT_REGRESSION_THRESHOLD})",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small", help="experiment scale"
    )
    # Benches always cache (cold-then-warm is the point), default to one
    # worker for stable timings.
    add_data_plane_arguments(parser, default_workers=1, default_cache=True)
    parser.add_argument(
        "--mode",
        choices=("kernel", "loop"),
        default=None,
        help="table2 execution mode: population kernels or the per-user loop",
    )
    parser.add_argument(
        "--digest",
        action="store_true",
        help="attach the (untimed) table2 candidate digest to the archives",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect repro.obs span timings into the archives",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path("benchmarks") / "results",
        help="where BENCH_*.json archives land (default: benchmarks/results)",
    )
    args = parser.parse_args(argv)

    if args.compare is not None:
        return _cmd_compare(args.compare[0], args.compare[1], args.threshold)
    if args.target is None:
        parser.error("give an experiment/shm target or --compare OLD NEW")
    try:
        plane = DataPlaneConfig.from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    if not plane.cache:
        parser.error("benches measure the stage cache; --no-cache is meaningless")
    plane.apply()

    if args.target == "shm":
        result = run_shm_bench(
            workers=max(plane.workers or 1, 2), results_dir=args.results_dir
        )
        shm, pkl = result["shm"], result["pickle"]
        print(
            f"shm fan-out: {shm['shared_bytes']} bytes shared, "
            f"{shm['pickled_payload_bytes']} pickled, {shm['wall_seconds']:.3f}s"
        )
        print(
            f"pickle fan-out: {pkl['pickled_payload_bytes']} bytes pickled, "
            f"{pkl['wall_seconds']:.3f}s"
        )
        return 0

    cold, warm = run_cold_warm(
        args.target,
        SCALES[args.scale],
        workers=plane.workers,
        cache_dir=plane.cache_dir,
        results_dir=args.results_dir,
        tier=plane.tier,
        mode=args.mode,
        mmap=plane.mmap,
        with_digest=args.digest,
        with_spans=args.trace,
    )
    speedup = (
        cold["wall_seconds"] / warm["wall_seconds"]
        if warm["wall_seconds"] > 0
        else float("inf")
    )
    print(
        f"{args.target}: cold {cold['wall_seconds']:.3f}s, "
        f"warm {warm['wall_seconds']:.3f}s ({speedup:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
