"""Figure 7: utilization rate of the three mechanisms vs n.

Fixes eps = 1, r = 500 m, R = 5 km and sweeps the number of obfuscated
outputs n = 1..10, measuring the utilization-rate distribution for:

* the n-fold Gaussian mechanism (sufficient-statistic calibration),
* the naive post-processing baseline, and
* the plain-composition Gaussian baseline.

Paper result: at n = 10 the n-fold mechanism reaches ~100 % UR, naive
post-processing ~58 %, plain composition ~20 % — and composition *loses*
utility as n grows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.baselines import (
    NaivePostProcessingMechanism,
    PlainCompositionMechanism,
)
from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import LPPM, default_rng
from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache, stage_key
from repro.experiments.config import (
    PAPER_ALPHA,
    PAPER_DELTA,
    PAPER_TARGETING_RADIUS_M,
    SMALL,
    ExperimentScale,
)
from repro.experiments.tables import ExperimentReport
from repro.metrics.utilization import summarize_utilization, utilization_samples
from repro.parallel import parallel_map

__all__ = ["run", "MECHANISM_FACTORIES", "ur_for_mechanism", "UR_STAGE_VERSION"]

#: Bump when the UR sweep changes output for unchanged parameters.
UR_STAGE_VERSION = "1"

MECHANISM_FACTORIES: Dict[str, Callable[[GeoIndBudget, np.random.Generator], LPPM]] = {
    "n-fold gaussian": lambda budget, rng: NFoldGaussianMechanism(budget, rng=rng),
    "naive post-processing": lambda budget, rng: NaivePostProcessingMechanism(
        budget, rng=rng
    ),
    "plain composition": lambda budget, rng: PlainCompositionMechanism(
        budget, rng=rng
    ),
}


def ur_for_mechanism(
    name: str,
    budget: GeoIndBudget,
    trials: int,
    mc_samples: int,
    seed: int,
) -> np.ndarray:
    """UR samples for one (mechanism, budget) combination."""
    factory = MECHANISM_FACTORIES[name]
    rng = default_rng(seed)
    mechanism = factory(budget, rng)
    return utilization_samples(
        mechanism,
        trials=trials,
        targeting_radius=PAPER_TARGETING_RADIUS_M,
        mc_samples=mc_samples,
        rng=rng,
    )


def _fig7_combo(combos: List[tuple], rng: np.random.Generator, payload) -> list:
    """Chunk worker: one (mechanism, n) sweep point per combo.

    Every combo carries its own explicit seed, so results are independent
    of the chunk schedule and worker count by construction.
    """
    scale, epsilon, r = payload
    rows = []
    for name, n in combos:
        budget = GeoIndBudget(r=r, epsilon=epsilon, delta=PAPER_DELTA, n=n)
        samples = ur_for_mechanism(
            name, budget, scale.trials, scale.mc_samples, seed=scale.seed + n
        )
        summary = summarize_utilization(samples, PAPER_ALPHA)
        rows.append(
            {
                "mechanism": name,
                "n": n,
                "mean_UR": summary.mean,
                f"min_UR@{PAPER_ALPHA}": summary.minimal_at_alpha,
            }
        )
    return rows


def _combo_key(name: str, n: int, epsilon: float, r: float, scale: ExperimentScale) -> str:
    return stage_key(
        "fig7-ur",
        {
            "mechanism": name,
            "n": n,
            "epsilon": epsilon,
            "r": r,
            "delta": PAPER_DELTA,
            "trials": scale.trials,
            "mc_samples": scale.mc_samples,
            "seed": scale.seed + n,
            "alpha": PAPER_ALPHA,
        },
        UR_STAGE_VERSION,
    )


def run(
    scale: ExperimentScale = SMALL,
    epsilon: float = 1.0,
    r: float = 500.0,
    ns: Sequence[int] = tuple(range(1, 11)),
    workers: Optional[int] = 1,
    cache: Optional[StageCache] = None,
) -> ExperimentReport:
    """Regenerate Figure 7's mechanism utilization comparison.

    Each sweep point is keyed in the stage cache on its full parameter
    set; only cache-missing combos are recomputed.  Partial recomputes
    stay bit-identical because every combo consumes its own explicit
    ``scale.seed + n`` seed, never the chunk schedule's RNG.
    """
    if cache is None:
        cache = StageCache.disabled()
    combos = [(name, n) for name in MECHANISM_FACTORIES for n in ns]
    by_combo: Dict[tuple, dict] = {}
    missing = []
    for name, n in combos:
        arrays = cache.load(_combo_key(name, n, epsilon, r, scale))
        if arrays is None:
            missing.append((name, n))
        else:
            stats = arrays["stats"]
            by_combo[(name, n)] = {
                "mechanism": name,
                "n": n,
                "mean_UR": float(stats[0]),
                f"min_UR@{PAPER_ALPHA}": float(stats[1]),
            }
    if missing:
        computed = parallel_map(
            _fig7_combo,
            missing,
            workers=workers,
            seed=scale.seed,
            chunk_size=1,
            payload=(scale, epsilon, r),
        )
        for (name, n), row in zip(missing, computed):
            cache.store(
                _combo_key(name, n, epsilon, r, scale),
                {
                    "stats": np.asarray(
                        [row["mean_UR"], row[f"min_UR@{PAPER_ALPHA}"]], dtype=float
                    )
                },
            )
            by_combo[(name, n)] = row
    rows = [by_combo[combo] for combo in combos]
    return ExperimentReport(
        experiment_id="fig7",
        title=f"utilization rate by mechanism (eps={epsilon}, r={r:.0f} m)",
        rows=rows,
        notes=[
            f"trials per point: {scale.trials} (paper: 100,000)",
            "paper at n=10: n-fold ~100%, naive post-processing ~58%, "
            "plain composition ~20% (and composition degrades with n)",
        ],
        meta={
            "workers": workers,
            "cache": cache.stats() if cache.enabled else None,
        },
    )
