"""Figure 6: longitudinal attack success, one-time geo-IND vs Edge-PrivLocAd.

For every user in the population the full year of check-ins is reported
through either deployment and attacked:

* **one-time geo-IND** — independent planar Laplace noise per check-in at
  levels l in {ln 2, ln 4, ln 6} over 200 m (the original geo-IND paper's
  settings).  Paper result: 75-93 % of top-1 locations recovered within
  200 m; >50 % of top-2 at the looser levels.
* **Edge-PrivLocAd (permanent 10-fold Gaussian)** — top locations receive
  pinned candidate sets (r = 500 m, eps in {1, 1.5}, delta = 0.01) served
  through posterior output selection; nomadic check-ins get fresh 1-fold
  Gaussian noise.  Paper result: <1 % recovered within 200 m, <=6.8 %
  within 500 m.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.success import UserAttackOutcome, evaluate_user, success_rate
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.datagen.population import PopulationConfig, SyntheticUser, iter_population
from repro.edge.location_management import DEFAULT_ETA
from repro.experiments.config import (
    PAPER_DELTA,
    PAPER_EPSILONS,
    PAPER_NFOLD_N,
    PAPER_ONETIME_LEVELS,
    PAPER_ONETIME_RADIUS_M,
    SMALL,
    ExperimentScale,
)
from repro.experiments.tables import ExperimentReport
from repro.parallel import parallel_map
from repro.profiles.frequent import eta_frequent_set
from repro.profiles.profile import LocationProfile

__all__ = ["run", "attack_one_time", "attack_defended"]

THRESHOLDS_M = (200.0, 500.0)
DEFENSE_R_M = 500.0


def _attack_one_time_chunk(
    indices: List[int], rng: np.random.Generator, payload
) -> List[UserAttackOutcome]:
    """Chunk worker: obfuscate + attack one slice of the population.

    The mechanism is rebuilt per chunk on the chunk's derived RNG, so the
    noise a user receives depends only on the root seed and the chunk
    schedule — never on the worker count.
    """
    users, level = payload
    mechanism = PlanarLaplaceMechanism.from_level(
        level, PAPER_ONETIME_RADIUS_M, rng=rng
    )
    attack = DeobfuscationAttack.against(mechanism)
    outcomes = []
    for i in indices:
        user = users[i]
        observed = one_time_obfuscate(user.trace, mechanism)
        inferred = [
            r.location for r in attack.infer_top_locations(observed, 2)
        ]
        outcomes.append(evaluate_user(inferred, user.true_tops[:2]))
    return outcomes


def attack_one_time(
    users: Sequence[SyntheticUser],
    level: float,
    seed: int,
    workers: Optional[int] = 1,
) -> List[UserAttackOutcome]:
    """Attack a population deployed behind one-time planar Laplace noise."""
    users = list(users)
    return parallel_map(
        _attack_one_time_chunk,
        range(len(users)),
        workers=workers,
        seed=seed,
        payload=(users, level),
    )


def _attack_defended_chunk(
    indices: List[int], rng: np.random.Generator, payload
) -> List[UserAttackOutcome]:
    """Chunk worker: Edge-PrivLocAd deployment + attack for one user slice."""
    users, epsilon, n = payload
    budget = GeoIndBudget(r=DEFENSE_R_M, epsilon=epsilon, delta=PAPER_DELTA, n=n)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    nomadic = GaussianMechanism(budget.with_n(1), rng=rng)
    selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
    attack = DeobfuscationAttack.against(mechanism)
    outcomes = []
    for i in indices:
        user = users[i]
        profile = LocationProfile.from_checkins(user.trace)
        tops = eta_frequent_set(profile, DEFAULT_ETA)
        reported = permanent_obfuscate(
            user.trace,
            tops,
            mechanism,
            selector,
            nomadic_mechanism=nomadic,
        )
        inferred = [
            r.location for r in attack.infer_top_locations(reported, 2)
        ]
        outcomes.append(evaluate_user(inferred, user.true_tops[:2]))
    return outcomes


def attack_defended(
    users: Sequence[SyntheticUser],
    epsilon: float,
    seed: int,
    n: int = PAPER_NFOLD_N,
    workers: Optional[int] = 1,
) -> List[UserAttackOutcome]:
    """Attack a population deployed behind the permanent n-fold mechanism."""
    users = list(users)
    return parallel_map(
        _attack_defended_chunk,
        range(len(users)),
        workers=workers,
        seed=seed,
        payload=(users, epsilon, n),
    )


def _rates(outcomes: List[UserAttackOutcome]) -> Dict[str, float]:
    row = {}
    for rank in (1, 2):
        for thr in THRESHOLDS_M:
            row[f"top{rank}_within_{int(thr)}m"] = success_rate(outcomes, rank, thr)
    return row


def run(
    scale: ExperimentScale = SMALL, workers: Optional[int] = 1
) -> ExperimentReport:
    """Regenerate Figure 6's attack-success comparison.

    ``workers`` fans the per-user attack loops out over a process pool;
    rows are bit-identical for any worker count at the same seed.
    """
    config = PopulationConfig(n_users=scale.n_users, seed=scale.seed)
    users = list(iter_population(config))
    rows = []
    for level in PAPER_ONETIME_LEVELS:
        outcomes = attack_one_time(
            users, level, seed=scale.seed + 1, workers=workers
        )
        rows.append(
            {
                "mechanism": "one-time geo-IND",
                "parameter": f"l=ln({round(math.exp(level))})",
                **_rates(outcomes),
            }
        )
    for epsilon in PAPER_EPSILONS:
        outcomes = attack_defended(
            users, epsilon, seed=scale.seed + 2, workers=workers
        )
        rows.append(
            {
                "mechanism": "permanent 10-fold Gaussian",
                "parameter": f"eps={epsilon}",
                **_rates(outcomes),
            }
        )
    return ExperimentReport(
        experiment_id="fig6",
        title="longitudinal attack success rate",
        rows=rows,
        notes=[
            f"users: {len(users)} (paper: 37,262)",
            "paper: one-time top-1 within 200 m: 75% (ln2), >90% (ln4, ln6); "
            "top-2 >50% (ln4, ln6)",
            "paper: defended top-1/top-2 within 200 m <1%; within 500 m "
            "6.8% / 5%",
        ],
        meta={"workers": workers},
    )
