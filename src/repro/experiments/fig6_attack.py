"""Figure 6: longitudinal attack success, one-time geo-IND vs Edge-PrivLocAd.

For every user in the population the full year of check-ins is reported
through either deployment and attacked:

* **one-time geo-IND** — independent planar Laplace noise per check-in at
  levels l in {ln 2, ln 4, ln 6} over 200 m (the original geo-IND paper's
  settings).  Paper result: 75-93 % of top-1 locations recovered within
  200 m; >50 % of top-2 at the looser levels.
* **Edge-PrivLocAd (permanent 10-fold Gaussian)** — top locations receive
  pinned candidate sets (r = 500 m, eps in {1, 1.5}, delta = 0.01) served
  through posterior output selection; nomadic check-ins get fresh 1-fold
  Gaussian noise.  Paper result: <1 % recovered within 200 m, <=6.8 %
  within 500 m.

The pipeline is columnar end to end: the population travels to pool
workers as a :class:`~repro.data.columns.PopulationColumns` payload
(shared-memory arrays, not pickled object lists), each worker reads CSR
slices, and the per-user inference errors come back as one ``(U, 2)``
float array per stage.  Those error arrays are the unit of caching — a
warm :class:`~repro.data.cache.StageCache` skips population generation
and the attacks entirely while producing bit-identical rows, because the
rows are a pure function of the cached errors.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.attack.success import UserAttackOutcome, evaluate_user
from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache, stage_key
from repro.data.columns import PopulationColumns, chunk_csr
from repro.data.mmapstore import release_pages
from repro.data.stages import population_columns
from repro.data.tiers import tier_columns, tier_config
from repro.datagen.population import PopulationConfig, SyntheticUser
from repro.edge.location_management import DEFAULT_ETA
from repro.experiments.config import (
    PAPER_DELTA,
    PAPER_EPSILONS,
    PAPER_NFOLD_N,
    PAPER_ONETIME_LEVELS,
    PAPER_ONETIME_RADIUS_M,
    SMALL,
    ExperimentScale,
)
from repro.experiments.tables import ExperimentReport
from repro.geo.point import Point
from repro.kernels.frequent import population_eta_tops
from repro.kernels.obfuscate import (
    one_time_laplace_population,
    permanent_obfuscate_population,
)
from repro.kernels.profiles import population_profiles
from repro.obs.trace import span as _obs_span
from repro.parallel import parallel_map

__all__ = ["run", "attack_one_time", "attack_defended", "ATTACK_STAGE_VERSION"]

THRESHOLDS_M = (200.0, 500.0)
DEFENSE_R_M = 500.0

#: Bump when the attack stages change output for unchanged parameters.
#: "2": obfuscation moved to the population kernels — noise now comes
#: from per-user spawned streams instead of a shared per-chunk rng.
ATTACK_STAGE_VERSION = "2"

#: A user's inferred top locations, best first, as plain coordinates.
InferredXY = List[Tuple[float, float]]


def _attack_one_time_chunk(
    indices: List[int], rng: np.random.Generator, payload
) -> List[InferredXY]:
    """Chunk worker: obfuscate + attack one slice of the population.

    Obfuscation is one :func:`one_time_laplace_population` pass over the
    chunk's CSR slice; each user's noise comes from that user's own
    spawned stream, so outputs depend only on ``(seed, user id)`` — never
    on the worker count or the chunk schedule.  The chunk rng is unused
    on purpose.
    """
    pop, level, seed = payload
    mechanism = PlanarLaplaceMechanism.from_level(level, PAPER_ONETIME_RADIUS_M)
    attack = DeobfuscationAttack.against(mechanism)
    ck = pop.checkins
    lo, hi = indices[0], indices[-1] + 1
    cxs, cys, coffsets = chunk_csr(ck.xs, ck.ys, ck.offsets, lo, hi)
    with _obs_span("fig6.obfuscation", deployment="one-time", users=len(indices)):
        reported = one_time_laplace_population(
            cxs, cys, coffsets, mechanism.epsilon, seed,
            user_ids=np.arange(lo, hi, dtype=np.int64),
        )
        # Every check-in is an independent epsilon-per-metre release, and
        # under one-time deployment they compose: this accountant records
        # exactly the budget blow-up the figure demonstrates.
        LongitudinalExposureAccountant().observe(
            mechanism.epsilon, count=int(cxs.size)
        )
    with _obs_span("fig6.attack", deployment="one-time", users=len(indices)):
        out = []
        for j in range(len(indices)):
            obs_xy = reported[coffsets[j]:coffsets[j + 1]]
            inferred = attack.estimate_xy(obs_xy, 2)
            out.append([(p.x, p.y) for p in inferred])
    # File-backed columns: hand this window's pages back so worker RSS
    # stays one window deep (no-op for heap columns).
    release_pages(ck.xs, ck.ys, ck.offsets)
    return out


def _attack_defended_chunk(
    indices: List[int], rng: np.random.Generator, payload
) -> List[InferredXY]:
    """Chunk worker: Edge-PrivLocAd deployment + attack for one user slice.

    Profiling, eta reduction and the full permanent reporting stream are
    population-kernel passes over the chunk's CSR slice
    (:func:`population_profiles` / :func:`population_eta_tops` /
    :func:`permanent_obfuscate_population`); per-user spawned streams
    make the output invariant to chunking, so the chunk rng is unused.
    """
    pop, epsilon, n, seed = payload
    budget = GeoIndBudget(r=DEFENSE_R_M, epsilon=epsilon, delta=PAPER_DELTA, n=n)
    mechanism = NFoldGaussianMechanism(budget)
    nomadic_sigma = GaussianMechanism(budget.with_n(1)).sigma
    attack = DeobfuscationAttack.against(mechanism)
    ck = pop.checkins
    lo, hi = indices[0], indices[-1] + 1
    cxs, cys, coffsets = chunk_csr(ck.xs, ck.ys, ck.offsets, lo, hi)
    with _obs_span("fig6.obfuscation", deployment="defended", users=len(indices)):
        profiles = population_profiles(cxs, cys, coffsets)
        top_xs, top_ys, top_offsets = population_eta_tops(profiles, DEFAULT_ETA)
        reported = permanent_obfuscate_population(
            cxs, cys, coffsets, top_xs, top_ys, top_offsets,
            sigma=mechanism.sigma, n=n,
            posterior_sigma=mechanism.posterior_sigma,
            nomadic_sigma=nomadic_sigma, seed=seed,
            user_ids=np.arange(lo, hi, dtype=np.int64),
        )
        # Permanent deployment spends once per pinned top location (the
        # n-fold release); replayed reports of a pinned top are free by
        # the sufficient-statistic analysis, which is the entire defence.
        LongitudinalExposureAccountant().observe(
            budget.epsilon / budget.r, count=max(1, int(top_xs.size))
        )
    with _obs_span("fig6.attack", deployment="defended", users=len(indices)):
        out = []
        for j in range(len(indices)):
            inferred = attack.estimate_xy(
                reported[coffsets[j]:coffsets[j + 1]], 2
            )
            out.append([(p.x, p.y) for p in inferred])
    release_pages(ck.xs, ck.ys, ck.offsets)
    return out


def _infer_one_time(
    pop: PopulationColumns, level: float, seed: int, workers: Optional[int]
) -> List[InferredXY]:
    return parallel_map(
        _attack_one_time_chunk,
        range(pop.n_users),
        workers=workers,
        seed=seed,
        payload=(pop, level, seed),
    )


def _infer_defended(
    pop: PopulationColumns,
    epsilon: float,
    seed: int,
    n: int,
    workers: Optional[int],
) -> List[InferredXY]:
    return parallel_map(
        _attack_defended_chunk,
        range(pop.n_users),
        workers=workers,
        seed=seed,
        payload=(pop, epsilon, n, seed),
    )


def _error_rows(inferred: List[InferredXY], pop: PopulationColumns) -> np.ndarray:
    """Per-user inference errors as a ``(U, 2)`` float array.

    ``errors[i, k]`` is the distance between the rank-``k+1`` inference
    and user ``i``'s true rank-``k+1`` location; ``inf`` when the attack
    produced no inference at that rank, ``NaN`` when the user has no true
    location there (ineligible — excluded from the rate denominator).
    """
    errors = np.full((len(inferred), 2), np.nan)
    for i, guesses in enumerate(inferred):
        truths = pop.user_true_tops(i)[:2]
        for k, truth in enumerate(truths):
            if k < len(guesses):
                errors[i, k] = Point(*guesses[k]).distance_to(truth)
            else:
                errors[i, k] = np.inf
    return errors


def _outcomes(
    inferred: List[InferredXY], pop: PopulationColumns
) -> List[UserAttackOutcome]:
    return [
        evaluate_user(
            [Point(x, y) for x, y in guesses], pop.user_true_tops(i)[:2]
        )
        for i, guesses in enumerate(inferred)
    ]


def attack_one_time(
    users: Sequence[SyntheticUser],
    level: float,
    seed: int,
    workers: Optional[int] = 1,
) -> List[UserAttackOutcome]:
    """Attack a population deployed behind one-time planar Laplace noise."""
    pop = PopulationColumns.from_users(users)
    return _outcomes(_infer_one_time(pop, level, seed, workers), pop)


def attack_defended(
    users: Sequence[SyntheticUser],
    epsilon: float,
    seed: int,
    n: int = PAPER_NFOLD_N,
    workers: Optional[int] = 1,
) -> List[UserAttackOutcome]:
    """Attack a population deployed behind the permanent n-fold mechanism."""
    pop = PopulationColumns.from_users(users)
    return _outcomes(_infer_defended(pop, epsilon, seed, n, workers), pop)


def _rates_from_errors(errors: np.ndarray) -> Dict[str, float]:
    """Success rates per (rank, threshold) from an error array.

    Same floats as ``success_rate`` over the object outcomes: integer hit
    counts over integer eligible counts.
    """
    row = {}
    for rank in (1, 2):
        col = errors[:, rank - 1]
        eligible = ~np.isnan(col)
        n_eligible = int(eligible.sum())
        for thr in THRESHOLDS_M:
            key = f"top{rank}_within_{int(thr)}m"
            if n_eligible == 0:
                row[key] = 0.0
            else:
                row[key] = int((col[eligible] <= thr).sum()) / n_eligible
    return row


def run(
    scale: ExperimentScale = SMALL,
    workers: Optional[int] = 1,
    cache: Optional[StageCache] = None,
    tier: Optional[str] = None,
    mmap: bool = False,
) -> ExperimentReport:
    """Regenerate Figure 6's attack-success comparison.

    ``workers`` fans the per-user attack loops out over a process pool;
    rows are bit-identical for any worker count at the same seed.  With a
    warm ``cache``, the per-stage error arrays load straight from disk
    and population generation is skipped — rows stay bit-identical
    because they are computed from the same arrays either way.

    ``tier`` swaps the scale's population for a named dataset tier
    (``city`` .. ``metro-1M``); ``mmap`` serves it out of core with
    memmap-backed columns shipped to workers by path+offset.  The error
    stages are keyed on the tier's population config, so cached errors
    are shared between mmap and heap serving — they are bit-identical.
    """
    if cache is None:
        cache = StageCache.disabled()
    if tier is not None:
        config = tier_config(tier)
    else:
        config = PopulationConfig(n_users=scale.n_users, seed=scale.seed)
    stage_seconds: Dict[str, float] = {}
    pop: Optional[PopulationColumns] = None

    def get_pop() -> PopulationColumns:
        nonlocal pop
        if pop is None:
            start = time.perf_counter()
            with _obs_span("fig6.datagen", n_users=config.n_users, mmap=mmap):
                if tier is not None:
                    pop = tier_columns(tier, cache, workers=workers, mmap=mmap)
                else:
                    pop = population_columns(config, cache)
            stage_seconds["population"] = time.perf_counter() - start
        return pop

    def stage_errors(stage: str, params: Dict[str, object], compute) -> np.ndarray:
        key = stage_key(stage, {"population": config, **params}, ATTACK_STAGE_VERSION)
        start = time.perf_counter()
        with _obs_span("fig6.stage", stage=stage, **params):
            cached = cache.load(key)
            if cached is None:
                inferred = compute()
                errors = _error_rows(inferred, get_pop())
                cache.store(key, {"errors": errors})
            else:
                errors = cached["errors"]
        stage_seconds[stage.replace("fig6-", "") + f" {params}"] = (
            time.perf_counter() - start
        )
        return errors

    rows = []
    for level in PAPER_ONETIME_LEVELS:
        errors = stage_errors(
            "fig6-onetime",
            {"level": level, "seed": scale.seed + 1},
            lambda: _infer_one_time(get_pop(), level, scale.seed + 1, workers),
        )
        rows.append(
            {
                "mechanism": "one-time geo-IND",
                "parameter": f"l=ln({round(math.exp(level))})",
                **_rates_from_errors(errors),
            }
        )
    for epsilon in PAPER_EPSILONS:
        errors = stage_errors(
            "fig6-defended",
            {"epsilon": epsilon, "n": PAPER_NFOLD_N, "seed": scale.seed + 2},
            lambda: _infer_defended(
                get_pop(), epsilon, scale.seed + 2, PAPER_NFOLD_N, workers
            ),
        )
        rows.append(
            {
                "mechanism": "permanent 10-fold Gaussian",
                "parameter": f"eps={epsilon}",
                **_rates_from_errors(errors),
            }
        )
    return ExperimentReport(
        experiment_id="fig6",
        title="longitudinal attack success rate",
        rows=rows,
        notes=[
            f"users: {config.n_users} (paper: 37,262)",
            "paper: one-time top-1 within 200 m: 75% (ln2), >90% (ln4, ln6); "
            "top-2 >50% (ln4, ln6)",
            "paper: defended top-1/top-2 within 200 m <1%; within 500 m "
            "6.8% / 5%",
        ],
        meta={
            "workers": workers,
            "tier": tier,
            "mmap": mmap if tier is not None else None,
            "stage_seconds": stage_seconds,
            "cache": cache.stats() if cache.enabled else None,
        },
    )