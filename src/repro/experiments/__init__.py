"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments import (
    ext_adaptive,
    fig2_mobility,
    fig3_entropy,
    fig4_case_study,
    fig6_attack,
    fig7_mechanisms,
    fig8_min_utilization,
    fig9_efficacy,
    table1_limits,
    table2_obfuscation_time,
    table3_selection_time,
)
from repro.experiments.config import FULL, MEDIUM, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport, format_table

__all__ = [
    "ExperimentReport",
    "ext_adaptive",
    "ExperimentScale",
    "format_table",
    "SMALL",
    "MEDIUM",
    "FULL",
    "fig2_mobility",
    "fig3_entropy",
    "fig4_case_study",
    "fig6_attack",
    "fig7_mechanisms",
    "fig8_min_utilization",
    "fig9_efficacy",
    "table1_limits",
    "table2_obfuscation_time",
    "table3_selection_time",
]
