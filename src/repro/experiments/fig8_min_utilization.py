"""Figure 8: minimal utilization rate at confidence alpha = 0.9.

Sweeps the n-fold Gaussian mechanism over n = 1..10 for both privacy
levels (eps = 1, 1.5) and all indistinguishability radii (r = 500..800 m),
reporting the (1 - alpha) quantile of the UR distribution (Eq. 24).

Paper result: generating more outputs raises the minimal UR — from ~0.6
(n=1) to ~0.9 (n=10) at eps = 1.5, and by ~60 % in general at eps = 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.experiments.config import (
    PAPER_ALPHA,
    PAPER_DELTA,
    PAPER_EPSILONS,
    PAPER_RADII_M,
    PAPER_TARGETING_RADIUS_M,
    SMALL,
    ExperimentScale,
)
from repro.experiments.tables import ExperimentReport
from repro.metrics.utilization import minimal_utilization, utilization_samples
from repro.parallel import parallel_map

__all__ = ["run", "minimal_ur_for"]


def minimal_ur_for(
    epsilon: float,
    r: float,
    n: int,
    trials: int,
    mc_samples: int,
    seed: int,
    alpha: float = PAPER_ALPHA,
) -> float:
    """Minimal UR of the n-fold mechanism for one parameter combination."""
    budget = GeoIndBudget(r=r, epsilon=epsilon, delta=PAPER_DELTA, n=n)
    rng = default_rng(seed)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    samples = utilization_samples(
        mechanism,
        trials=trials,
        targeting_radius=PAPER_TARGETING_RADIUS_M,
        mc_samples=mc_samples,
        rng=rng,
    )
    return minimal_utilization(samples, alpha)


def _fig8_combo(combos: List[tuple], rng: np.random.Generator, payload) -> list:
    """Chunk worker: one (epsilon, n) row per combo, sweeping all radii.

    Each combo reuses its explicit ``scale.seed + n`` seed, so rows do not
    depend on the chunk schedule or worker count.
    """
    scale = payload
    rows = []
    for epsilon, n in combos:
        row = {"epsilon": epsilon, "n": n}
        for r in PAPER_RADII_M:
            row[f"min_UR(r={r:.0f})"] = minimal_ur_for(
                epsilon,
                r,
                n,
                trials=scale.trials,
                mc_samples=scale.mc_samples,
                seed=scale.seed + n,
            )
        rows.append(row)
    return rows


def run(
    scale: ExperimentScale = SMALL,
    ns: Sequence[int] = tuple(range(1, 11)),
    workers: Optional[int] = 1,
) -> ExperimentReport:
    """Regenerate Figure 8's minimal-UR parameter sweep."""
    combos = [(epsilon, n) for epsilon in PAPER_EPSILONS for n in ns]
    rows = parallel_map(
        _fig8_combo,
        combos,
        workers=workers,
        seed=scale.seed,
        chunk_size=1,
        payload=scale,
    )
    return ExperimentReport(
        experiment_id="fig8",
        title=f"minimal utilization rate at alpha={PAPER_ALPHA}",
        rows=rows,
        notes=[
            f"trials per point: {scale.trials} (paper: 100,000)",
            "paper: min UR rises with n; eps=1.5 goes ~0.6 (n=1) to ~0.9 "
            "(n=10); eps=1 improves ~60% from n=1 to n=10",
        ],
        meta={"workers": workers},
    )
