"""Plain-text table rendering for experiment reports.

Every experiment driver returns structured rows; this module renders them
as aligned text tables so benches and the CLI print paper-style output
without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentReport", "format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1_000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), max(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{sep}\n{body}"


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment driver.

    ``rows`` regenerate the paper's table/figure series; ``notes`` carry
    the paper's reference numbers so EXPERIMENTS.md and the bench output
    show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[List[str]] = None
    #: Machine-readable run metadata (worker count, per-stage timings,
    #: parallel stats) — archived into the BENCH_<id>.json files.
    meta: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The report as an aligned text block with notes."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        parts.append(format_table(self.rows, self.columns))
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)
