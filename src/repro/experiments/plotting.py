"""ASCII line charts for the figure drivers.

The paper's evaluation is figures; this module lets the CLI runner render
each reproduced series as a terminal chart (no plotting dependency), so
``repro experiments fig7 --charts`` shows the crossover shapes directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_chart", "chart_from_rows"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a fixed-size ASCII chart.

    Each series gets a marker character; axes are annotated with the data
    ranges.  Intended for monotone-ish experiment curves, not precision
    plotting.
    """
    if not series:
        return "(no series)"
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 characters")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    top = f"{y_max:.3g}".rjust(8)
    bottom = f"{y_min:.3g}".rjust(8)
    lines = []
    for i, row in enumerate(grid):
        prefix = top if i == 0 else bottom if i == height - 1 else " " * 8
        lines.append(f"{prefix} |{''.join(row)}")
    x_axis = " " * 8 + " +" + "-" * width
    x_labels = (
        " " * 10
        + f"{x_min:.3g}".ljust(width // 2)
        + f"{x_max:.3g}".rjust(width - width // 2)
    )
    out = lines + [x_axis, x_labels, " " * 10 + "   ".join(legend)]
    if y_label:
        out.insert(0, " " * 8 + y_label)
    return "\n".join(out)


def chart_from_rows(
    rows: Sequence[dict],
    x_key: str,
    y_keys: Sequence[str],
    group_key: Optional[str] = None,
    **chart_kwargs,
) -> str:
    """Build a chart from experiment-report rows.

    With ``group_key``, one series per distinct group value is drawn from
    the first ``y_keys`` entry; otherwise each ``y_keys`` column becomes a
    series.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    if group_key is not None:
        y_key = y_keys[0]
        for row in rows:
            name = str(row[group_key])
            series.setdefault(name, []).append(
                (float(row[x_key]), float(row[y_key]))
            )
    else:
        for y_key in y_keys:
            series[y_key] = [
                (float(row[x_key]), float(row[y_key])) for row in rows
            ]
    return ascii_chart(series, **chart_kwargs)
