"""Table III: output-selection time as the user count grows.

The paper measures the edge's per-tick cost of answering one ad request
per user via posterior output selection, for 2,000..32,000 users
(90 ms .. 1,377 ms on the Pi 3 — near-linear, milliseconds-scale).  We
run the same workload: every user holds a pinned 10-candidate set; each
tick draws one posterior-weighted output per user.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.experiments.config import PAPER_DELTA, PAPER_NFOLD_N, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.geo.point import Point
from repro.metrics.timing import measure_scaling

__all__ = ["run", "selection_workload", "PAPER_SIZES"]

PAPER_SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)

#: Paper-reported Pi 3 timings (milliseconds).
PAPER_TIMES_MS = {2_000: 90, 4_000: 175, 8_000: 350, 16_000: 698, 32_000: 1_377}


def selection_workload(budget: GeoIndBudget, max_users: int, seed: int):
    """Per-size workload: one posterior selection per user per tick."""
    rng = default_rng(seed)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    # Pre-pin one candidate set per user (table state, not measured).
    candidate_sets = [
        mechanism.obfuscate(Point(0.0, 0.0)) for _ in range(max_users)
    ]
    selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)

    def workload(n_users: int) -> None:
        for i in range(n_users):
            selector.select(candidate_sets[i])

    return workload


def run(
    scale: ExperimentScale = SMALL,
    sizes: Sequence[int] = PAPER_SIZES,
) -> ExperimentReport:
    """Regenerate Table III's selection-time scaling rows."""
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=PAPER_DELTA, n=PAPER_NFOLD_N)
    workload = selection_workload(budget, max_users=max(sizes), seed=scale.seed)
    timings = measure_scaling(workload, sizes, repeats=2)
    rows = [
        {
            "users": t.size,
            "milliseconds": t.seconds * 1_000.0,
            "us_per_user": t.per_item_ms * 1_000.0,
        }
        for t in timings
    ]
    ratios = [
        timings[i + 1].seconds / timings[i].seconds for i in range(len(timings) - 1)
    ]
    return ExperimentReport(
        experiment_id="table3",
        title="output selection time vs number of users",
        rows=rows,
        notes=[
            "paper (Pi 3, Scala): "
            + ", ".join(f"{k}: {v}ms" for k, v in PAPER_TIMES_MS.items()),
            "paper shape: ~2x time per 2x users; measured doubling ratios: "
            + ", ".join(f"{r:.2f}" for r in ratios),
        ],
    )
