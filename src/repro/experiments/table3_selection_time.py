"""Table III: output-selection time as the user count grows.

The paper measures the edge's per-tick cost of answering one ad request
per user via posterior output selection, for 2,000..32,000 users
(90 ms .. 1,377 ms on the Pi 3 — near-linear, milliseconds-scale).  We
run the same workload: every user holds a pinned 10-candidate set; each
tick draws one posterior-weighted output per user, batched through
:meth:`OutputSelector.select_index_batch` and fanned out over
:func:`repro.parallel.parallel_map` when ``workers > 1``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.data.cache import StageCache
from repro.data.stages import candidate_table
from repro.experiments.config import PAPER_DELTA, PAPER_NFOLD_N, SMALL, ExperimentScale
from repro.experiments.tables import ExperimentReport
from repro.metrics.timing import measure_scaling
from repro.parallel import parallel_map, resolve_workers

__all__ = ["run", "selection_workload", "PAPER_SIZES"]

PAPER_SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)

#: Paper-reported Pi 3 timings (milliseconds).
PAPER_TIMES_MS = {2_000: 90, 4_000: 175, 8_000: 350, 16_000: 698, 32_000: 1_377}

#: Users per selection batch: bounds transient weight matrices while
#: keeping the per-batch numpy work large enough to amortise dispatch.
SELECTION_BATCH = 4_096

#: Minimum tick size before the process pool is worth its fork cost; the
#: per-tick work is milliseconds-scale, so small ticks stay in-process on
#: the vectorised batch path.
POOL_MIN_USERS = 65_536


def _select_chunk(starts: List[int], rng: np.random.Generator, payload) -> list:
    """Chunk worker: one posterior selection per user in each batch."""
    candidate_sets, sigma, batch = payload
    selector = PosteriorSelector(sigma, rng=rng)
    for start in starts:
        selector.select_index_batch(candidate_sets[start : start + batch])
    return [None] * len(starts)


def selection_workload(
    budget: GeoIndBudget,
    max_users: int,
    seed: int,
    workers: Optional[int] = 1,
    cache: Optional[StageCache] = None,
) -> Callable[[int], None]:
    """Per-size workload: one posterior selection per user per tick."""
    # Pre-pin one candidate set per user (table state, not measured) —
    # cache-served when a StageCache is given, same draws either way.
    candidate_sets = candidate_table(budget, max_users, seed, cache)
    sigma = NFoldGaussianMechanism(budget, rng=default_rng(seed)).posterior_sigma

    def workload(n_users: int) -> None:
        sets = candidate_sets[:n_users]
        if workers is not None and workers > 1 and n_users >= POOL_MIN_USERS:
            starts = list(range(0, n_users, SELECTION_BATCH))
            parallel_map(
                _select_chunk,
                starts,
                workers=workers,
                seed=seed,
                payload=(sets, sigma, SELECTION_BATCH),
            )
        else:
            selector = PosteriorSelector(sigma, rng=default_rng(seed))
            for start in range(0, n_users, SELECTION_BATCH):
                selector.select_index_batch(sets[start : start + SELECTION_BATCH])

    return workload


def run(
    scale: ExperimentScale = SMALL,
    sizes: Sequence[int] = PAPER_SIZES,
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
) -> ExperimentReport:
    """Regenerate Table III's selection-time scaling rows."""
    workers = resolve_workers(workers)
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=PAPER_DELTA, n=PAPER_NFOLD_N)
    workload = selection_workload(
        budget, max_users=max(sizes), seed=scale.seed, workers=workers, cache=cache
    )
    timings = measure_scaling(workload, sizes, repeats=2, warmup=1)
    rows = [
        {
            "users": t.size,
            "milliseconds": t.seconds * 1_000.0,
            "us_per_user": t.per_item_ms * 1_000.0,
        }
        for t in timings
    ]
    ratios = [
        timings[i + 1].seconds / timings[i].seconds for i in range(len(timings) - 1)
    ]
    return ExperimentReport(
        experiment_id="table3",
        title="output selection time vs number of users",
        rows=rows,
        notes=[
            "paper (Pi 3, Scala): "
            + ", ".join(f"{k}: {v}ms" for k, v in PAPER_TIMES_MS.items()),
            "paper shape: ~2x time per 2x users; measured doubling ratios: "
            + ", ".join(f"{r:.2f}" for r in ratios),
            f"workers: {workers}",
        ],
        meta={
            "workers": workers,
            "stage_seconds": {str(t.size): t.seconds for t in timings},
            "cache": cache.stats() if cache is not None and cache.enabled else None,
        },
    )
