"""Figure 4: the de-obfuscation case study over growing time windows.

One victim's year of check-ins is perturbed with one-time planar Laplace
noise (the original geo-IND setting, l = ln 2 at 200 m); the de-obfuscation
attack is then run on the first week, first month, and the full year of
perturbed data.  The paper's observation: the inference error shrinks from
~200 m (one week) to under 50 m (full year).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.accounting import LongitudinalExposureAccountant
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import default_rng
from repro.datagen.casestudy import make_fig4_user
from repro.datagen.obfuscate import one_time_obfuscate
from repro.datagen.shanghai import STUDY_START_TS
from repro.experiments.config import PAPER_ONETIME_RADIUS_M
from repro.experiments.tables import ExperimentReport
from repro.profiles.checkin import SECONDS_PER_DAY, checkins_to_array, filter_window

__all__ = ["run"]

WINDOWS = (("one week", 7.0), ("one month", 30.0), ("full year", 365.0))


def run(level: float = math.log(2), seed: int = 11) -> ExperimentReport:
    """Regenerate Figure 4's windowed de-obfuscation case study."""
    user = make_fig4_user()
    mechanism = PlanarLaplaceMechanism.from_level(
        level, PAPER_ONETIME_RADIUS_M, rng=default_rng(seed)
    )
    observed = one_time_obfuscate(user.trace, mechanism)
    # The victim releases one independent perturbation per check-in; the
    # accountant records the composed exposure the attack then exploits.
    accountant = LongitudinalExposureAccountant()
    accountant.observe(mechanism.epsilon, count=max(1, len(observed)))
    attack = DeobfuscationAttack.against(mechanism)
    rows = []
    for label, days in WINDOWS:
        window = filter_window(
            observed, STUDY_START_TS, STUDY_START_TS + days * SECONDS_PER_DAY
        )
        tops = (
            attack.estimate_xy(checkins_to_array(window), 1) if window else []
        )
        error = (
            tops[0].distance_to(user.true_tops[0]) if tops else float("inf")
        )
        rows.append(
            {
                "window": label,
                "observations": len(window),
                "inference_error_m": error,
            }
        )
    return ExperimentReport(
        experiment_id="fig4",
        title="de-obfuscation attack vs observation window",
        rows=rows,
        notes=[
            f"victim: {len(user.trace)} check-ins/yr "
            f"(paper: 1,969 incl. 1,628 top-1)",
            f"one-time geo-IND level l = {level:.3f} at 200 m",
            f"longitudinal exposure after the full year: effective l = "
            f"{accountant.effective_level(PAPER_ONETIME_RADIUS_M):.1f} at 200 m "
            f"({accountant.observations} composed releases)",
            "paper: error ~200 m after one week, <50 m after a full year",
        ],
    )
