"""Read trace files back and render them for humans and scrapers.

A trace file is JSON lines: an optional ``{"type": "trace"}`` header,
``{"type": "span"}`` records in span-*close* order, and a final
``{"type": "metrics"}`` snapshot.  :func:`read_trace` parses it,
:func:`build_span_tree` rebuilds the nesting from the ``(id, parent)``
edges, and the render functions produce either the ``repro obs`` summary
(tree + per-name aggregates + metrics) or a Prometheus-style text dump.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Snapshot
from repro.obs.trace import SpanRecord

__all__ = [
    "TraceData",
    "SpanNode",
    "read_trace",
    "build_span_tree",
    "render_summary",
    "render_prometheus",
]


@dataclass
class TraceData:
    """Everything one trace file contained."""

    spans: List[SpanRecord] = field(default_factory=list)
    metrics: Optional[Snapshot] = None
    header: Optional[Dict[str, Any]] = None


@dataclass
class SpanNode:
    """One span plus its children, in file (= completion) order."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)


def read_trace(path: str) -> TraceData:
    """Parse a JSON-lines trace file.

    Raises ``ValueError`` on a line that is not valid JSON — a truncated
    or corrupt trace should fail loudly, not render half a story.
    """
    data = TraceData()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid trace line: {exc}") from exc
            kind = obj.get("type")
            if kind == "span":
                data.spans.append(SpanRecord.from_dict(obj))
            elif kind == "metrics":
                data.metrics = obj.get("metrics")
            elif kind == "trace":
                data.header = obj
    return data


def build_span_tree(spans: List[SpanRecord]) -> List[SpanNode]:
    """Rebuild the span forest from ``(id, parent)`` edges.

    Children keep file order, which is completion order; a span whose
    parent never closed (crash mid-trace) is promoted to a root.
    """
    nodes: Dict[int, SpanNode] = {r.span_id: SpanNode(r) for r in spans}
    roots: List[SpanNode] = []
    for record in spans:
        node = nodes[record.span_id]
        parent = (
            nodes.get(record.parent_id) if record.parent_id is not None else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f"  [{inner}]"


def _render_node(node: SpanNode, depth: int, lines: List[str]) -> None:
    record = node.record
    lines.append(
        f"{'  ' * depth}{record.name:<{max(1, 36 - 2 * depth)}} "
        f"{record.seconds * 1000:10.2f} ms{_format_attrs(record.attrs)}"
    )
    for child in node.children:
        _render_node(child, depth + 1, lines)


def _aggregate_rows(spans: List[SpanRecord]) -> List[Dict[str, Any]]:
    by_name: Dict[str, List[float]] = {}
    for record in spans:
        by_name.setdefault(record.name, []).append(record.seconds)
    rows = []
    for name in sorted(by_name):
        secs = by_name[name]
        rows.append(
            {
                "span": name,
                "count": len(secs),
                "total_s": sum(secs),
                "mean_ms": 1000 * sum(secs) / len(secs),
                "max_ms": 1000 * max(secs),
            }
        )
    return rows


def render_summary(trace: TraceData, max_tree_lines: int = 200) -> str:
    """The ``repro obs`` default view: tree, aggregates, and metrics."""
    lines: List[str] = []
    tree_lines: List[str] = []
    for root in build_span_tree(trace.spans):
        _render_node(root, 0, tree_lines)
    if tree_lines:
        lines.append("span tree (durations are wall-clock):")
        lines.extend(tree_lines[:max_tree_lines])
        if len(tree_lines) > max_tree_lines:
            lines.append(f"  ... {len(tree_lines) - max_tree_lines} more spans")
        lines.append("")
    rows = _aggregate_rows(trace.spans)
    if rows:
        lines.append("per-span aggregates:")
        header = f"{'span':<36} {'count':>6} {'total s':>10} {'mean ms':>10} {'max ms':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row['span']:<36} {row['count']:>6} {row['total_s']:>10.3f} "
                f"{row['mean_ms']:>10.2f} {row['max_ms']:>10.2f}"
            )
        lines.append("")
    if trace.metrics:
        lines.append("metrics:")
        for name, value in trace.metrics.get("counters", {}).items():
            lines.append(f"  counter   {name} = {value}")
        for name, value in trace.metrics.get("gauges", {}).items():
            lines.append(f"  gauge     {name} = {value:.6g}")
        for name, value in trace.metrics.get("max_gauges", {}).items():
            lines.append(f"  max gauge {name} = {value:.6g}")
        for name, data in trace.metrics.get("histograms", {}).items():
            count = data.get("count", 0)
            mean = data.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"  histogram {name}: count={count} sum={data.get('sum', 0.0):.6g} "
                f"mean={mean:.6g}"
            )
    if not lines:
        return "(empty trace)"
    return "\n".join(lines).rstrip()


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes become underscores)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def render_prometheus(metrics: Optional[Snapshot]) -> str:
    """The metrics snapshot in Prometheus text exposition format."""
    if not metrics:
        return ""
    lines: List[str] = []
    for name, value in metrics.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {value}")
    for name, value in metrics.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, value in metrics.get("max_gauges", {}).items():
        # Max-merged high-water marks still expose as plain gauges —
        # Prometheus has no native "max" type.
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, data in metrics.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(data.get("bounds", []), data.get("counts", [])):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        total_count = data.get("count", 0)
        lines.append(f'{prom}_bucket{{le="+Inf"}} {total_count}')
        lines.append(f"{prom}_sum {data.get('sum', 0.0)}")
        lines.append(f"{prom}_count {total_count}")
    return "\n".join(lines)
