"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately tiny and dependency-free.  Three metric
kinds cover everything the edge pipeline needs to meter:

* :class:`Counter` — monotonically increasing totals (requests served,
  cache hits, bytes shipped);
* :class:`Gauge` — additive level quantities (epsilon/delta budget spent);
* :class:`Histogram` — fixed-bucket distributions (per-stage latencies,
  batch sizes).

Every metric merges **additively**: counters and gauges sum, histograms
sum per-bucket counts (bucket bounds must match).  The one exception is
:class:`MaxGauge`, which merges by **maximum** — for high-water-mark
quantities (peak RSS) where a worker's reading is not a contribution to a
sum but a bound the fleet-wide value must dominate.  Additive merge makes
aggregation across process-pool workers deterministic: each worker chunk
returns its registry :meth:`~MetricsRegistry.snapshot` with its results,
and the parent merges the snapshots in *chunk-index order* — the same
schedule-invariance discipline as the per-chunk RNG streams, so the
merged registry is bit-identical for any ``--workers`` count (see
:mod:`repro.parallel.pool`).

Gauges are additive on merge by design: a worker's gauge reading is its
local contribution to a global level (e.g. epsilon spent by the chunk),
not a sample of a shared quantity.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MaxGauge",
    "MetricsRegistry",
    "merge_snapshots",
    "quantile_from_histogram",
]

#: Default histogram bounds for latency observations, in seconds.  A
#: rough log ladder from 0.1 ms to 10 s; observations above the last
#: bound land in the overflow bucket.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """An additive level quantity (set it, or accumulate into it)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge's level."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge's level by ``amount`` (may be negative)."""
        self.value += amount


class MaxGauge:
    """A high-water mark: observations keep the maximum ever seen.

    Unlike :class:`Gauge` (additive levels), a max gauge merges by
    ``max`` — the right semantics for per-process peaks such as
    ``process.peak_rss_bytes``, where summing worker readings would
    invent memory nobody allocated.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def observe(self, value: float) -> None:
        """Raise the high-water mark to ``value`` if it is higher."""
        value = float(value)
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket distribution: cumulative-friendly counts + sum.

    ``bounds`` are inclusive upper bucket bounds; one extra overflow
    bucket catches observations above the last bound, so ``counts`` has
    ``len(bounds) + 1`` slots.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


#: A registry snapshot: plain JSON-able nested dicts.
Snapshot = Dict[str, Any]


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metrics are created on first access; re-requesting a name returns the
    same object.  Requesting an existing histogram with different bounds
    is an error — merge would be ill-defined.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._max_gauges: Dict[str, MaxGauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def max_gauge(self, name: str) -> MaxGauge:
        """The max gauge registered under ``name`` (created on first use)."""
        metric = self._max_gauges.get(name)
        if metric is None:
            metric = self._max_gauges[name] = MaxGauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        """The histogram under ``name`` (created on first use).

        ``bounds`` defaults to :data:`DEFAULT_TIME_BUCKETS`; passing
        different bounds for an existing name raises.
        """
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_TIME_BUCKETS
            )
        elif bounds is not None and tuple(bounds) != metric.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{metric.bounds}, requested {tuple(bounds)}"
            )
        return metric

    def is_empty(self) -> bool:
        """True when no metric has been registered."""
        return not (
            self._counters or self._gauges or self._max_gauges or self._histograms
        )

    def snapshot(self) -> Snapshot:
        """The registry's full state as sorted, JSON-able primitives."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "max_gauges": {
                name: self._max_gauges[name].value
                for name in sorted(self._max_gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "sum": self._histograms[name].total,
                    "count": self._histograms[name].count,
                }
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: Snapshot) -> None:
        """Fold one snapshot into this registry (additive, see module doc).

        Merging snapshots in a fixed order (chunk index) is what keeps
        aggregation independent of the worker count: float sums are
        accumulated in the same association no matter which process
        produced which snapshot.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value += value
        for name, value in snapshot.get("max_gauges", {}).items():
            # Max, not sum: a peak observed in any worker bounds the fleet.
            self.max_gauge(name).observe(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["bounds"]))
            if list(hist.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bounds differ "
                    f"({hist.bounds} vs {data['bounds']})"
                )
            for i, c in enumerate(data["counts"]):
                hist.counts[i] += c
            hist.total += data["sum"]
            hist.count += data["count"]

    def clear(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._max_gauges.clear()
        self._histograms.clear()


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fold an ordered sequence of snapshots into one snapshot."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


def quantile_from_histogram(data: Dict[str, Any], q: float) -> float:
    """Estimate the ``q``-quantile from a snapshotted histogram dict.

    Prometheus-style bucket interpolation: find the bucket the quantile
    rank lands in and interpolate linearly inside it (the first bucket
    interpolates from 0, the overflow bucket reports the last bound —
    the histogram cannot resolve beyond its ladder).  Returns 0.0 for an
    empty histogram.  This is what turns the additive-merge histograms
    (``pin_seconds``, serve latency) into p50/p99 SLO numbers.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    bounds = [float(b) for b in data.get("bounds", [])]
    counts = [int(c) for c in data.get("counts", [])]
    total = int(data.get("count", 0))
    if total <= 0 or not bounds:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        prev_cumulative = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if i >= len(bounds):  # overflow bucket: unresolvable above it
                return bounds[-1]
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            fraction = (rank - prev_cumulative) / count
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]
