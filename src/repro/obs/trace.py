"""Structured tracing: nested spans with monotonic timings, JSON-lines out.

The runtime is **off by default** and costs one global-flag check when
disabled — :func:`span` returns a shared no-op context manager, so
instrumented code never pays for tracing it did not ask for.

Enabled (:func:`enable`), every ``with span(name, **attrs):`` block
records a :class:`SpanRecord` carrying a process-unique id, its parent's
id (spans nest through a runtime stack), a start offset relative to the
trace epoch, and a monotonic duration.  Records are serialised to the
trace file as one JSON object per line *when the span closes* — children
therefore appear before their parents in the file, and readers rebuild
the tree from the ``(id, parent)`` edges (:mod:`repro.obs.render`).

Two extra entry points integrate pool workers:

* :func:`collect` — a context manager that redirects the runtime into an
  in-memory buffer with a fresh metrics registry; the worker returns the
  resulting :class:`ChunkObservations` alongside its chunk results.
* :func:`absorb` — replays a worker's buffered spans into the parent's
  trace (ids remapped, roots attached under the parent's active span)
  and merges its metrics snapshot into the parent registry.  Absorbing
  chunks in chunk-index order keeps the aggregate independent of the
  worker count.

The final metrics snapshot is appended to the trace file as a
``{"type": "metrics", ...}`` line by :func:`shutdown`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.metrics import MetricsRegistry, Snapshot

__all__ = [
    "SpanRecord",
    "ChunkObservations",
    "enabled",
    "enable",
    "shutdown",
    "span",
    "get_registry",
    "collect",
    "absorb",
    "TRACE_SCHEMA_VERSION",
]

#: Bump when the trace line schema changes shape.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: identity, nesting edge, and timing."""

    span_id: int
    parent_id: Optional[int]
    name: str
    attrs: Dict[str, Any]
    start: float
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """The record as the JSON-lines wire dict."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Parse one span wire dict back into a record."""
        return cls(
            span_id=int(data["id"]),
            parent_id=None if data.get("parent") is None else int(data["parent"]),
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
            start=float(data.get("start", 0.0)),
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass
class ChunkObservations:
    """What one :func:`collect` scope captured (picklable for the pool)."""

    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Snapshot = field(default_factory=dict)


class _Runtime:
    """The process-local tracing runtime (one per process)."""

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Optional[TextIO] = None
        self.buffer: Optional[List[Dict[str, Any]]] = None
        self.stack: List[int] = []
        self.next_id = 1
        self.epoch = 0.0
        self.registry = MetricsRegistry()

    def elapsed(self) -> float:
        return time.perf_counter() - self.epoch

    def emit(self, record: Dict[str, Any]) -> None:
        if self.buffer is not None:
            self.buffer.append(record)
        elif self.sink is not None:
            json.dump(record, self.sink, separators=(",", ":"), default=str)
            self.sink.write("\n")


_RUNTIME = _Runtime()


def enabled() -> bool:
    """Whether observability is currently recording in this process."""
    return _RUNTIME.enabled


def get_registry() -> MetricsRegistry:
    """The process's current metrics registry.

    Instrumented code should guard writes with :func:`enabled` — the
    registry always exists, but only an enabled runtime reports it.
    """
    return _RUNTIME.registry


def enable(trace_path: Optional[str] = None) -> None:
    """Turn observability on, optionally streaming spans to ``trace_path``.

    Resets the span stack, the id counter, the trace epoch, and the
    metrics registry, so back-to-back runs do not bleed into each other.
    """
    shutdown()
    _RUNTIME.enabled = True
    _RUNTIME.stack = []
    _RUNTIME.next_id = 1
    _RUNTIME.epoch = time.perf_counter()
    _RUNTIME.registry = MetricsRegistry()
    _RUNTIME.buffer = None
    if trace_path is not None:
        _RUNTIME.sink = open(trace_path, "w", encoding="utf-8")
        _RUNTIME.emit(
            {"type": "trace", "version": TRACE_SCHEMA_VERSION, "clock": "perf_counter"}
        )


def shutdown() -> Optional[Snapshot]:
    """Flush the final metrics snapshot, close the sink, and disable.

    Returns the final snapshot when the runtime was enabled (None
    otherwise).  Safe to call twice.
    """
    if not _RUNTIME.enabled:
        return None
    snapshot = _RUNTIME.registry.snapshot()
    if _RUNTIME.sink is not None:
        _RUNTIME.emit({"type": "metrics", "metrics": snapshot})
        _RUNTIME.sink.close()
        _RUNTIME.sink = None
    _RUNTIME.enabled = False
    _RUNTIME.buffer = None
    _RUNTIME.stack = []
    # The snapshot is the hand-off; a disabled runtime holds no state.
    _RUNTIME.registry = MetricsRegistry()
    return snapshot


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        """Discard attributes (disabled runtime)."""


_NULL_SPAN = _NullSpan()


class Span:
    """An active span; use via ``with span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        rt = _RUNTIME
        self.span_id = rt.next_id
        rt.next_id += 1
        self.parent_id = rt.stack[-1] if rt.stack else None
        rt.stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        rt = _RUNTIME
        if rt.stack and rt.stack[-1] == self.span_id:
            rt.stack.pop()
        rt.emit(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                attrs=self.attrs,
                start=self._start - rt.epoch,
                seconds=end - self._start,
            ).to_dict()
        )


def span(name: str, **attrs: Any) -> "Span | _NullSpan":
    """A nested-timing context manager (no-op while disabled)."""
    if not _RUNTIME.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


class _Collector:
    """Context manager behind :func:`collect`: swap the runtime, restore it."""

    def __init__(self) -> None:
        self.observations = ChunkObservations()
        self._saved: Optional[Dict[str, Any]] = None

    def __enter__(self) -> ChunkObservations:
        rt = _RUNTIME
        self._saved = {
            "enabled": rt.enabled,
            "sink": rt.sink,
            "buffer": rt.buffer,
            "stack": rt.stack,
            "next_id": rt.next_id,
            "epoch": rt.epoch,
            "registry": rt.registry,
        }
        rt.enabled = True
        rt.sink = None
        rt.buffer = self.observations.spans
        rt.stack = []
        rt.next_id = 1
        rt.epoch = time.perf_counter()
        rt.registry = MetricsRegistry()
        return self.observations

    def __exit__(self, *exc: object) -> None:
        rt = _RUNTIME
        self.observations.metrics = rt.registry.snapshot()
        saved = self._saved or {}
        rt.enabled = bool(saved.get("enabled", False))
        rt.sink = saved.get("sink")
        rt.buffer = saved.get("buffer")
        rt.stack = saved.get("stack", [])
        rt.next_id = int(saved.get("next_id", 1))
        rt.epoch = float(saved.get("epoch", 0.0))
        rt.registry = saved.get("registry") or MetricsRegistry()


def collect() -> _Collector:
    """Capture spans + metrics into a :class:`ChunkObservations` buffer.

    Used by :mod:`repro.parallel.pool` inside each chunk execution — in
    the worker *and* on the serial fallback path, so both produce the
    same per-chunk observations for the parent to absorb in chunk order.
    """
    return _Collector()


def absorb(observations: Optional[ChunkObservations]) -> None:
    """Replay collected worker observations into this process's runtime.

    Span ids are remapped onto the parent's id sequence; buffered roots
    hang off the parent's currently active span.  Start offsets are
    rebased so the chunk's earliest span lands at the absorb time — the
    durations are authoritative, the offsets only order siblings.
    """
    rt = _RUNTIME
    if observations is None or not rt.enabled:
        return
    if observations.spans:
        parent = rt.stack[-1] if rt.stack else None
        id_map: Dict[int, int] = {}
        for record in observations.spans:
            id_map[int(record["id"])] = rt.next_id
            rt.next_id += 1
        rebase = rt.elapsed() - min(r.get("start", 0.0) for r in observations.spans)
        for record in observations.spans:
            old_parent = record.get("parent")
            rt.emit(
                {
                    **record,
                    "id": id_map[int(record["id"])],
                    "parent": parent if old_parent is None else id_map[int(old_parent)],
                    "start": record.get("start", 0.0) + rebase,
                }
            )
    if observations.metrics:
        rt.registry.merge(observations.metrics)
