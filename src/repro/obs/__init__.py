"""repro.obs — zero-dependency observability for the edge pipeline.

Three pieces, all off by default and costing one flag check when off:

* **tracing** (:mod:`repro.obs.trace`) — ``with span(name, **attrs):``
  context managers producing a nested span tree with monotonic timings,
  streamed to a JSON-lines trace file;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  fixed-bucket histograms in a process-local registry with an additive
  merge protocol, aggregated deterministically across pool workers by
  :mod:`repro.parallel.pool` (bit-identical for any ``--workers`` count);
* **rendering** (:mod:`repro.obs.render`) — the ``repro obs`` summary
  table and a Prometheus-style text dump.

Typical wiring (what ``--trace PATH`` does)::

    from repro import obs

    obs.enable("run.trace.jsonl")
    try:
        with obs.span("experiment", id="fig6"):
            ...  # instrumented pipeline
    finally:
        obs.shutdown()   # appends the metrics snapshot, closes the file

Instrumented library code guards its hot-path writes::

    if obs.enabled():
        obs.get_registry().counter("cache.hits").inc()
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MaxGauge,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.rss import PEAK_RSS_METRIC, peak_rss_bytes, record_peak_rss
from repro.obs.render import (
    SpanNode,
    TraceData,
    build_span_tree,
    read_trace,
    render_prometheus,
    render_summary,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    ChunkObservations,
    SpanRecord,
    absorb,
    collect,
    enable,
    enabled,
    get_registry,
    shutdown,
    span,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MaxGauge",
    "MetricsRegistry",
    "merge_snapshots",
    "PEAK_RSS_METRIC",
    "peak_rss_bytes",
    "record_peak_rss",
    "SpanNode",
    "TraceData",
    "build_span_tree",
    "read_trace",
    "render_prometheus",
    "render_summary",
    "TRACE_SCHEMA_VERSION",
    "ChunkObservations",
    "SpanRecord",
    "absorb",
    "collect",
    "enable",
    "enabled",
    "get_registry",
    "shutdown",
    "span",
]
