"""Canonical metric names for the fleet fault-injection layer.

Collected here (rather than as string literals at each call site) so the
serve layer, the fleet runtime, the audit, and the dashboards agree on
one spelling — and so the fleet-smoke CI job can assert on names that
cannot drift.

All fleet counters and the two lost-budget gauges are *deterministic*
under ``--replay``: every scenario event applies exactly once, at a
position on the global event timeline that does not depend on the shard
count, so these metrics are part of the replayed metrics digest.

The exception is the environment-dependent trio — ``fleet.rejoins``,
``fleet.dispatch_retries``, ``fleet.backend_recoveries`` — whose values
depend on whether this sandbox can spawn worker processes and on
wall-clock timeouts, not on the scenario.  Like the ``backend`` field,
they are excluded from replay metrics (recorded in live mode only) so
the replayed metrics digest stays invariant across execution backends.
"""

from __future__ import annotations

__all__ = [
    "FLEET_CRASHES",
    "FLEET_CRASHES_LOSSY",
    "FLEET_RESTORES",
    "FLEET_FRESH_STARTS",
    "FLEET_DRAIN_RESTORES",
    "FLEET_HANDOFFS",
    "FLEET_UNSERVED",
    "FLEET_SLOW_EVENTS",
    "FLEET_PARTITIONS",
    "FLEET_HEALS",
    "FLEET_REJOINS",
    "FLEET_DISPATCH_RETRIES",
    "FLEET_BACKEND_RECOVERIES",
    "FLEET_RECOVERY_SECONDS",
    "LEDGER_LOST_EPSILON",
    "LEDGER_LOST_DELTA",
    "LEDGER_LOST_ENTRIES",
]

#: Seats hit by a device crash (counted per affected user seat).
FLEET_CRASHES = "fleet.crashes"
#: Seats whose durable state was actually destroyed by an unpersisted crash.
FLEET_CRASHES_LOSSY = "fleet.crashes_lossy"
#: Snapshot-to-actor revivals driven by scenario events (restart/handoff).
FLEET_RESTORES = "fleet.restores"
#: Actors rebuilt from scratch (epoch > 0) after a lossy crash.
FLEET_FRESH_STARTS = "fleet.fresh_starts"
#: Revivals performed at drain time for seats still parked in the store.
FLEET_DRAIN_RESTORES = "fleet.drain_restores"
#: User handoffs applied (one per scenario handoff event).
FLEET_HANDOFFS = "fleet.handoffs"
#: Events skipped because the user's device was down.
FLEET_UNSERVED = "fleet.unserved_events"
#: Events served with injected slow-device latency.
FLEET_SLOW_EVENTS = "fleet.slow_events"
#: Network partitions applied to shard backends.
FLEET_PARTITIONS = "fleet.partitions"
#: Heal events applied (counted whether or not a rejoin happened).
FLEET_HEALS = "fleet.heals"
#: Degraded shard backends that re-spawned a worker on heal.
FLEET_REJOINS = "fleet.rejoins"
#: Shard dispatch attempts retried after a timeout or worker failure.
FLEET_DISPATCH_RETRIES = "fleet.dispatch_retries"
#: Unplanned backend failures recovered by event-sourced inline rebuild.
FLEET_BACKEND_RECOVERIES = "fleet.backend_recoveries"
#: Snapshot-restore latency histogram (virtual ticks under --replay).
FLEET_RECOVERY_SECONDS = "fleet.recovery_seconds"

#: Privacy budget destroyed by unpersisted crashes — surfaced, never
#: silently dropped.  Conservation: surviving ledger epsilon plus this
#: gauge accounts for the full audited spend.
LEDGER_LOST_EPSILON = "ledger.lost_epsilon"
LEDGER_LOST_DELTA = "ledger.lost_delta"
#: Ledger entries destroyed along with the lost budget.
LEDGER_LOST_ENTRIES = "ledger.lost_entries"
