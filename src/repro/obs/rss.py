"""Peak resident-set-size measurement for the out-of-core data plane.

``resource.getrusage`` reports ``ru_maxrss``, the process's lifetime
high-water mark of resident memory — the number that distinguishes the
heap-materialising in-memory pipeline from the memmap-backed streamed
one.  The reading is a *peak*, not a level, so it travels through the
:class:`~repro.obs.metrics.MaxGauge` max-merge path: every pool worker
records its own peak inside its chunk observations, the parent merges
them max-wise in chunk order, and the final gauge is the largest RSS any
process in the fan-out ever held.

Unit note: Linux reports ``ru_maxrss`` in kibibytes, macOS in bytes —
:func:`peak_rss_bytes` normalises to bytes.  Platforms without the
``resource`` module (Windows) read as 0, which the renderers and bench
archives pass through untouched rather than guessing.
"""

from __future__ import annotations

import sys

from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = ["PEAK_RSS_METRIC", "peak_rss_bytes", "record_peak_rss"]

#: The max-gauge name peak RSS is recorded under.
PEAK_RSS_METRIC = "process.peak_rss_bytes"


def peak_rss_bytes(include_children: bool = False) -> int:
    """This process's peak resident set size, in bytes (0 if unreadable).

    ``include_children`` folds in ``RUSAGE_CHILDREN`` — the maximum over
    reaped child processes, which covers pool workers once the executor
    has joined them.  The result is ``max(self, children)``: RSS is a
    per-process high-water mark, not an additive quantity.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platforms
        return 0
    # ru_maxrss units differ by platform: bytes on macOS, KiB elsewhere.
    unit = 1 if sys.platform == "darwin" else 1024
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit
    if include_children:
        children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * unit
        peak = max(peak, children)
    return int(peak)


def record_peak_rss(include_children: bool = False) -> int:
    """Record the current peak RSS into the active metrics registry.

    Returns the byte reading either way; the registry write only happens
    when observability is enabled, same contract as every other metered
    hot path.
    """
    value = peak_rss_bytes(include_children=include_children)
    if _obs_enabled():
        _obs_registry().max_gauge(PEAK_RSS_METRIC).observe(value)
    return value
