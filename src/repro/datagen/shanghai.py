"""The paper's Shanghai study region and its planar projection.

The dataset in the paper covers latitude [30.7, 31.4] and longitude
[121, 122] — roughly a 78 km x 95 km box.  All synthetic traces are
generated inside this box (projected onto the local tangent plane at its
centre) so that distances, radii, and densities are comparable to the
paper's setting.
"""

from __future__ import annotations

from repro.geo.bbox import BoundingBox, GeoBoundingBox
from repro.geo.projection import GeoPoint, LocalProjection

__all__ = [
    "SHANGHAI_GEO_BBOX",
    "SHANGHAI_PROJECTION",
    "shanghai_planar_bbox",
    "STUDY_START_TS",
    "STUDY_END_TS",
    "STUDY_DAYS",
]

#: The paper's dataset bounding box (Section VII-A).
SHANGHAI_GEO_BBOX = GeoBoundingBox(
    min_lat=30.7, min_lon=121.0, max_lat=31.4, max_lon=122.0
)

#: Shared projection centred on the study region.
SHANGHAI_PROJECTION = LocalProjection(SHANGHAI_GEO_BBOX.center)

#: Dataset time span: 2019-06-01T00:00:00Z .. 2021-05-31T24:00:00Z.
STUDY_START_TS = 1_559_347_200.0
STUDY_END_TS = 1_622_505_600.0
STUDY_DAYS = (STUDY_END_TS - STUDY_START_TS) / 86_400.0


def shanghai_planar_bbox() -> BoundingBox:
    """The study region projected to planar metres around its centre."""
    corners = [
        GeoPoint(SHANGHAI_GEO_BBOX.min_lat, SHANGHAI_GEO_BBOX.min_lon),
        GeoPoint(SHANGHAI_GEO_BBOX.max_lat, SHANGHAI_GEO_BBOX.max_lon),
    ]
    pts = [SHANGHAI_PROJECTION.to_plane(c) for c in corners]
    return BoundingBox(
        min_x=min(p.x for p in pts),
        min_y=min(p.y for p in pts),
        max_x=max(p.x for p in pts),
        max_y=max(p.y for p in pts),
    )
