"""Per-user synthetic mobility model.

Each synthetic user has a small set of *top locations* (home, work place,
and up to two more routine spots) visited with fixed routine weights, plus
a *nomadic* component: one-off visits scattered around the city.  Check-in
timestamps follow a simple diurnal schedule — home-like locations at
night, work-like locations during weekday office hours — so single-user
plots resemble the paper's Figure 2 and time-window slicing behaves
naturally.

Check-in positions are the location anchor plus a small GPS jitter
(default 15 m), which is below the paper's 50 m clustering threshold, so
the profiling attack groups each top location into a single cluster, as it
does on the real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn

__all__ = ["TopLocation", "MobilityModel"]


@dataclass(frozen=True)
class TopLocation:
    """One routine anchor with its visit share of routine activity."""

    point: Point
    weight: float
    kind: str = "other"  # "home" | "work" | "other"

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.kind not in ("home", "work", "other"):
            raise ValueError(f"unknown location kind: {self.kind}")


# Diurnal hour windows (start hour, end hour) per location kind; the hour
# is drawn uniformly inside a window chosen at random among the kind's
# windows.  "home" spans the evening-to-morning wrap.
_HOUR_WINDOWS = {
    "home": [(0.0, 8.0), (19.0, 24.0)],
    "work": [(9.0, 18.0)],
    "other": [(8.0, 23.0)],
}


@dataclass
class MobilityModel:
    """Generator of one user's check-in trace.

    Attributes:
        user_id: stable identifier (the ad-ecosystem device ID the
            longitudinal attacker keys on).
        top_locations: routine anchors, ordered by decreasing weight.
        nomadic_fraction: share of check-ins that are one-off visits.
        nomadic_radius_m: nomadic visits fall uniformly in this disc
            around home (bounded wandering, as in real urban traces).
        gps_noise_m: standard deviation of the per-check-in GPS jitter.
        region: optional clamp region for generated points.
    """

    user_id: str
    top_locations: List[TopLocation]
    nomadic_fraction: float = 0.05
    nomadic_radius_m: float = 8_000.0
    gps_noise_m: float = 15.0
    region: Optional[BoundingBox] = None

    def __post_init__(self) -> None:
        if not self.top_locations:
            raise ValueError("a user needs at least one top location")
        if not 0.0 <= self.nomadic_fraction < 1.0:
            raise ValueError(
                f"nomadic fraction must be in [0, 1), got {self.nomadic_fraction}"
            )
        if self.nomadic_radius_m <= 0:
            raise ValueError("nomadic radius must be positive")
        if self.gps_noise_m < 0:
            raise ValueError("gps noise must be non-negative")
        weights = [t.weight for t in self.top_locations]
        if sorted(weights, reverse=True) != weights:
            raise ValueError("top locations must be ordered by decreasing weight")

    @property
    def home(self) -> Point:
        """The highest-weight anchor (used as the nomadic wandering centre)."""
        return self.top_locations[0].point

    @property
    def true_top_points(self) -> List[Point]:
        """Ground-truth top locations, most frequent first."""
        return [t.point for t in self.top_locations]

    def generate(
        self,
        n_checkins: int,
        start_ts: float,
        days: float,
        rng: np.random.Generator,
    ) -> List[CheckIn]:
        """Draw a chronological trace of ``n_checkins`` over ``days`` days."""
        if n_checkins < 0:
            raise ValueError("n_checkins must be non-negative")
        if days <= 0:
            raise ValueError("days must be positive")
        if n_checkins == 0:
            return []

        weights = np.asarray([t.weight for t in self.top_locations], dtype=float)
        weights /= weights.sum()

        is_nomadic = rng.uniform(size=n_checkins) < self.nomadic_fraction
        anchor_idx = rng.choice(len(self.top_locations), size=n_checkins, p=weights)

        xs = np.empty(n_checkins)
        ys = np.empty(n_checkins)
        kinds: List[str] = []
        for i in range(n_checkins):
            if is_nomadic[i]:
                theta = rng.uniform(0.0, 2.0 * math.pi)
                rad = self.nomadic_radius_m * math.sqrt(rng.uniform())
                xs[i] = self.home.x + rad * math.cos(theta)
                ys[i] = self.home.y + rad * math.sin(theta)
                kinds.append("other")
            else:
                anchor = self.top_locations[int(anchor_idx[i])]
                xs[i] = anchor.point.x
                ys[i] = anchor.point.y
                kinds.append(anchor.kind)

        if self.gps_noise_m > 0:
            xs += rng.normal(0.0, self.gps_noise_m, n_checkins)
            ys += rng.normal(0.0, self.gps_noise_m, n_checkins)

        timestamps = self._draw_timestamps(kinds, start_ts, days, rng)

        checkins = []
        for i in range(n_checkins):
            p = Point(float(xs[i]), float(ys[i]))
            if self.region is not None:
                p = self.region.clamp(p)
            checkins.append(CheckIn(timestamp=float(timestamps[i]), point=p))
        checkins.sort()
        return checkins

    def _draw_timestamps(
        self,
        kinds: Sequence[str],
        start_ts: float,
        days: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        day_idx = rng.uniform(0.0, days, len(kinds))
        hours = np.empty(len(kinds))
        for i, kind in enumerate(kinds):
            windows = _HOUR_WINDOWS[kind]
            lo, hi = windows[int(rng.integers(len(windows)))]
            hours[i] = rng.uniform(lo, hi)
        return start_ts + np.floor(day_idx) * SECONDS_PER_DAY + hours * 3_600.0
