"""Single-user fixtures matching the paper's illustrative examples.

* Figure 2's victim: a 7-day trace of 2,414 check-ins concentrated on two
  top locations (home and office).
* Figure 4's victim: 1,969 check-ins over a full year, of which 1,628
  belong to the top-1 location.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datagen.mobility import MobilityModel, TopLocation
from repro.datagen.population import SyntheticUser
from repro.datagen.shanghai import STUDY_START_TS, shanghai_planar_bbox
from repro.geo.point import Point

__all__ = ["make_fig2_user", "make_fig4_user"]


def _victim_model(
    user_id: str, nomadic_fraction: float, top1_weight: float
) -> MobilityModel:
    region = shanghai_planar_bbox()
    home = region.center
    office = Point(home.x + 4_200.0, home.y + 1_500.0)
    errand = Point(home.x - 1_100.0, home.y + 2_300.0)
    rest = 1.0 - top1_weight
    return MobilityModel(
        user_id=user_id,
        top_locations=[
            TopLocation(home, top1_weight, "home"),
            TopLocation(office, rest * 0.8, "work"),
            TopLocation(errand, rest * 0.2, "other"),
        ],
        nomadic_fraction=nomadic_fraction,
        region=region,
    )


def make_fig2_user(seed: int = 7, n_checkins: int = 2_414) -> SyntheticUser:
    """The Figure 2 victim: 7 days, ~2.4k check-ins, two dominant locations."""
    rng = np.random.default_rng(seed)
    model = _victim_model("fig2-victim", nomadic_fraction=0.03, top1_weight=0.62)
    trace = model.generate(n_checkins, STUDY_START_TS, days=7.0, rng=rng)
    return SyntheticUser(user_id=model.user_id, model=model, trace=trace)


def make_fig4_user(
    seed: int = 4,
    n_checkins: int = 1_969,
    top1_checkins: int = 1_628,
    days: float = 365.0,
) -> SyntheticUser:
    """The Figure 4 case-study victim with the paper's exact composition.

    The top-1 share is pinned (1,628 / 1,969 ~= 0.827) rather than drawn,
    so the de-obfuscation case study runs on the same evidence mass the
    paper reports.
    """
    if top1_checkins > n_checkins:
        raise ValueError("top-1 check-ins cannot exceed the total")
    top1_weight = top1_checkins / n_checkins
    # Remaining mass split between the office and errand anchors with a
    # thin nomadic residue.
    rng = np.random.default_rng(seed)
    model = _victim_model(
        "fig4-victim", nomadic_fraction=0.02, top1_weight=top1_weight / (1 - 0.02)
    )
    trace = model.generate(n_checkins, STUDY_START_TS, days=days, rng=rng)
    return SyntheticUser(user_id=model.user_id, model=model, trace=trace)
