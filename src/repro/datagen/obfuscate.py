"""Trace obfuscation helpers: what the ad network actually observes.

Bridges the data generators and the mechanisms: given a raw trace and an
LPPM, produce the obfuscated observation stream the longitudinal attacker
sees.

* :func:`one_time_obfuscate` — independent per-check-in perturbation, the
  deployment style of the one-time geo-IND schemes the paper attacks.
* :func:`permanent_obfuscate` — the Edge-PrivLocAd deployment: top
  locations get pinned n-fold candidate sets (reported via an output
  selector), and the per-check-in mechanism is only used for nomadic
  check-ins.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.posterior import OutputSelector
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = ["one_time_obfuscate", "permanent_obfuscate"]


def one_time_obfuscate(
    trace: Sequence[CheckIn], mechanism: LPPM
) -> List[CheckIn]:
    """Perturb every check-in independently (one-time geo-IND deployment)."""
    if mechanism.n_outputs != 1:
        raise ValueError(
            "one-time deployment requires a single-output mechanism, "
            f"got {mechanism.name} with n={mechanism.n_outputs}"
        )
    # Fast path for mechanisms exposing a vectorised batch API.
    batch = getattr(mechanism, "obfuscate_batch", None)
    if batch is not None and trace:
        coords = checkins_to_array(trace)
        noisy = batch(coords)
        return [
            CheckIn(c.timestamp, Point(float(x), float(y)))
            for c, (x, y) in zip(trace, noisy)
        ]
    return [
        CheckIn(c.timestamp, mechanism.obfuscate(c.point)[0]) for c in trace
    ]


def permanent_obfuscate(
    trace: Sequence[CheckIn],
    top_locations: Sequence[Point],
    mechanism: LPPM,
    selector: OutputSelector,
    match_radius: float = 100.0,
    nomadic_mechanism: Optional[LPPM] = None,
) -> List[CheckIn]:
    """The Edge-PrivLocAd reporting stream.

    Each top location in ``top_locations`` is obfuscated *once* into a
    pinned candidate set by ``mechanism`` (the n-fold Gaussian); every
    check-in within ``match_radius`` of a top location is then reported as
    a candidate drawn by ``selector``.  Check-ins matching no top location
    are nomadic and go through ``nomadic_mechanism`` (defaults to
    ``mechanism`` itself, taking the selector over a fresh candidate set).
    """
    if match_radius <= 0:
        raise ValueError("match radius must be positive")
    candidate_sets = [mechanism.obfuscate(p) for p in top_locations]
    out: List[CheckIn] = []
    for checkin in trace:
        matched = None
        best = match_radius
        for tops_idx, top in enumerate(top_locations):
            d = checkin.point.distance_to(top)
            if d <= best:
                matched = tops_idx
                best = d
        if matched is not None:
            reported = selector.select(candidate_sets[matched])
        elif nomadic_mechanism is not None:
            reported = nomadic_mechanism.obfuscate(checkin.point)[0]
        else:
            reported = selector.select(mechanism.obfuscate(checkin.point))
        out.append(CheckIn(checkin.timestamp, reported))
    return out
