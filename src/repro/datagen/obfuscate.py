"""Trace obfuscation helpers: what the ad network actually observes.

Bridges the data generators and the mechanisms: given a raw trace and an
LPPM, produce the obfuscated observation stream the longitudinal attacker
sees.

* :func:`one_time_obfuscate` — independent per-check-in perturbation, the
  deployment style of the one-time geo-IND schemes the paper attacks.
* :func:`permanent_obfuscate` — the Edge-PrivLocAd deployment: top
  locations get pinned n-fold candidate sets (reported via an output
  selector), and the per-check-in mechanism is only used for nomadic
  check-ins.

Each helper has an ``_xy`` twin operating on raw ``(m, 2)`` coordinate
arrays — the columnar pipelines feed those CSR slices directly and skip
``CheckIn`` materialisation.  The ``_xy`` helpers are the documented
fast-path entry points of the :class:`repro.core.mechanism.Mechanism`
protocol: they route whole coordinate streams through the protocol's
``obfuscate_batch`` method where its shape contract allows (single-output
mechanisms only — an n-fold ``obfuscate_batch`` returns ``(m, n, 2)``
candidate sets, not reports) and fall back to scalar ``obfuscate`` calls
otherwise.  The object versions are thin wrappers, so both paths consume
the mechanisms' RNG in exactly the same call order and produce
bit-identical noise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.posterior import OutputSelector
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = [
    "one_time_obfuscate",
    "one_time_obfuscate_xy",
    "permanent_obfuscate",
    "permanent_obfuscate_xy",
    "permanent_obfuscate_batched_xy",
]


def one_time_obfuscate_xy(coords: np.ndarray, mechanism: LPPM) -> np.ndarray:
    """Perturb an ``(m, 2)`` coordinate array independently per row."""
    if mechanism.n_outputs != 1:
        raise ValueError(
            "one-time deployment requires a single-output mechanism, "
            f"got {mechanism.name} with n={mechanism.n_outputs}"
        )
    coords = np.asarray(coords, dtype=float)
    if len(coords) == 0:
        return np.empty((0, 2), dtype=float)
    # Fast path for mechanisms exposing a vectorised batch API.
    batch = getattr(mechanism, "obfuscate_batch", None)
    if batch is not None:
        return np.asarray(batch(coords), dtype=float)
    out = np.empty((len(coords), 2), dtype=float)
    for i, (x, y) in enumerate(coords):
        p = mechanism.obfuscate(Point(float(x), float(y)))[0]
        out[i] = (p.x, p.y)
    return out


def one_time_obfuscate(
    trace: Sequence[CheckIn], mechanism: LPPM
) -> List[CheckIn]:
    """Perturb every check-in independently (one-time geo-IND deployment)."""
    noisy = one_time_obfuscate_xy(checkins_to_array(trace), mechanism)
    return [
        CheckIn(c.timestamp, Point(float(x), float(y)))
        for c, (x, y) in zip(trace, noisy)
    ]


def permanent_obfuscate_xy(
    coords: np.ndarray,
    tops_xy: np.ndarray,
    mechanism: LPPM,
    selector: OutputSelector,
    match_radius: float = 100.0,
    nomadic_mechanism: Optional[LPPM] = None,
) -> np.ndarray:
    """The Edge-PrivLocAd reporting stream over raw coordinate arrays.

    ``coords`` is the ``(m, 2)`` trace, ``tops_xy`` the ``(k, 2)``
    eta-frequent locations.  Candidate pinning stays a per-top
    ``mechanism.obfuscate`` loop on purpose: the noise sampler draws all
    angles before all radii within one call, so one batched draw over all
    tops would walk the RNG in a different order than the object path and
    break bit-identity.
    """
    if match_radius <= 0:
        raise ValueError("match radius must be positive")
    coords = np.asarray(coords, dtype=float)
    tops_xy = np.asarray(tops_xy, dtype=float).reshape(-1, 2)
    candidate_sets = [
        mechanism.obfuscate(Point(float(x), float(y))) for x, y in tops_xy
    ]
    m = len(coords)
    if m == 0:
        return np.empty((0, 2), dtype=float)

    reported_xy = np.empty((m, 2), dtype=float)

    # Match every check-in to its nearest top location (if within radius)
    # in one distance pass; the top set is small (the eta-frequent set is
    # 1-3 locations for most users), so the (m, k) matrix stays tiny.
    if len(tops_xy):
        d = np.hypot(
            coords[:, 0, None] - tops_xy[None, :, 0],
            coords[:, 1, None] - tops_xy[None, :, 1],
        )
        nearest = d.argmin(axis=1)
        matched = d[np.arange(m), nearest] <= match_radius
    else:
        nearest = np.zeros(m, dtype=np.int64)
        matched = np.zeros(m, dtype=bool)

    if matched.any():
        cand_arr = np.asarray(
            [[(p.x, p.y) for p in cs] for cs in candidate_sets], dtype=float
        )
        row_sets = cand_arr[nearest[matched]]
        chosen = selector.select_index_batch(row_sets)
        reported_xy[matched] = row_sets[np.arange(len(row_sets)), chosen]

    nomadic = ~matched
    if nomadic.any():
        if nomadic_mechanism is not None:
            # The batch fast path only applies to single-output mechanisms:
            # an n-fold obfuscate_batch returns (m, n, 2) candidate sets,
            # not one report per check-in.
            batch = (
                getattr(nomadic_mechanism, "obfuscate_batch", None)
                if nomadic_mechanism.n_outputs == 1
                else None
            )
            if batch is not None:
                reported_xy[nomadic] = batch(coords[nomadic])
            else:
                for i in np.flatnonzero(nomadic):
                    p = nomadic_mechanism.obfuscate(
                        Point(float(coords[i, 0]), float(coords[i, 1]))
                    )[0]
                    reported_xy[i] = (p.x, p.y)
        else:
            # Fresh candidate set + selection per nomadic check-in; the
            # fresh sets cannot be pinned, so this stays per check-in.
            for i in np.flatnonzero(nomadic):
                p = selector.select(
                    mechanism.obfuscate(
                        Point(float(coords[i, 0]), float(coords[i, 1]))
                    )
                )
                reported_xy[i] = (p.x, p.y)

    return reported_xy


def permanent_obfuscate_batched_xy(
    coords: np.ndarray,
    tops_xy: np.ndarray,
    mechanism: LPPM,
    selector: OutputSelector,
    match_radius: float = 100.0,
    nomadic_mechanism: Optional[LPPM] = None,
) -> np.ndarray:
    """Edge-PrivLocAd reporting with batch-pinned candidate sets.

    Same deployment as :func:`permanent_obfuscate_xy` but the candidate
    sets are pinned with ONE ``mechanism.obfuscate_batch`` call over all
    top locations (all angles before all radii for the whole set) instead
    of a per-top ``obfuscate`` loop.  This batched draw order is the
    per-user reference that the population kernels in
    :mod:`repro.kernels.obfuscate` reproduce bit for bit; it produces
    different (equally distributed) noise than :func:`permanent_obfuscate_xy`.
    ``nomadic_mechanism`` is required — the selector-over-fresh-set
    fallback has no batched draw order to pin down.
    """
    if match_radius <= 0:
        raise ValueError("match radius must be positive")
    if nomadic_mechanism is None:
        raise ValueError(
            "permanent_obfuscate_batched_xy requires an explicit "
            "nomadic_mechanism (the fresh-set fallback is per check-in)"
        )
    if nomadic_mechanism.n_outputs != 1:
        raise ValueError(
            "nomadic mechanism must be single-output, got "
            f"{nomadic_mechanism.name} with n={nomadic_mechanism.n_outputs}"
        )
    coords = np.asarray(coords, dtype=float)
    tops_xy = np.asarray(tops_xy, dtype=float).reshape(-1, 2)
    # (k, n, 2) pinned candidates in one draw; size-0 draws are no-ops.
    candidates = np.asarray(mechanism.obfuscate_batch(tops_xy), dtype=float)
    m = len(coords)
    if m == 0:
        return np.empty((0, 2), dtype=float)

    reported_xy = np.empty((m, 2), dtype=float)
    if len(tops_xy):
        d = np.hypot(
            coords[:, 0, None] - tops_xy[None, :, 0],
            coords[:, 1, None] - tops_xy[None, :, 1],
        )
        nearest = d.argmin(axis=1)
        matched = d[np.arange(m), nearest] <= match_radius
    else:
        nearest = np.zeros(m, dtype=np.int64)
        matched = np.zeros(m, dtype=bool)

    if matched.any():
        row_sets = candidates[nearest[matched]]
        chosen = selector.select_index_batch(row_sets)
        reported_xy[matched] = row_sets[np.arange(len(row_sets)), chosen]

    nomadic = ~matched
    if nomadic.any():
        reported_xy[nomadic] = nomadic_mechanism.obfuscate_batch(
            coords[nomadic]
        )
    return reported_xy


def permanent_obfuscate(
    trace: Sequence[CheckIn],
    top_locations: Sequence[Point],
    mechanism: LPPM,
    selector: OutputSelector,
    match_radius: float = 100.0,
    nomadic_mechanism: Optional[LPPM] = None,
) -> List[CheckIn]:
    """The Edge-PrivLocAd reporting stream.

    Each top location in ``top_locations`` is obfuscated *once* into a
    pinned candidate set by ``mechanism`` (the n-fold Gaussian); every
    check-in within ``match_radius`` of a top location is then reported as
    a candidate drawn by ``selector``.  Check-ins matching no top location
    are nomadic and go through ``nomadic_mechanism`` (defaults to
    ``mechanism`` itself, taking the selector over a fresh candidate set).
    """
    tops_xy = np.asarray([(p.x, p.y) for p in top_locations], dtype=float)
    reported_xy = permanent_obfuscate_xy(
        checkins_to_array(trace),
        tops_xy.reshape(-1, 2),
        mechanism,
        selector,
        match_radius=match_radius,
        nomadic_mechanism=nomadic_mechanism,
    )
    return [
        CheckIn(c.timestamp, Point(float(x), float(y)))
        for c, (x, y) in zip(trace, reported_xy)
    ]