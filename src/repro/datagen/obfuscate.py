"""Trace obfuscation helpers: what the ad network actually observes.

Bridges the data generators and the mechanisms: given a raw trace and an
LPPM, produce the obfuscated observation stream the longitudinal attacker
sees.

* :func:`one_time_obfuscate` — independent per-check-in perturbation, the
  deployment style of the one-time geo-IND schemes the paper attacks.
* :func:`permanent_obfuscate` — the Edge-PrivLocAd deployment: top
  locations get pinned n-fold candidate sets (reported via an output
  selector), and the per-check-in mechanism is only used for nomadic
  check-ins.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.posterior import OutputSelector
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = ["one_time_obfuscate", "permanent_obfuscate"]


def one_time_obfuscate(
    trace: Sequence[CheckIn], mechanism: LPPM
) -> List[CheckIn]:
    """Perturb every check-in independently (one-time geo-IND deployment)."""
    if mechanism.n_outputs != 1:
        raise ValueError(
            "one-time deployment requires a single-output mechanism, "
            f"got {mechanism.name} with n={mechanism.n_outputs}"
        )
    # Fast path for mechanisms exposing a vectorised batch API.
    batch = getattr(mechanism, "obfuscate_batch", None)
    if batch is not None and trace:
        coords = checkins_to_array(trace)
        noisy = batch(coords)
        return [
            CheckIn(c.timestamp, Point(float(x), float(y)))
            for c, (x, y) in zip(trace, noisy)
        ]
    return [
        CheckIn(c.timestamp, mechanism.obfuscate(c.point)[0]) for c in trace
    ]


def permanent_obfuscate(
    trace: Sequence[CheckIn],
    top_locations: Sequence[Point],
    mechanism: LPPM,
    selector: OutputSelector,
    match_radius: float = 100.0,
    nomadic_mechanism: Optional[LPPM] = None,
) -> List[CheckIn]:
    """The Edge-PrivLocAd reporting stream.

    Each top location in ``top_locations`` is obfuscated *once* into a
    pinned candidate set by ``mechanism`` (the n-fold Gaussian); every
    check-in within ``match_radius`` of a top location is then reported as
    a candidate drawn by ``selector``.  Check-ins matching no top location
    are nomadic and go through ``nomadic_mechanism`` (defaults to
    ``mechanism`` itself, taking the selector over a fresh candidate set).
    """
    if match_radius <= 0:
        raise ValueError("match radius must be positive")
    candidate_sets = [mechanism.obfuscate(p) for p in top_locations]
    if not trace:
        return []

    coords = checkins_to_array(trace)
    m = len(coords)
    reported_xy = np.empty((m, 2), dtype=float)

    # Match every check-in to its nearest top location (if within radius)
    # in one distance pass; the top set is small (the eta-frequent set is
    # 1-3 locations for most users), so the (m, k) matrix stays tiny.
    if top_locations:
        tops = np.asarray([(p.x, p.y) for p in top_locations], dtype=float)
        d = np.hypot(
            coords[:, 0, None] - tops[None, :, 0],
            coords[:, 1, None] - tops[None, :, 1],
        )
        nearest = d.argmin(axis=1)
        matched = d[np.arange(m), nearest] <= match_radius
    else:
        nearest = np.zeros(m, dtype=np.int64)
        matched = np.zeros(m, dtype=bool)

    if matched.any():
        cand_arr = np.asarray(
            [[(p.x, p.y) for p in cs] for cs in candidate_sets], dtype=float
        )
        row_sets = cand_arr[nearest[matched]]
        chosen = selector.select_index_batch(row_sets)
        reported_xy[matched] = row_sets[np.arange(len(row_sets)), chosen]

    nomadic = ~matched
    if nomadic.any():
        if nomadic_mechanism is not None:
            batch = getattr(nomadic_mechanism, "obfuscate_batch", None)
            if batch is not None:
                reported_xy[nomadic] = batch(coords[nomadic])
            else:
                for i in np.flatnonzero(nomadic):
                    p = nomadic_mechanism.obfuscate(trace[i].point)[0]
                    reported_xy[i] = (p.x, p.y)
        else:
            # Fresh candidate set + selection per nomadic check-in; the
            # fresh sets cannot be pinned, so this stays per check-in.
            for i in np.flatnonzero(nomadic):
                p = selector.select(mechanism.obfuscate(trace[i].point))
                reported_xy[i] = (p.x, p.y)

    return [
        CheckIn(c.timestamp, Point(float(x), float(y)))
        for c, (x, y) in zip(trace, reported_xy)
    ]
