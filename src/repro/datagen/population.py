"""Population generator calibrated to the paper's dataset statistics.

The paper's (proprietary) dataset has 37,262 Shanghai users observed over
two years, contributing between 20 and 11,435 check-ins each (~1k on
average), with strongly routine-driven mobility: 88.8 % of users have
location entropy below 2, and entropy declines as the number of check-ins
grows (Figure 3).  This module synthesises a population with the same
aggregate structure:

* per-user check-in counts follow a clipped log-normal with the paper's
  bounds and a ~1k mean;
* each user has 1-4 top locations whose routine share grows with how
  active the user is (heavy reporters are commuters whose traffic is
  dominated by home/work);
* the remaining check-ins are nomadic one-offs around the user's home.

The calibration test suite checks the generated population against the
paper's published statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.mobility import MobilityModel, TopLocation
from repro.datagen.shanghai import STUDY_DAYS, STUDY_START_TS, shanghai_planar_bbox
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn

__all__ = [
    "PopulationConfig",
    "SyntheticUser",
    "generate_population",
    "iter_population",
    "iter_population_spawned",
    "rake_marginals",
    "figure3_marginals",
    "rake_figure3_joint",
]

#: The paper's per-user check-in bounds.
PAPER_MIN_CHECKINS = 20
PAPER_MAX_CHECKINS = 11_435

#: Figure 3's published entropy split: 88.8 % of users sit below entropy 2.
FIG3_ENTROPY_MARGINAL = (0.888, 0.112)


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the synthetic population.

    Defaults reproduce the paper's aggregate statistics at a laptop-friendly
    scale; set ``n_users=37_262`` for full paper scale.
    """

    n_users: int = 2_000
    seed: int = 20220522
    start_ts: float = STUDY_START_TS
    days: float = STUDY_DAYS
    min_checkins: int = PAPER_MIN_CHECKINS
    max_checkins: int = PAPER_MAX_CHECKINS
    #: Log-normal parameters of the check-in count (mean ~= 1k with a heavy
    #: tail reaching the paper's 11,435 cap).
    count_log_mean: float = math.log(450.0)
    count_log_sigma: float = 1.15
    #: Nomadic share at the minimum check-in count and its power-law decay
    #: with activity (more active users are more routine-bound, which
    #: produces Figure 3's declining entropy trend): a user with ``n``
    #: check-ins gets ``base * (n / min_checkins) ** -decay`` nomadic share
    #: before log-normal per-user noise.
    nomadic_base: float = 0.5
    nomadic_decay: float = 0.47
    nomadic_min: float = 0.01
    nomadic_max: float = 0.5
    gps_noise_m: float = 15.0
    region_margin_m: float = 10_000.0

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.min_checkins < 1 or self.max_checkins < self.min_checkins:
            raise ValueError("invalid check-in bounds")
        if self.days <= 0:
            raise ValueError("days must be positive")


@dataclass
class SyntheticUser:
    """A generated user: ground truth plus the raw (unperturbed) trace."""

    user_id: str
    model: MobilityModel
    trace: List[CheckIn]

    @property
    def true_tops(self) -> List[Point]:
        """Ground-truth top locations, most frequent first."""
        return self.model.true_top_points

    @property
    def n_checkins(self) -> int:
        """Number of check-ins in the user's trace."""
        return len(self.trace)


def _draw_count(config: PopulationConfig, rng: np.random.Generator) -> int:
    raw = rng.lognormal(config.count_log_mean, config.count_log_sigma)
    return int(np.clip(raw, config.min_checkins, config.max_checkins))


def _draw_anchor_points(
    home_region: BoundingBox, n_tops: int, rng: np.random.Generator
) -> List[Tuple[Point, str]]:
    """Home uniformly in the (margined) region; other anchors in rings around it."""
    hx = rng.uniform(home_region.min_x, home_region.max_x)
    hy = rng.uniform(home_region.min_y, home_region.max_y)
    anchors: List[Tuple[Point, str]] = [(Point(float(hx), float(hy)), "home")]
    ring_bounds = [(2_000.0, 15_000.0), (500.0, 5_000.0), (500.0, 5_000.0)]
    kinds = ["work", "other", "other"]
    for j in range(n_tops - 1):
        lo, hi = ring_bounds[j]
        radius = rng.uniform(lo, hi)
        theta = rng.uniform(0.0, 2.0 * math.pi)
        anchors.append(
            (
                Point(float(hx + radius * math.cos(theta)), float(hy + radius * math.sin(theta))),
                kinds[j],
            )
        )
    return anchors


def _draw_weights(n_tops: int, activity: float, rng: np.random.Generator) -> np.ndarray:
    """Routine-share split across top locations, top-1 dominant.

    ``activity`` in [0, 1] scales how much the top-1 location dominates:
    heavy reporters are strongly home-anchored.
    """
    top1 = rng.uniform(0.5, 0.65) + 0.25 * activity
    top1 = min(top1, 0.9)
    if n_tops == 1:
        return np.array([1.0])
    rest = rng.dirichlet(np.linspace(2.0, 1.0, n_tops - 1)) * (1.0 - top1)
    weights = np.concatenate([[top1], np.sort(rest)[::-1]])
    return weights / weights.sum()


def _build_user(
    idx: int, config: PopulationConfig, rng: np.random.Generator
) -> Tuple[MobilityModel, int]:
    region = shanghai_planar_bbox()
    home_region = region.expand(-config.region_margin_m)
    n_checkins = _draw_count(config, rng)
    # Activity score in [0, 1] on a log scale between the count bounds.
    activity = math.log(n_checkins / config.min_checkins) / math.log(
        config.max_checkins / config.min_checkins
    )
    n_tops = int(rng.choice([1, 2, 3, 4], p=[0.15, 0.5, 0.25, 0.1]))
    anchors = _draw_anchor_points(home_region, n_tops, rng)
    weights = _draw_weights(n_tops, activity, rng)
    tops = [
        TopLocation(point=p, weight=float(w), kind=kind)
        for (p, kind), w in zip(anchors, weights)
    ]
    nomadic = config.nomadic_base * (
        n_checkins / config.min_checkins
    ) ** (-config.nomadic_decay)
    nomadic *= float(rng.lognormal(0.0, 0.35))
    nomadic = float(np.clip(nomadic, config.nomadic_min, config.nomadic_max))
    model = MobilityModel(
        user_id=f"user-{idx:06d}",
        top_locations=tops,
        nomadic_fraction=nomadic,
        gps_noise_m=config.gps_noise_m,
        region=region,
    )
    return model, n_checkins


def iter_population(config: PopulationConfig) -> Iterator[SyntheticUser]:
    """Stream users one at a time (constant memory for very large populations)."""
    rng = np.random.default_rng(config.seed)
    for idx in range(config.n_users):
        model, n_checkins = _build_user(idx, config, rng)
        trace = model.generate(n_checkins, config.start_ts, config.days, rng)
        yield SyntheticUser(user_id=model.user_id, model=model, trace=trace)


def iter_population_spawned(
    config: PopulationConfig, start: int = 0, stop: Optional[int] = None
) -> Iterator[SyntheticUser]:
    """Stream users ``[start, stop)`` with per-user spawned RNG streams.

    Unlike :func:`iter_population` (ONE sequential rng, so user ``i``
    depends on all users before it), each user here draws from
    ``SeedSequence(entropy=config.seed, spawn_key=(i,))`` — user ``i`` is
    a pure function of ``(config, i)``.  That makes arbitrary index
    ranges generable independently, which is what lets the dataset tiers
    build 100k-user populations shard-parallel and cache each shard
    separately while remaining bit-identical for any shard schedule.
    """
    stop = config.n_users if stop is None else stop
    if not 0 <= start <= stop <= config.n_users:
        raise ValueError(
            f"invalid user range [{start}, {stop}) for {config.n_users} users"
        )
    for idx in range(start, stop):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(idx,))
        )
        model, n_checkins = _build_user(idx, config, rng)
        trace = model.generate(n_checkins, config.start_ts, config.days, rng)
        yield SyntheticUser(user_id=model.user_id, model=model, trace=trace)


def generate_population(config: Optional[PopulationConfig] = None) -> List[SyntheticUser]:
    """Materialise the whole population (fine up to a few thousand users)."""
    if config is None:
        config = PopulationConfig()
    return list(iter_population(config))


def rake_marginals(
    seed: np.ndarray,
    row_targets: Sequence[float],
    col_targets: Sequence[float],
    tol: float = 1e-10,
    max_iters: int = 500,
) -> Tuple[np.ndarray, int, float]:
    """Rake ``seed`` to the target marginals by iterative proportional fitting.

    Classic IPF: alternately rescale rows then columns of a non-negative
    seed table until both marginals match the targets.  The fixed point
    preserves the seed's cross-ratios (odds structure) while matching the
    targets exactly — which is how tier calibration pins the check-in
    count x entropy joint to Figure 3's published marginals in a handful
    of vectorised sweeps, instead of per-user rejection loops whose cost
    scales with the population.

    Returns ``(fitted, iterations, max_abs_error)`` where the error is
    the worst absolute marginal deviation at exit.  Raises ``ValueError``
    on malformed inputs (shape mismatch, negative mass, a zero seed
    row/column asked to carry positive target mass) and ``RuntimeError``
    if the tolerance is not reached within ``max_iters`` sweeps — a zero
    pattern in the seed can make the targets unreachable.
    """
    table = np.array(seed, dtype=np.float64, copy=True)
    rows = np.asarray(row_targets, dtype=np.float64)
    cols = np.asarray(col_targets, dtype=np.float64)
    if table.ndim != 2:
        raise ValueError(f"seed must be 2-D, got shape {table.shape}")
    if rows.shape != (table.shape[0],) or cols.shape != (table.shape[1],):
        raise ValueError(
            f"marginal shapes {rows.shape}/{cols.shape} do not match "
            f"seed shape {table.shape}"
        )
    if np.any(table < 0) or np.any(rows < 0) or np.any(cols < 0):
        raise ValueError("seed and target marginals must be non-negative")
    if not math.isclose(float(rows.sum()), float(cols.sum()), rel_tol=1e-9, abs_tol=1e-12):
        raise ValueError(
            f"marginal totals disagree: rows sum to {rows.sum()!r}, "
            f"columns to {cols.sum()!r}"
        )
    if np.any((table.sum(axis=1) == 0) & (rows > 0)):
        raise ValueError("a zero seed row cannot carry positive target mass")
    if np.any((table.sum(axis=0) == 0) & (cols > 0)):
        raise ValueError("a zero seed column cannot carry positive target mass")

    err = math.inf
    for iteration in range(1, max_iters + 1):
        row_sums = table.sum(axis=1)
        table *= np.divide(
            rows, row_sums, out=np.zeros_like(rows), where=row_sums > 0
        )[:, np.newaxis]
        col_sums = table.sum(axis=0)
        table *= np.divide(
            cols, col_sums, out=np.zeros_like(cols), where=col_sums > 0
        )[np.newaxis, :]
        # After the column sweep the column marginal is exact; convergence
        # is governed by how far the row marginal drifted.
        err = float(np.max(np.abs(table.sum(axis=1) - rows)))
        if err <= tol:
            return table, iteration, err
    raise RuntimeError(
        f"IPF did not converge in {max_iters} sweeps "
        f"(max marginal error {err:.3e} > tol {tol:.3e}); "
        "the seed's zero pattern may make the targets unreachable"
    )


def figure3_marginals(
    config: Optional[PopulationConfig] = None, n_count_bins: int = 4
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 3 calibration targets for :func:`rake_marginals`.

    Returns ``(count_edges, count_marginal, entropy_marginal)``:
    geometric check-in-count bin edges spanning the config's clipped
    range, the exact mass the clipped log-normal count law puts in each
    bin (clip mass collapses into the boundary bins), and the paper's
    published entropy split (:data:`FIG3_ENTROPY_MARGINAL` — 88.8 % of
    users below entropy 2).
    """
    if config is None:
        config = PopulationConfig()
    edges = np.geomspace(
        float(config.min_checkins), float(config.max_checkins), n_count_bins + 1
    )

    def _phi(x: float) -> float:
        z = (math.log(x) - config.count_log_mean) / config.count_log_sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    cdf = np.array([0.0] + [_phi(e) for e in edges[1:-1]] + [1.0])
    count_marginal = np.diff(cdf)
    return edges, count_marginal, np.asarray(FIG3_ENTROPY_MARGINAL)


def rake_figure3_joint(
    seed_joint: np.ndarray, config: Optional[PopulationConfig] = None
) -> Tuple[np.ndarray, int, float]:
    """Rake an empirical count x entropy joint onto Figure 3's marginals.

    ``seed_joint`` is a ``(n_count_bins, 2)`` histogram (rows: check-in
    count bins from :func:`figure3_marginals`; columns: entropy below /
    at-or-above 2).  The result keeps the seed's count-entropy coupling
    (Figure 3's declining trend) while matching the count law and the
    88.8 % low-entropy share exactly.
    """
    joint = np.asarray(seed_joint, dtype=np.float64)
    total = float(joint.sum())
    if total <= 0:
        raise ValueError("seed joint has no mass")
    _, count_marginal, entropy_marginal = figure3_marginals(
        config, n_count_bins=joint.shape[0] if joint.ndim == 2 else 0
    )
    return rake_marginals(joint / total, count_marginal, entropy_marginal)
