"""Synthetic data substrate calibrated to the paper's dataset statistics."""

from repro.datagen.casestudy import make_fig2_user, make_fig4_user
from repro.datagen.mobility import MobilityModel, TopLocation
from repro.datagen.obfuscate import one_time_obfuscate, permanent_obfuscate
from repro.datagen.population import (
    PopulationConfig,
    SyntheticUser,
    generate_population,
    iter_population,
)
from repro.datagen.shanghai import (
    SHANGHAI_GEO_BBOX,
    SHANGHAI_PROJECTION,
    STUDY_DAYS,
    STUDY_END_TS,
    STUDY_START_TS,
    shanghai_planar_bbox,
)

__all__ = [
    "MobilityModel",
    "TopLocation",
    "PopulationConfig",
    "SyntheticUser",
    "generate_population",
    "iter_population",
    "make_fig2_user",
    "make_fig4_user",
    "one_time_obfuscate",
    "permanent_obfuscate",
    "SHANGHAI_GEO_BBOX",
    "SHANGHAI_PROJECTION",
    "STUDY_START_TS",
    "STUDY_END_TS",
    "STUDY_DAYS",
    "shanghai_planar_bbox",
]
