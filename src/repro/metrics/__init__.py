"""Utility metrics: utilization rate, efficacy, attack success, timing."""

from repro.metrics.efficacy import efficacy_of_report, efficacy_samples
from repro.metrics.timing import (
    ChunkTiming,
    Stopwatch,
    TimingRow,
    measure_scaling,
    summarize_chunks,
)
from repro.metrics.utilization import (
    DEFAULT_TARGETING_RADIUS_M,
    UtilizationSummary,
    minimal_utilization,
    summarize_utilization,
    utilization_rate,
    utilization_samples,
)

__all__ = [
    "utilization_rate",
    "utilization_samples",
    "minimal_utilization",
    "summarize_utilization",
    "UtilizationSummary",
    "DEFAULT_TARGETING_RADIUS_M",
    "efficacy_of_report",
    "efficacy_samples",
    "Stopwatch",
    "TimingRow",
    "measure_scaling",
    "ChunkTiming",
    "summarize_chunks",
]

from repro.metrics.qos import expected_distance_loss, report_distances

__all__ += ["expected_distance_loss", "report_distances"]

from repro.metrics.bootstrap import ConfidenceInterval, bootstrap_ci, proportion_ci

__all__ += ["ConfidenceInterval", "bootstrap_ci", "proportion_ci"]
