"""Quality-of-service loss metrics for LPPMs.

Beyond the paper's two advertising metrics (utilization rate, efficacy),
the broader geo-IND literature (Bordenabe et al., Chatzikokolakis et al.)
scores mechanisms by *expected distance loss* between the true and
reported location.  We implement it so the Bayesian-remapping extension
can be evaluated on the metric it optimises, and so mechanisms can be
compared on a selector-independent axis.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.posterior import OutputSelector
from repro.geo.point import Point

__all__ = ["expected_distance_loss", "report_distances"]

PostProcess = Callable[[Point], Point]


def report_distances(
    mechanism: LPPM,
    trials: int,
    true_location: Point = Point(0.0, 0.0),
    selector: Optional[OutputSelector] = None,
    post_process: Optional[PostProcess] = None,
) -> np.ndarray:
    """Distances between the true location and the (processed) reports.

    For multi-output mechanisms a selector must pick the reported
    candidate; ``post_process`` (e.g. Bayesian remapping) is applied to
    the selected report before measuring.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    out = np.empty(trials)
    for t in range(trials):
        # Measurement loop: fresh draws per trial sample the QoS-loss
        # distribution; no release leaves this function, so no charge.
        # reprolint: disable=BUD002,BUD101
        candidates = mechanism.obfuscate(true_location)
        if len(candidates) == 1:
            reported = candidates[0]
        else:
            if selector is None:
                raise ValueError(
                    "multi-output mechanisms need a selector for QoS measurement"
                )
            reported = selector.select(candidates)
        if post_process is not None:
            reported = post_process(reported)
        out[t] = true_location.distance_to(reported)
    return out


def expected_distance_loss(
    mechanism: LPPM,
    trials: int,
    true_location: Point = Point(0.0, 0.0),
    selector: Optional[OutputSelector] = None,
    post_process: Optional[PostProcess] = None,
) -> float:
    """Monte-Carlo estimate of E[dist(true, reported)]."""
    return float(
        report_distances(
            mechanism,
            trials,
            true_location=true_location,
            selector=selector,
            post_process=post_process,
        ).mean()
    )
