"""Timing harness for the scalability experiments (Tables II and III).

The paper reports wall-clock processing time of the edge device as the
number of served users grows.  This harness measures our implementation
the same way: run a callable over a user workload, repeat, and report the
per-size timings so the benches can print paper-style rows.

Beyond the scaling rows this module also defines the shared timing
records used across the perf infrastructure: :class:`ChunkTiming` is the
per-chunk wall-clock record that :func:`repro.parallel.parallel_map`
emits for every fan-out chunk, and :func:`summarize_chunks` reduces a
chunk list to the aggregate stats the benchmark JSON archives.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

__all__ = [
    "TimingRow",
    "measure_scaling",
    "Stopwatch",
    "ChunkTiming",
    "summarize_chunks",
]


class Stopwatch:
    """Minimal context-manager stopwatch (monotonic clock)."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass(frozen=True)
class TimingRow:
    """One (workload size, seconds) measurement.

    ``seconds`` is the best-of-N wall clock (the algorithmic cost);
    ``mean``/``std`` summarise the same repeats so noisy hosts are
    detectable from the reports.  Single-repeat rows have ``std == 0``.
    """

    size: int
    seconds: float
    mean: float = float("nan")
    std: float = float("nan")

    def __post_init__(self) -> None:
        # Default mean to the single measurement for 2-arg construction.
        if math.isnan(self.mean):
            object.__setattr__(self, "mean", self.seconds)
        if math.isnan(self.std):
            object.__setattr__(self, "std", 0.0)

    @property
    def per_item_ms(self) -> float:
        """Average milliseconds per processed item."""
        return 1_000.0 * self.seconds / self.size if self.size else 0.0


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock of one parallel fan-out chunk (see ``repro.parallel``)."""

    index: int
    size: int
    seconds: float


def summarize_chunks(chunks: Sequence[ChunkTiming]) -> Dict[str, float]:
    """Aggregate per-chunk timings into the stats the bench JSON records."""
    if not chunks:
        return {"chunks": 0, "total_seconds": 0.0, "max_seconds": 0.0, "mean_seconds": 0.0}
    seconds = [c.seconds for c in chunks]
    return {
        "chunks": len(chunks),
        "total_seconds": float(sum(seconds)),
        "max_seconds": float(max(seconds)),
        "mean_seconds": float(sum(seconds) / len(seconds)),
    }


def measure_scaling(
    workload: Callable[[int], None],
    sizes: Sequence[int],
    repeats: int = 1,
    warmup: int = 0,
) -> List[TimingRow]:
    """Time ``workload(size)`` for each size, keeping the best of ``repeats``.

    Best-of-N is the standard way to suppress scheduler noise when the
    quantity of interest is the algorithmic cost; ``mean``/``std`` over
    the same repeats are reported alongside.  ``warmup`` extra unmeasured
    passes per size absorb first-call effects (allocator growth, numpy
    internals, imports resolving lazily) that otherwise dominate the
    smallest workload sizes.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    rows: List[TimingRow] = []
    for size in sizes:
        if size < 1:
            raise ValueError(f"workload sizes must be positive, got {size}")
        for _ in range(warmup):
            workload(size)
        samples: List[float] = []
        for _ in range(repeats):
            with Stopwatch() as sw:
                workload(size)
            samples.append(sw.elapsed)
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        rows.append(
            TimingRow(
                size=size,
                seconds=min(samples),
                mean=mean,
                std=math.sqrt(var),
            )
        )
    return rows
