"""Timing harness for the scalability experiments (Tables II and III).

The paper reports wall-clock processing time of the edge device as the
number of served users grows.  This harness measures our implementation
the same way: run a callable over a user workload, repeat, and report the
per-size timings so the benches can print paper-style rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["TimingRow", "measure_scaling", "Stopwatch"]


class Stopwatch:
    """Minimal context-manager stopwatch (monotonic clock)."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass(frozen=True)
class TimingRow:
    """One (workload size, seconds) measurement."""

    size: int
    seconds: float

    @property
    def per_item_ms(self) -> float:
        return 1_000.0 * self.seconds / self.size if self.size else 0.0


def measure_scaling(
    workload: Callable[[int], None],
    sizes: Sequence[int],
    repeats: int = 1,
) -> List[TimingRow]:
    """Time ``workload(size)`` for each size, keeping the best of ``repeats``.

    Best-of-N is the standard way to suppress scheduler noise when the
    quantity of interest is the algorithmic cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rows: List[TimingRow] = []
    for size in sizes:
        if size < 1:
            raise ValueError(f"workload sizes must be positive, got {size}")
        best = float("inf")
        for _ in range(repeats):
            with Stopwatch() as sw:
                workload(size)
            best = min(best, sw.elapsed)
        rows.append(TimingRow(size=size, seconds=best))
    return rows
