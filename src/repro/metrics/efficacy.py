"""Advertising efficacy (paper Definition 5).

Efficacy is the probability that an ad requested from the AOR is actually
relevant to the user: ``AE = Pr[ad in AOI | ad in AOR]``.  Following the
paper's measurement procedure, ads are sampled uniformly in the AOR — the
disc of targeting radius R around the *selected* reported location — and
counted as relevant when they also fall inside the AOI around the true
location.  The output selection module exists precisely to keep this
probability high as ``n`` grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.posterior import OutputSelector
from repro.geo.geometry import sample_uniform_disc
from repro.geo.point import Point
from repro.metrics.utilization import DEFAULT_TARGETING_RADIUS_M

__all__ = ["efficacy_of_report", "efficacy_samples", "efficacy_samples_batched"]


def efficacy_of_report(
    true_location: Point,
    reported: Point,
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M,
    ads_per_trial: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """AE for one reported location: share of AOR-sampled ads inside the AOI.

    This has the closed form of the lens-overlap fraction; the sampled
    estimate mirrors the paper's Monte-Carlo procedure and exercises the
    same code path the ad simulator uses.
    """
    if targeting_radius <= 0:
        raise ValueError("targeting radius must be positive")
    if ads_per_trial < 1:
        raise ValueError("ads_per_trial must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    ads = sample_uniform_disc(reported, targeting_radius, ads_per_trial, rng)
    d2 = (ads[:, 0] - true_location.x) ** 2 + (ads[:, 1] - true_location.y) ** 2
    return float((d2 <= targeting_radius * targeting_radius).mean())


def efficacy_samples(
    mechanism: LPPM,
    selector: OutputSelector,
    trials: int,
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M,
    true_location: Point = Point(0.0, 0.0),
    ads_per_trial: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """AE distribution over fresh candidate sets + output selections.

    Each trial draws a new candidate set from the mechanism, selects one
    reported location with the given policy, and measures the share of
    AOR ads that are AOI-relevant.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    out = np.empty(trials)
    for t in range(trials):
        # Measurement loop: each trial intentionally draws a fresh
        # candidate set to sample the AE distribution, not to serve ads —
        # nothing is released, so no budget charge applies either.
        # reprolint: disable=BUD002,BUD101
        candidates = mechanism.obfuscate(true_location)
        reported = selector.select(candidates)
        out[t] = efficacy_of_report(
            true_location,
            reported,
            targeting_radius=targeting_radius,
            ads_per_trial=ads_per_trial,
            rng=rng,
        )
    return out


def efficacy_samples_batched(
    mechanism: LPPM,
    selector: OutputSelector,
    trials: int,
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M,
    true_location: Point = Point(0.0, 0.0),
    ads_per_trial: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """AE distribution with every trial batched into array passes.

    Statistically the same measurement as :func:`efficacy_samples` —
    fresh candidate set, one selection, AOR ad sampling per trial — but
    executed as three shard-wide passes: one ``obfuscate_batch`` over the
    tiled true location, one ``select_index_batch``, and one uniform-disc
    ad draw for all ``trials * ads_per_trial`` ads.  The batched calls
    consume the rng in a different order than the per-trial loop, so the
    two variants sample different (equally distributed) AE values.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if targeting_radius <= 0:
        raise ValueError("targeting radius must be positive")
    if ads_per_trial < 1:
        raise ValueError("ads_per_trial must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    tiled = np.tile([[true_location.x, true_location.y]], (trials, 1))
    # Measurement sampling (batched variant of the loop above): the draws
    # estimate the AE distribution and are never released to a consumer.
    # reprolint: disable=BUD101
    candidates = mechanism.obfuscate_batch(tiled)
    if candidates.ndim == 2:  # single-output mechanisms return (trials, 2)
        candidates = candidates[:, None, :]
    idx = selector.select_index_batch(candidates)
    reported = candidates[np.arange(trials), idx]

    # Uniform-disc ad sampling for all trials at once: same draw pattern
    # as sample_uniform_disc (theta first, then radius), one call each.
    total = trials * ads_per_trial
    theta = rng.uniform(0.0, 2.0 * np.pi, total)
    radii = targeting_radius * np.sqrt(rng.uniform(0.0, 1.0, total))
    ad_x = np.repeat(reported[:, 0], ads_per_trial) + radii * np.cos(theta)
    ad_y = np.repeat(reported[:, 1], ads_per_trial) + radii * np.sin(theta)
    d2 = (ad_x - true_location.x) ** 2 + (ad_y - true_location.y) ** 2
    hits = (d2 <= targeting_radius * targeting_radius).reshape(
        trials, ads_per_trial
    )
    return hits.mean(axis=1)
