"""Bootstrap confidence intervals for experiment statistics.

The paper reports point estimates; for a reproduction it is good practice
to attach uncertainty, especially at reduced trial counts.  This module
implements the percentile bootstrap for means and proportions, used by the
experiment drivers' confidence columns and available to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["ConfidenceInterval", "bootstrap_ci", "proportion_ci"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Width of the interval (high - low)."""
        return self.high - self.low

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @{self.confidence:.0%}"
        )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    estimate = float(statistic(arr))
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.array([float(statistic(arr[row])) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=estimate,
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def proportion_ci(
    successes: int,
    total: int,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for a success proportion (e.g. attack success rate)."""
    if total < 1:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes must lie in [0, total]")
    samples = np.zeros(total)
    samples[:successes] = 1.0
    return bootstrap_ci(
        samples, statistic=np.mean, confidence=confidence,
        n_resamples=n_resamples, rng=rng,
    )
