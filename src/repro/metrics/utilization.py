"""Utilization rate (paper Definition 4) and its confidence lower bound.

The *area of interest* (AOI) is the disc of targeting radius ``R`` around
the user's true location; the *area of request* (AOR) is the union of the
same-radius discs around the reported obfuscated locations.  The
utilization rate ``UR = |AOI ∩ AOR| / |AOI|`` is the share of relevant
advertisers the user can still be matched with.

The paper reports the *minimal utilization rate* ``v`` at confidence
``alpha``: ``Pr(UR >= v) = alpha`` over the randomness of the mechanism,
i.e. the ``(1 - alpha)`` quantile of the UR distribution (Eq. 24),
estimated over Monte-Carlo trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.mechanism import LPPM
from repro.geo.geometry import union_coverage_fraction
from repro.geo.point import Point

__all__ = [
    "utilization_rate",
    "UtilizationSummary",
    "utilization_samples",
    "minimal_utilization",
    "summarize_utilization",
]

#: The paper's targeting radius: 5 km, the lower edge of the common
#: platform range investigated in Table I.
DEFAULT_TARGETING_RADIUS_M = 5_000.0


def utilization_rate(
    true_location: Point,
    reported: Sequence[Point],
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M,
    samples: int = 2048,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """UR for one realised candidate set (Definition 4)."""
    if targeting_radius <= 0:
        raise ValueError("targeting radius must be positive")
    if not reported:
        return 0.0
    return union_coverage_fraction(
        aoi_center=true_location,
        aoi_radius=targeting_radius,
        aor_centers=list(reported),
        aor_radius=targeting_radius,
        samples=samples,
        rng=rng,
    )


def utilization_samples(
    mechanism: LPPM,
    trials: int,
    targeting_radius: float = DEFAULT_TARGETING_RADIUS_M,
    true_location: Point = Point(0.0, 0.0),
    mc_samples: int = 1024,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """UR distribution over fresh mechanism draws (one value per trial).

    Each trial regenerates the candidate set — this is the randomness the
    minimal-UR quantile is taken over.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    out = np.empty(trials)
    for t in range(trials):
        # Measurement loop: the per-trial fresh draw IS the distribution
        # being quantified (Eq. 24's randomness), not a served release —
        # no consumer sees it, so no budget charge applies.
        # reprolint: disable=BUD002,BUD101
        candidates = mechanism.obfuscate(true_location)
        out[t] = utilization_rate(
            true_location,
            candidates,
            targeting_radius=targeting_radius,
            samples=mc_samples,
            rng=rng,
        )
    return out


def minimal_utilization(ur_samples: np.ndarray, alpha: float = 0.9) -> float:
    """Eq. 24: the largest ``v`` with ``Pr(UR >= v) >= alpha``.

    Equals the ``(1 - alpha)`` quantile of the UR sample (lower quantile,
    so the estimate is conservative).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    arr = np.asarray(ur_samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one UR sample")
    return float(np.quantile(arr, 1.0 - alpha, method="lower"))


@dataclass(frozen=True)
class UtilizationSummary:
    """Summary statistics of a UR sample used by the figure drivers."""

    mean: float
    std: float
    minimal_at_alpha: float
    alpha: float
    trials: int


def summarize_utilization(
    ur_samples: np.ndarray, alpha: float = 0.9
) -> UtilizationSummary:
    """Mean/std/minimal-UR summary of a UR sample."""
    arr = np.asarray(ur_samples, dtype=float)
    return UtilizationSummary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimal_at_alpha=minimal_utilization(arr, alpha),
        alpha=alpha,
        trials=int(arr.size),
    )
