"""MAP estimation attack against the n-fold release (paper Eq. 5).

The paper models the strongest longitudinal adversary as a parameter
estimator: knowing a prior candidate set ``P = {p_1, ..., p_k}`` of
plausible true locations (all within ``r`` of the victim's real location),
the attacker picks the candidate maximising the posterior given the
observed reported locations ``Q = {q_1, ..., q_n}``:

    p_hat = argmax_{p in P} Pr[p | q_1, ..., q_n]

This module implements the estimator for both noise models: under
Gaussian noise the log-likelihood is ``-sum_j |q_j - p|^2 / (2 sigma^2)``
(so the MAP candidate is the one nearest the observation mean — the
sufficient statistic again), and under planar Laplace noise it is
``-eps * sum_j |q_j - p|``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.core.attacker import AttackerBase
from repro.geo.point import Point, points_to_array

__all__ = [
    "MAPEstimate",
    "gaussian_log_likelihood",
    "laplace_log_likelihood",
    "map_estimate",
    "map_estimate_xy",
    "MAPAttack",
]

LogLikelihood = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class MAPEstimate:
    """The estimator's output with its full posterior for inspection."""

    candidate: Point
    index: int
    posterior: np.ndarray


def gaussian_log_likelihood(sigma: float) -> LogLikelihood:
    """Log-likelihood factory for isotropic Gaussian noise at scale ``sigma``."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")

    def loglik(observations: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        # (k,) total log-likelihood per candidate.
        diff = observations[None, :, :] - candidates[:, None, :]
        sq = (diff ** 2).sum(axis=-1)
        return -sq.sum(axis=1) / (2.0 * sigma * sigma)

    return loglik


def laplace_log_likelihood(epsilon: float) -> LogLikelihood:
    """Log-likelihood factory for planar Laplace noise at per-metre ``epsilon``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    def loglik(observations: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        diff = observations[None, :, :] - candidates[:, None, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        return -epsilon * dist.sum(axis=1)

    return loglik


def map_estimate_xy(
    observations: np.ndarray,
    candidates: np.ndarray,
    log_likelihood: LogLikelihood,
    prior: Optional[np.ndarray] = None,
) -> "tuple[int, np.ndarray]":
    """Eq. 5 on raw coordinate arrays: ``(argmax index, posterior)``.

    The columnar fast path: takes ``(m, 2)`` observations and ``(k, 2)``
    candidates directly, skipping Point materialisation.  The posterior is
    normalised in a numerically stable way.
    """
    candidates = np.asarray(candidates, dtype=float)
    if len(candidates) == 0:
        raise ValueError("candidate set must be non-empty")
    observations = np.asarray(observations, dtype=float)
    if len(observations) == 0:
        raise ValueError("observation set must be non-empty")
    log_post = log_likelihood(observations, candidates)
    if prior is not None:
        prior = np.asarray(prior, dtype=float)
        if prior.shape != (len(candidates),):
            raise ValueError("prior must have one weight per candidate")
        if (prior <= 0).any():
            raise ValueError("prior weights must be positive")
        log_post = log_post + np.log(prior)
    log_post = log_post - log_post.max()
    posterior = np.exp(log_post)
    posterior /= posterior.sum()
    return int(np.argmax(posterior)), posterior


def map_estimate(
    observations: Sequence[Point],
    candidates: Sequence[Point],
    log_likelihood: LogLikelihood,
    prior: Optional[np.ndarray] = None,
) -> MAPEstimate:
    """Eq. 5: the maximum-a-posteriori candidate given the observations.

    ``prior`` defaults to uniform over the candidate set.  The returned
    posterior is normalised in a numerically stable way.
    """
    cand_list = list(candidates)
    if not cand_list:
        raise ValueError("candidate set must be non-empty")
    obs = points_to_array(observations)
    cand = points_to_array(cand_list)
    idx, posterior = map_estimate_xy(obs, cand, log_likelihood, prior)
    return MAPEstimate(candidate=cand_list[idx], index=idx, posterior=posterior)


class MAPAttack(AttackerBase):
    """Convenience wrapper binding a noise model to the MAP estimator.

    Satisfies the :class:`repro.core.attacker.Attacker` protocol when a
    candidate set is bound (at construction or via
    :meth:`with_candidates`): ``estimate_xy`` ranks the bound candidates
    by posterior given the coordinates, ``estimate(n)`` does the same
    over the evidence buffer.  The pre-protocol ``estimate(observations,
    candidates)`` spelling collided with the protocol's ``estimate(n)``;
    it lives on as :meth:`map_candidate`, with a one-release dispatching
    shim on ``estimate``.
    """

    name = "map"

    def __init__(
        self,
        log_likelihood: LogLikelihood,
        candidates: Optional[Sequence[Point]] = None,
        prior: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self._loglik = log_likelihood
        self._candidates = list(candidates) if candidates is not None else None
        self._prior = prior

    @classmethod
    def gaussian(cls, sigma: float, **kwargs: object) -> "MAPAttack":
        """MAP attack against isotropic Gaussian noise of scale sigma."""
        return cls(gaussian_log_likelihood(sigma), **kwargs)  # type: ignore[arg-type]

    @classmethod
    def laplace(cls, epsilon: float, **kwargs: object) -> "MAPAttack":
        """MAP attack against planar Laplace noise with budget epsilon."""
        return cls(laplace_log_likelihood(epsilon), **kwargs)  # type: ignore[arg-type]

    def with_candidates(
        self, candidates: Sequence[Point], prior: Optional[np.ndarray] = None
    ) -> "MAPAttack":
        """A copy of this attack bound to a prior candidate set."""
        clone = MAPAttack(self._loglik, candidates=candidates, prior=prior)
        clone.name = self.name
        return clone

    def map_candidate(
        self,
        observations: Sequence[Point],
        candidates: Sequence[Point],
        prior: Optional[np.ndarray] = None,
    ) -> MAPEstimate:
        """Run Eq. 5 with this attack's bound noise model.

        (Renamed from ``estimate``, which the Attacker protocol now
        claims for the evidence-buffer entry point.)
        """
        return map_estimate(observations, candidates, self._loglik, prior)

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """The bound candidates ranked by posterior, best first.

        Requires a candidate set (Eq. 5 is an argmax over a prior
        candidate pool, not free-space inference).
        """
        coords = self._check_request(coords, n)
        if self._candidates is None:
            raise ValueError(
                "MAPAttack.estimate_xy needs a bound candidate set; "
                "construct with candidates=... or use with_candidates()"
            )
        cand_xy = points_to_array(self._candidates)
        _, posterior = map_estimate_xy(coords, cand_xy, self._loglik, self._prior)
        order = np.argsort(posterior)[::-1]
        return [self._candidates[int(i)] for i in order[:n]]

    def estimate(self, *args: Any, **kwargs: Any) -> Any:
        """Protocol ``estimate(n)``, plus the one-release legacy shim.

        ``estimate(n)`` ranks the bound candidates against the evidence
        buffer.  The legacy spelling ``estimate(observations,
        candidates, prior=None)`` still works but warns; call
        :meth:`map_candidate` instead.
        """
        if len(args) == 1 and not kwargs and isinstance(args[0], int):
            return super().estimate(args[0])
        warnings.warn(
            "MAPAttack.estimate(observations, candidates) is deprecated; "
            "use map_candidate(...) (the Attacker protocol claims "
            "estimate(n))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.map_candidate(*args, **kwargs)
