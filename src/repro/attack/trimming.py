"""The TRIMMING refinement procedure (Algorithm 1, lines 10-19).

Connectivity clustering over heavily perturbed check-ins merges points from
different true locations; trimming fixes the largest cluster by iterating:

1. recompute the cluster centroid;
2. discard members farther than ``r_alpha`` from the centroid — at
   confidence ``alpha`` such points are implausible perturbations of the
   location under attack (Eq. 4);
3. re-admit any currently excluded check-in that falls within ``r_alpha``
   of the new centroid;

until a fixed point.  ``r_alpha`` is the mechanism's noise-radius tail
quantile, e.g. the Rayleigh/planar-Laplace quantile at ``alpha = 0.05``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

import numpy as np

from repro.geo.point import Point

__all__ = ["TrimResult", "trim_cluster", "trim_cluster_xy"]

#: Safety cap on refinement rounds; the fixed point is normally reached in
#: a handful of iterations, but pathological symmetric configurations could
#: oscillate between two membership sets.
MAX_TRIM_ITERATIONS = 200


@dataclass(frozen=True)
class TrimResult:
    """Outcome of the trimming refinement."""

    member_indices: tuple
    centroid: Point
    iterations: int
    converged: bool

    @property
    def size(self) -> int:
        """Number of member observations."""
        return len(self.member_indices)


def trim_cluster_xy(
    coords: np.ndarray,
    seed_indices: "Sequence[int] | np.ndarray",
    r_alpha: float,
    available: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[float, float], int, bool]:
    """The trimming fixed point as raw arrays (the columnar fast path).

    Same refinement as :func:`trim_cluster` but returns
    ``(member_mask, (cx, cy), iterations, converged)`` without building a
    :class:`TrimResult` — the attack loop consumes the mask directly.
    """
    coords = np.asarray(coords, dtype=float)
    if r_alpha <= 0:
        raise ValueError(f"r_alpha must be positive, got {r_alpha}")
    n = len(coords)
    if available is None:
        available = np.ones(n, dtype=bool)
    else:
        available = np.asarray(available, dtype=bool)
        if available.shape != (n,):
            raise ValueError("available mask must match coords length")

    seed = np.asarray(seed_indices, dtype=np.int64).ravel()
    if len(seed) == 0:
        raise ValueError("seed cluster must be non-empty")
    members = np.zeros(n, dtype=bool)
    members[seed] = True
    members &= available

    iterations = 0
    converged = False
    while iterations < MAX_TRIM_ITERATIONS:
        iterations += 1
        if not members.any():
            # Everything was trimmed away: fall back to the seed centroid.
            break
        centroid = coords[members].mean(axis=0)
        dist = np.hypot(coords[:, 0] - centroid[0], coords[:, 1] - centroid[1])
        new_members = available & (dist <= r_alpha)
        if np.array_equal(new_members, members):
            converged = True
            break
        members = new_members

    if not members.any():
        members = np.zeros(n, dtype=bool)
        members[seed] = True
        members &= available
    cx, cy = coords[members].mean(axis=0)
    return members, (float(cx), float(cy)), iterations, converged


def trim_cluster(
    coords: np.ndarray,
    seed_indices: "Set[int] | tuple | list",
    r_alpha: float,
    available: Optional[np.ndarray] = None,
) -> TrimResult:
    """Refine a seed cluster against the full check-in pool.

    Args:
        coords: ``(n, 2)`` array of all check-ins still under consideration.
        seed_indices: indices of the initial (largest) cluster.
        r_alpha: the trimming radius from Eq. 4.
        available: optional boolean mask over ``coords``; only available
            points may be (re-)admitted.  Defaults to all points, which is
            Algorithm 1's behaviour where ``x`` is the remaining pool.

    Returns:
        The fixed-point membership and centroid.
    """
    members, (cx, cy), iterations, converged = trim_cluster_xy(
        coords, list(seed_indices), r_alpha, available
    )
    return TrimResult(
        member_indices=tuple(int(i) for i in np.flatnonzero(members)),
        centroid=Point(cx, cy),
        iterations=iterations,
        converged=converged,
    )
