"""Cross-device linking attack: joining a user's devices by top location.

The paper notes that users own multiple devices and that the edge must
provide integrated obfuscation for them.  The underlying threat is this
attack: the ad ecosystem sees per-device identifiers, but a longitudinal
observer can *link* devices belonging to the same person by running the
de-obfuscation attack per device and grouping devices whose inferred top
locations coincide — two devices that "sleep" at the same place belong to
the same household.

Against one-time geo-IND streams the linkage is near-perfect (each
device's inferred home converges to the true home).  Against the
integrated Edge-PrivLocAd deployment the inferred locations are the pinned
candidates' cluster centres, kilometres from the home and *shared* across
the user's devices — so linking still groups the household, but the linked
location itself stays private; and with per-device (non-integrated) tables
the centres differ, so even linking degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.geo.index import UnionFind
from repro.geo.point import Point

__all__ = ["DeviceLink", "DeviceLinker", "split_trace_across_devices"]


@dataclass(frozen=True)
class DeviceLink:
    """One linked group of device ids with the location that joins them."""

    device_ids: tuple
    anchor: Point

    @property
    def size(self) -> int:
        """Number of linked device ids."""
        return len(self.device_ids)


class DeviceLinker:
    """Group devices by proximity of their inferred top locations."""

    def __init__(self, attack: DeobfuscationAttack, link_radius: float = 300.0) -> None:
        if link_radius <= 0:
            raise ValueError("link radius must be positive")
        self.attack = attack
        self.link_radius = link_radius

    def infer_anchor(self, observations: np.ndarray) -> Optional[Point]:
        """The device's inferred primary location (None if too sparse)."""
        if len(observations) == 0:
            return None
        tops = self.attack.estimate_xy(observations, 1)
        return tops[0] if tops else None

    def link(self, device_observations: Dict[str, np.ndarray]) -> List[DeviceLink]:
        """Group devices whose inferred anchors lie within the link radius.

        Returns groups sorted by size (largest household first); devices
        whose streams are too sparse to anchor are omitted.
        """
        device_ids: List[str] = []
        anchors: List[Point] = []
        for device_id, obs in device_observations.items():
            anchor = self.infer_anchor(obs)
            if anchor is not None:
                device_ids.append(device_id)
                anchors.append(anchor)
        if not device_ids:
            return []
        uf = UnionFind(len(device_ids))
        for i in range(len(device_ids)):
            for j in range(i + 1, len(device_ids)):
                if anchors[i].distance_to(anchors[j]) <= self.link_radius:
                    uf.union(i, j)
        links = []
        for members in uf.groups().values():
            group_ids = tuple(sorted(device_ids[m] for m in members))
            xs = [anchors[m].x for m in members]
            ys = [anchors[m].y for m in members]
            links.append(
                DeviceLink(
                    device_ids=group_ids,
                    anchor=Point(float(np.mean(xs)), float(np.mean(ys))),
                )
            )
        links.sort(key=lambda l: (-l.size, l.device_ids[0]))
        return links


def split_trace_across_devices(
    trace: Sequence, k_devices: int, rng: np.random.Generator
) -> List[List]:
    """Randomly partition one user's check-ins across ``k_devices`` devices.

    Models a person carrying a phone and a tablet: every check-in is
    reported by exactly one device, chosen uniformly.
    """
    if k_devices < 1:
        raise ValueError("need at least one device")
    assignment = rng.integers(0, k_devices, size=len(trace))
    slices: List[List] = [[] for _ in range(k_devices)]
    for item, device in zip(trace, assignment):
        slices[int(device)].append(item)
    return slices
