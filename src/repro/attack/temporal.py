"""Temporal refinement of the longitudinal attack: semantic labelling.

The paper observes that top locations carry semantics — home and work
place — and Figure 2 shows the diurnal structure that reveals them.  This
module implements the natural strengthening of the attack: restrict the
observation stream to a time-of-day window before clustering, so the
biggest night-time cluster is *home* and the biggest office-hours cluster
is the *work place*, even when the overall top-1/top-2 ordering is
ambiguous.  It reuses the de-obfuscation attack on the filtered stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.deobfuscation import DeobfuscationAttack
from repro.core.attacker import AttackerBase
from repro.geo.point import Point
from repro.profiles.checkin import SECONDS_PER_DAY, CheckIn, checkins_to_array

__all__ = ["HourWindow", "NIGHT", "OFFICE_HOURS", "TemporalAttack"]


@dataclass(frozen=True)
class HourWindow:
    """A daily local-time window, possibly wrapping midnight."""

    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        for h in (self.start_hour, self.end_hour):
            if not 0.0 <= h <= 24.0:
                raise ValueError(f"hour out of range: {h}")

    def contains(self, timestamp: float) -> bool:
        """Does the timestamp's local hour fall inside the window?"""
        hour = (timestamp % SECONDS_PER_DAY) / 3_600.0
        if self.start_hour <= self.end_hour:
            return self.start_hour <= hour < self.end_hour
        # Wrapping window, e.g. 21:00 -> 07:00.
        return hour >= self.start_hour or hour < self.end_hour


#: Typical semantic windows: home is occupied overnight, work by day.
NIGHT = HourWindow(21.0, 7.0)
OFFICE_HOURS = HourWindow(9.0, 18.0)


class TemporalAttack(AttackerBase):
    """Infer semantically labelled locations from time-sliced observations.

    Satisfies the :class:`repro.core.attacker.Attacker` protocol by
    delegating the canonical (window-free) path to its base attack; the
    window methods are this attacker's own semantic surface.
    """

    name = "temporal"

    def __init__(self, base_attack: DeobfuscationAttack) -> None:
        super().__init__()
        self.base_attack = base_attack

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """Window-free estimates, straight from the base attack."""
        return self.base_attack.estimate_xy(coords, n)

    def infer_in_window(
        self, observations: Sequence[CheckIn], window: HourWindow
    ) -> Optional[Point]:
        """Top-1 location among observations inside the daily window."""
        sliced = [c for c in observations if window.contains(c.timestamp)]
        if not sliced:
            return None
        tops = self.base_attack.estimate_xy(checkins_to_array(sliced), 1)
        return tops[0] if tops else None

    def infer_home(self, observations: Sequence[CheckIn]) -> Optional[Point]:
        """The dominant night-time location."""
        return self.infer_in_window(observations, NIGHT)

    def infer_workplace(self, observations: Sequence[CheckIn]) -> Optional[Point]:
        """The dominant office-hours location."""
        return self.infer_in_window(observations, OFFICE_HOURS)

    def infer_home_and_work(
        self, observations: Sequence[CheckIn]
    ) -> Tuple[Optional[Point], Optional[Point]]:
        """Both semantic locations in one call."""
        return self.infer_home(observations), self.infer_workplace(observations)
