"""K-means attacker baseline (from-scratch Lloyd's algorithm).

A natural question about the paper's Algorithm 1 is whether its
connectivity-clustering + trimming pipeline actually buys anything over
the obvious alternative: run k-means on the obfuscated check-ins and read
the top locations off the biggest clusters.  This module implements that
baseline — k-means++ seeding and Lloyd iterations, written directly on
numpy so the comparison is self-contained — and the ablation bench shows
Algorithm 1 recovering top locations more accurately, because k-means (a)
needs k as an input and (b) lets far-away nomadic noise drag centroids.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.attacker import AttackerBase
from repro.geo.point import Point

__all__ = ["KMeansResult", "kmeans", "KMeansAttack"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted centroids and assignments, clusters ordered by size."""

    centroids: np.ndarray  # (k, 2), sorted by descending cluster size
    sizes: np.ndarray  # (k,)
    labels: np.ndarray  # (n,) indices into the sorted centroids
    inertia: float
    iterations: int


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(points)
    centroids = np.empty((k, 2))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    d2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[j:] = points[int(rng.integers(n))]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[j] = points[choice]
        d2 = np.minimum(d2, ((points - centroids[j]) ** 2).sum(axis=1))
    return centroids


#: Row-chunk size for the streamed assignment step: bounds the transient
#: distance block at ``ASSIGN_CHUNK * k`` floats regardless of how many
#: check-ins the attacked population accumulates.
ASSIGN_CHUNK = 16_384


def _assign_chunked(
    points: np.ndarray, centroids: np.ndarray, chunk: int = ASSIGN_CHUNK
):
    """Nearest-centroid assignment without materialising the (n, k) matrix.

    Streams the points in row chunks, keeping only a ``(chunk, k)``
    distance block alive at a time, and returns ``(labels, min_d2)``.
    At the paper's full population scale (37k users x a year of check-ins)
    the full matrix would be tens of gigabytes; the streamed form is
    constant-memory in ``n``.
    """
    n = len(points)
    labels = np.empty(n, dtype=np.int64)
    min_d2 = np.empty(n, dtype=float)
    for start in range(0, n, chunk):
        block = points[start : start + chunk]
        d2 = (
            (block[:, 0, None] - centroids[None, :, 0]) ** 2
            + (block[:, 1, None] - centroids[None, :, 1]) ** 2
        )
        idx = d2.argmin(axis=1)
        labels[start : start + chunk] = idx
        min_d2[start : start + chunk] = d2[np.arange(len(block)), idx]
    return labels, min_d2


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 100,
    tol: float = 1e-4,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise ValueError(f"need at least k={k} points, got {len(points)}")
    if rng is None:
        rng = np.random.default_rng(0)

    centroids = _kmeans_pp_init(points, k, rng)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        labels, min_d2 = _assign_chunked(points, centroids)
        counts = np.bincount(labels, minlength=k)
        sums_x = np.bincount(labels, weights=points[:, 0], minlength=k)
        sums_y = np.bincount(labels, weights=points[:, 1], minlength=k)
        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty, 0] = sums_x[nonempty] / counts[nonempty]
        new_centroids[nonempty, 1] = sums_y[nonempty] / counts[nonempty]
        if not nonempty.all():
            # Re-seed empty clusters at the farthest point.
            new_centroids[~nonempty] = points[min_d2.argmax()]
        shift = np.hypot(*(new_centroids - centroids).T).max()
        centroids = new_centroids
        if shift < tol:
            break

    labels, min_d2 = _assign_chunked(points, centroids)
    inertia = float(min_d2.sum())
    sizes = np.bincount(labels, minlength=k)
    order = np.argsort(-sizes, kind="stable")
    remap = np.empty(k, dtype=int)
    remap[order] = np.arange(k)
    return KMeansResult(
        centroids=centroids[order],
        sizes=sizes[order],
        labels=remap[labels],
        inertia=inertia,
        iterations=iterations,
    )


class KMeansAttack(AttackerBase):
    """Top-n location inference by k-means over obfuscated check-ins.

    ``k`` is the number of clusters the attacker assumes; the inferred
    top-i location is the centroid of the i-th largest cluster.
    Satisfies the :class:`repro.core.attacker.Attacker` protocol.
    """

    name = "kmeans"

    def __init__(self, k: int = 8, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """The n largest-cluster centroids (fewer if data is scarce)."""
        coords = self._check_request(coords, n)
        if len(coords) == 0:
            return []
        k = min(self.k, len(coords))
        result = kmeans(coords, k, rng=self._rng)
        return [
            Point(float(x), float(y)) for x, y in result.centroids[:n]
        ]

    def infer_top_locations(self, observations: np.ndarray, n: int) -> List[Point]:
        """Deprecated: use ``estimate_xy`` (Attacker protocol).  One-release shim."""
        warnings.warn(
            "KMeansAttack.infer_top_locations is deprecated; use "
            "estimate_xy(coords, n) from the Attacker protocol",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate_xy(observations, n)

    def infer_top1(self, observations: np.ndarray) -> Optional[Point]:
        """Deprecated: use ``estimate_xy(coords, 1)``.  One-release shim."""
        warnings.warn(
            "KMeansAttack.infer_top1 is deprecated; use "
            "estimate_xy(coords, 1) from the Attacker protocol",
            DeprecationWarning,
            stacklevel=2,
        )
        tops = self.estimate_xy(observations, 1)
        return tops[0] if tops else None
