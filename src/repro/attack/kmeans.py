"""K-means attacker baseline (from-scratch Lloyd's algorithm).

A natural question about the paper's Algorithm 1 is whether its
connectivity-clustering + trimming pipeline actually buys anything over
the obvious alternative: run k-means on the obfuscated check-ins and read
the top locations off the biggest clusters.  This module implements that
baseline — k-means++ seeding and Lloyd iterations, written directly on
numpy so the comparison is self-contained — and the ablation bench shows
Algorithm 1 recovering top locations more accurately, because k-means (a)
needs k as an input and (b) lets far-away nomadic noise drag centroids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.point import Point

__all__ = ["KMeansResult", "kmeans", "KMeansAttack"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted centroids and assignments, clusters ordered by size."""

    centroids: np.ndarray  # (k, 2), sorted by descending cluster size
    sizes: np.ndarray  # (k,)
    labels: np.ndarray  # (n,) indices into the sorted centroids
    inertia: float
    iterations: int


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(points)
    centroids = np.empty((k, 2))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    d2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[j:] = points[int(rng.integers(n))]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[j] = points[choice]
        d2 = np.minimum(d2, ((points - centroids[j]) ** 2).sum(axis=1))
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 100,
    tol: float = 1e-4,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise ValueError(f"need at least k={k} points, got {len(points)}")
    if rng is None:
        rng = np.random.default_rng(0)

    centroids = _kmeans_pp_init(points, k, rng)
    labels = np.zeros(len(points), dtype=int)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
        labels = d2.argmin(axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = points[labels == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                new_centroids[j] = points[d2.min(axis=1).argmax()]
        shift = np.hypot(*(new_centroids - centroids).T).max()
        centroids = new_centroids
        if shift < tol:
            break

    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(len(points)), labels].sum())
    sizes = np.bincount(labels, minlength=k)
    order = np.argsort(-sizes, kind="stable")
    remap = np.empty(k, dtype=int)
    remap[order] = np.arange(k)
    return KMeansResult(
        centroids=centroids[order],
        sizes=sizes[order],
        labels=remap[labels],
        inertia=inertia,
        iterations=iterations,
    )


class KMeansAttack:
    """Top-n location inference by k-means over obfuscated check-ins.

    ``k`` is the number of clusters the attacker assumes; the inferred
    top-i location is the centroid of the i-th largest cluster.
    """

    def __init__(self, k: int = 8, rng: Optional[np.random.Generator] = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def infer_top_locations(self, observations: np.ndarray, n: int) -> List[Point]:
        """The n largest-cluster centroids (fewer if data is scarce)."""
        observations = np.asarray(observations, dtype=float)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if len(observations) == 0:
            return []
        k = min(self.k, len(observations))
        result = kmeans(observations, k, rng=self._rng)
        return [
            Point(float(x), float(y)) for x, y in result.centroids[:n]
        ]

    def infer_top1(self, observations: np.ndarray) -> Optional[Point]:
        """The largest cluster's centroid (None on empty input)."""
        tops = self.infer_top_locations(observations, 1)
        return tops[0] if tops else None
