"""The top-n location de-obfuscation attack (paper Algorithm 1).

Given a user's stream of *obfuscated* check-ins, the attack repeatedly:

1. clusters the remaining check-ins by connectivity at threshold ``theta``;
2. takes the largest cluster;
3. refines it with the TRIMMING procedure at radius ``r_alpha``;
4. reports the refined centroid as the next inferred top location; and
5. removes the cluster's members from the pool.

``theta`` and ``r_alpha`` are derived from the attacked mechanism's noise
distribution: ``r_alpha`` is the noise-radius tail quantile at the paper's
confidence ``alpha = 0.05`` (Eq. 4), and ``theta`` defaults to the median
noise radius, which keeps perturbations of one true location mutually
connected once a few hundred observations have accumulated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.attack.clustering import largest_component_indices
from repro.attack.trimming import trim_cluster_xy
from repro.core.attacker import AttackerBase
from repro.core.mechanism import LPPM
from repro.geo.point import Point
from repro.profiles.checkin import CheckIn, checkins_to_array

__all__ = ["DeobfuscationAttack", "InferredLocation", "attack_params_for"]

#: The paper's trimming confidence level (it uses r_0.05).
DEFAULT_ALPHA = 0.05


@dataclass(frozen=True)
class InferredLocation:
    """One recovered top location with supporting-evidence statistics."""

    rank: int
    location: Point
    support: int
    trim_iterations: int


@dataclass(frozen=True)
class AttackParameters:
    """The attack's two tunables, both in metres."""

    theta: float
    r_alpha: float

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ValueError(f"theta must be positive, got {self.theta}")
        if self.r_alpha <= 0:
            raise ValueError(f"r_alpha must be positive, got {self.r_alpha}")


def attack_params_for(
    mechanism: LPPM, alpha: float = DEFAULT_ALPHA
) -> AttackParameters:
    """Derive (theta, r_alpha) from the attacked mechanism's noise tails.

    ``r_alpha`` is the quantile the paper defines in Eq. 4; ``theta`` is
    the median noise radius, a scale at which observations of the same
    location are dense enough to connect.
    """
    return AttackParameters(
        theta=mechanism.noise_tail_radius(0.5),
        r_alpha=mechanism.noise_tail_radius(alpha),
    )


class DeobfuscationAttack(AttackerBase):
    """The longitudinal de-obfuscation attack (Algorithm 1).

    Satisfies the :class:`repro.core.attacker.Attacker` protocol:
    ``estimate_xy``/``estimate`` are the canonical entry points;
    :meth:`infer_top_locations` remains the *detailed* API returning
    :class:`InferredLocation` records with support and trim statistics.
    """

    name = "algorithm1"

    def __init__(self, theta: float, r_alpha: float, use_trimming: bool = True) -> None:
        super().__init__()
        self.params = AttackParameters(theta=theta, r_alpha=r_alpha)
        #: Trimming can be disabled for the ablation study; the attack then
        #: reports raw largest-cluster centroids.
        self.use_trimming = use_trimming

    @classmethod
    def against(
        cls, mechanism: LPPM, alpha: float = DEFAULT_ALPHA, use_trimming: bool = True
    ) -> "DeobfuscationAttack":
        """Build an attack tuned to a specific mechanism's noise scale."""
        params = attack_params_for(mechanism, alpha)
        return cls(theta=params.theta, r_alpha=params.r_alpha, use_trimming=use_trimming)

    def infer_top_locations(
        self, observations: "np.ndarray | Sequence[CheckIn]", n: int
    ) -> List[InferredLocation]:
        """Recover up to ``n`` top locations from obfuscated observations.

        ``observations`` is either an ``(m, 2)`` coordinate array or a
        sequence of check-ins.  Fewer than ``n`` results are returned when
        the pool is exhausted first.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        coords = self._as_coords(observations)
        return list(self._infer(coords, n))

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """Canonical batch path: the locations only, in support order."""
        coords = self._check_request(coords, n)
        return [r.location for r in self._infer(coords, n)]

    def infer_top1(self, observations: "np.ndarray | Sequence[CheckIn]") -> Optional[Point]:
        """Deprecated: use ``estimate_xy(coords, 1)`` (Attacker protocol).

        One-release shim for the pre-protocol duck-typed surface; also
        still accepts check-in sequences, which the canonical path does
        not.
        """
        warnings.warn(
            "DeobfuscationAttack.infer_top1 is deprecated; use "
            "estimate_xy(coords, 1) from the Attacker protocol",
            DeprecationWarning,
            stacklevel=2,
        )
        results = self.infer_top_locations(observations, 1)
        return results[0].location if results else None

    def _as_coords(self, observations) -> np.ndarray:
        if isinstance(observations, np.ndarray):
            coords = np.asarray(observations, dtype=float)
            if coords.ndim != 2 or coords.shape[1] != 2:
                raise ValueError(f"expected (m, 2) array, got {coords.shape}")
            return coords
        return checkins_to_array(observations)

    def _infer(self, coords: np.ndarray, n: int) -> Iterator[InferredLocation]:
        # Columnar inner loop: the winning cluster travels as an index
        # array and the trim fixed point as a boolean mask — no Cluster or
        # TrimResult objects for work that is discarded every iteration.
        available = np.ones(len(coords), dtype=bool)
        for rank in range(1, n + 1):
            active_idx = np.flatnonzero(available)
            if len(active_idx) == 0:
                return
            active_coords = coords[active_idx]
            seed_local = largest_component_indices(active_coords, self.params.theta)
            if len(seed_local) == 0:
                return
            seed_global = active_idx[seed_local]
            if self.use_trimming:
                member_mask, (cx, cy), iterations, _ = trim_cluster_xy(
                    coords, seed_global, self.params.r_alpha, available=available
                )
                support = int(member_mask.sum())
            else:
                member_mask = np.zeros(len(coords), dtype=bool)
                member_mask[seed_global] = True
                cx, cy = coords[seed_global].mean(axis=0)
                cx, cy = float(cx), float(cy)
                support = len(seed_global)
                iterations = 0
            yield InferredLocation(
                rank=rank,
                location=Point(cx, cy),
                support=support,
                trim_iterations=iterations,
            )
            available &= ~member_mask
