"""The longitudinal location exposure attack and its evaluation metrics."""

from repro.attack.clustering import Cluster, connectivity_clusters, largest_cluster
from repro.attack.deobfuscation import (
    DEFAULT_ALPHA,
    DeobfuscationAttack,
    InferredLocation,
    attack_params_for,
)
from repro.attack.estimator import (
    MAPAttack,
    MAPEstimate,
    gaussian_log_likelihood,
    laplace_log_likelihood,
    map_estimate,
)
from repro.attack.profiling import (
    EntropyObservation,
    ProfilingAttack,
    bucket_mean_entropy,
    entropy_vs_checkins,
    fraction_below_entropy,
)
from repro.attack.success import (
    RankOutcome,
    UserAttackOutcome,
    error_quantiles,
    evaluate_user,
    success_rate,
)
from repro.attack.trimming import TrimResult, trim_cluster

__all__ = [
    "Cluster",
    "connectivity_clusters",
    "largest_cluster",
    "DeobfuscationAttack",
    "InferredLocation",
    "attack_params_for",
    "DEFAULT_ALPHA",
    "TrimResult",
    "trim_cluster",
    "ProfilingAttack",
    "EntropyObservation",
    "entropy_vs_checkins",
    "fraction_below_entropy",
    "bucket_mean_entropy",
    "MAPAttack",
    "MAPEstimate",
    "map_estimate",
    "gaussian_log_likelihood",
    "laplace_log_likelihood",
    "RankOutcome",
    "UserAttackOutcome",
    "evaluate_user",
    "success_rate",
    "error_quantiles",
]

from repro.attack.kmeans import KMeansAttack, KMeansResult, kmeans
from repro.attack.temporal import NIGHT, OFFICE_HOURS, HourWindow, TemporalAttack

__all__ += [
    "KMeansAttack",
    "KMeansResult",
    "kmeans",
    "TemporalAttack",
    "HourWindow",
    "NIGHT",
    "OFFICE_HOURS",
]

from repro.attack.linking import DeviceLink, DeviceLinker, split_trace_across_devices

__all__ += ["DeviceLinker", "DeviceLink", "split_trace_across_devices"]
