"""Attack-success metrics (paper Section VII-A, metric 1).

An attack on one user *succeeds at rank k* when the k-th inferred top
location lies within a threshold distance of the user's true k-th top
location.  The population-level attack success rate is the fraction of
users on which the attack succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geo.point import Point

__all__ = ["RankOutcome", "UserAttackOutcome", "evaluate_user", "success_rate"]


@dataclass(frozen=True)
class RankOutcome:
    """Distance between the inferred and true location at one rank."""

    rank: int
    inferred: Optional[Point]
    true: Point
    error_m: float

    def within(self, threshold_m: float) -> bool:
        """Did the inference land within ``threshold_m`` of the truth?"""
        return self.error_m <= threshold_m


@dataclass(frozen=True)
class UserAttackOutcome:
    """Per-user outcomes for every evaluated rank."""

    outcomes: tuple

    def at_rank(self, rank: int) -> Optional[RankOutcome]:
        """The outcome at a given rank, if that rank was evaluated."""
        for o in self.outcomes:
            if o.rank == rank:
                return o
        return None

    def success(self, rank: int, threshold_m: float) -> bool:
        """Did the attack land within the threshold at this rank?"""
        outcome = self.at_rank(rank)
        return outcome is not None and outcome.within(threshold_m)


def evaluate_user(
    inferred: Sequence[Optional[Point]], true_tops: Sequence[Point]
) -> UserAttackOutcome:
    """Match inferred top locations to true top locations rank by rank.

    ``inferred[i]`` is compared against ``true_tops[i]``; a missing
    inference (``None`` or a shorter list) scores an infinite error so it
    can never count as a success.
    """
    outcomes: List[RankOutcome] = []
    for i, truth in enumerate(true_tops):
        guess = inferred[i] if i < len(inferred) else None
        error = guess.distance_to(truth) if guess is not None else float("inf")
        outcomes.append(
            RankOutcome(rank=i + 1, inferred=guess, true=truth, error_m=error)
        )
    return UserAttackOutcome(outcomes=tuple(outcomes))


def success_rate(
    outcomes: Sequence[UserAttackOutcome], rank: int, threshold_m: float
) -> float:
    """Fraction of users attacked successfully at ``rank`` within ``threshold_m``.

    Users whose true profile has no location at the requested rank are
    excluded from the denominator (you cannot fail to recover a second
    home the user does not have).
    """
    eligible = [o for o in outcomes if o.at_rank(rank) is not None]
    if not eligible:
        return 0.0
    hits = sum(1 for o in eligible if o.success(rank, threshold_m))
    return hits / len(eligible)


def error_quantiles(
    outcomes: Sequence[UserAttackOutcome], rank: int, quantiles: Sequence[float]
) -> Dict[float, float]:
    """Quantiles of the inference error at a given rank, in metres."""
    errors = [
        o.at_rank(rank).error_m
        for o in outcomes
        if o.at_rank(rank) is not None and np.isfinite(o.at_rank(rank).error_m)
    ]
    if not errors:
        return {q: float("nan") for q in quantiles}
    arr = np.asarray(errors)
    return {q: float(np.quantile(arr, q)) for q in quantiles}
