"""The location profiling attack (paper Section III-B-1).

Given *raw* (unobfuscated) check-ins — what an attacker sees in today's
LBA ecosystem before any LPPM is deployed — the profiling attack rebuilds
the user's location profile by connectivity clustering, computes the top
locations, and measures the location entropy that Figure 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.profiles.checkin import CheckIn
from repro.profiles.profile import (
    DEFAULT_CONNECT_RADIUS_M,
    LocationProfile,
)

__all__ = [
    "ProfilingAttack",
    "EntropyObservation",
    "entropy_vs_checkins",
    "fraction_below_entropy",
]


class ProfilingAttack:
    """Rebuild a victim's location profile from observed check-ins."""

    def __init__(self, connect_radius: float = DEFAULT_CONNECT_RADIUS_M) -> None:
        if connect_radius <= 0:
            raise ValueError(f"connect radius must be positive, got {connect_radius}")
        self.connect_radius = connect_radius

    def build_profile(self, checkins: Sequence[CheckIn]) -> LocationProfile:
        """The attacker's reconstruction of the location profile (Eq. 2)."""
        return LocationProfile.from_checkins(checkins, self.connect_radius)

    def top_locations(self, checkins: Sequence[CheckIn], k: int) -> List:
        """The attacker's inferred top-k locations."""
        return [e.location for e in self.build_profile(checkins).top(k)]

    def entropy(self, checkins: Sequence[CheckIn]) -> float:
        """Location entropy of the reconstructed profile (Eq. 3)."""
        return self.build_profile(checkins).entropy()


@dataclass(frozen=True)
class EntropyObservation:
    """One user's (check-in count, entropy) pair for Figure 3."""

    checkins: int
    entropy: float


def entropy_vs_checkins(
    traces: Dict[str, Sequence[CheckIn]],
    connect_radius: float = DEFAULT_CONNECT_RADIUS_M,
) -> List[EntropyObservation]:
    """Per-user entropy observations over a population of traces.

    This is the scatter behind Figure 3: users with more check-ins have
    lower entropy because routine visits dominate their profiles.
    """
    attack = ProfilingAttack(connect_radius)
    out = []
    for trace in traces.values():
        out.append(
            EntropyObservation(checkins=len(trace), entropy=attack.entropy(trace))
        )
    return out


def fraction_below_entropy(
    observations: Sequence[EntropyObservation], threshold: float
) -> float:
    """Share of users whose entropy is below ``threshold``.

    The paper reports 88.8% of its 37,262 users below entropy 2.
    """
    if not observations:
        return 0.0
    below = sum(1 for o in observations if o.entropy < threshold)
    return below / len(observations)


def bucket_mean_entropy(
    observations: Sequence[EntropyObservation],
    bucket_edges: Sequence[int],
) -> List[Tuple[str, int, float]]:
    """Average entropy per check-in-count bucket (Figure 3's trend line).

    Returns ``(bucket_label, user_count, mean_entropy)`` rows for each
    half-open bucket ``[edge_i, edge_{i+1})`` plus a final overflow bucket.
    """
    edges = list(bucket_edges)
    if sorted(edges) != edges or len(edges) < 2:
        raise ValueError("bucket edges must be sorted and have at least two values")
    rows: List[Tuple[str, int, float]] = []
    bounds = list(zip(edges[:-1], edges[1:])) + [(edges[-1], float("inf"))]
    for lo, hi in bounds:
        members = [o.entropy for o in observations if lo <= o.checkins < hi]
        label = f"[{lo}, {hi})" if hi != float("inf") else f">={lo}"
        mean = float(np.mean(members)) if members else float("nan")
        rows.append((label, len(members), mean))
    return rows
