"""Connectivity-based clustering (the attack's first stage).

Two check-ins are *connected* when their Euclidean distance is within a
threshold ``theta``; clusters are the transitive closure of connectivity
(Algorithm 1, line 2).  The heavy lifting is done by the uniform-grid
spatial index, so clustering a year of check-ins stays near-linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geo.index import component_labels
from repro.geo.index import connected_components as _connected_components
from repro.geo.point import Point

__all__ = [
    "Cluster",
    "connectivity_clusters",
    "largest_cluster",
    "largest_component_indices",
]


@dataclass(frozen=True)
class Cluster:
    """A cluster of check-in indices with its centroid cached."""

    indices: tuple
    centroid: Point

    @property
    def size(self) -> int:
        """Number of observations in the cluster."""
        return len(self.indices)


def _centroid_of(coords: np.ndarray) -> Point:
    cx, cy = coords.mean(axis=0)
    return Point(float(cx), float(cy))


def connectivity_clusters(coords: np.ndarray, theta: float) -> List[Cluster]:
    """Cluster an ``(n, 2)`` coordinate array at connectivity threshold ``theta``.

    Returns clusters sorted by decreasing size (ties broken by smallest
    member index), matching the attack's "largest cluster first" use.
    """
    coords = np.asarray(coords, dtype=float)
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if coords.size == 0:
        return []
    clusters = []
    for component in _connected_components(coords, theta):
        clusters.append(
            Cluster(indices=tuple(component), centroid=_centroid_of(coords[component]))
        )
    return clusters


def largest_component_indices(coords: np.ndarray, theta: float) -> np.ndarray:
    """Member indices of the largest connectivity cluster, ascending.

    The columnar fast path of Algorithm 1's line 5: the attack only needs
    the winning cluster's members, so this skips materialising a
    :class:`Cluster` object (indices tuple + centroid) per component.
    Ties follow the :func:`connectivity_clusters` ordering — label 0 is
    the largest component, ties broken by smallest member index — so the
    returned indices equal ``connectivity_clusters(...)[0].indices``.
    Empty input yields an empty array.
    """
    coords = np.asarray(coords, dtype=float)
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if coords.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(component_labels(coords, theta) == 0)


def largest_cluster(coords: np.ndarray, theta: float) -> Cluster:
    """The single largest connectivity cluster (Algorithm 1, line 5)."""
    clusters = connectivity_clusters(coords, theta)
    if not clusters:
        raise ValueError("cannot take the largest cluster of an empty point set")
    return clusters[0]
