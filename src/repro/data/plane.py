"""One frozen config for the data-plane knobs every driver re-plumbs.

``--workers``, ``--cache``, ``--tier``, ``--mmap``, and ``--no-shm``
used to be declared, validated, and threaded separately by the
experiment runner, the bench harness, and the top-level CLI — same
semantics, four spellings.  :class:`DataPlaneConfig` is the one place
those knobs live: :func:`add_data_plane_arguments` declares the flags on
any parser, :meth:`DataPlaneConfig.from_args` builds the validated
config from the parsed namespace, and the config knows how to
materialise its side effects (:meth:`stage_cache`, :meth:`apply`).  A
new subcommand — ``repro fleet`` was the first — inherits the whole
data plane by calling two functions.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.data.cache import StageCache
from repro.data.tiers import TIERS

__all__ = ["DataPlaneConfig", "add_data_plane_arguments"]


def add_data_plane_arguments(
    parser: argparse.ArgumentParser,
    default_workers: Optional[int] = None,
    default_cache: bool = False,
) -> None:
    """Declare the shared data-plane flags on ``parser``.

    Defaults are caller-tunable (bench historically defaults to one
    worker and always caches) but the flag spellings and help text are
    fixed here, so every subcommand documents the data plane the same
    way.
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers,
        metavar="N",
        help="process-pool size where the subcommand parallelizes "
        "(default: all cores; results are identical for any N)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=default_cache,
        help="reuse content-addressed stage artifacts under "
        "benchmarks/results/cache (rows are bit-identical either way)",
    )
    parser.add_argument(
        "--tier",
        choices=sorted(TIERS),
        default=None,
        help="named dataset tier for the tier-aware workloads "
        "(overrides the scale's population settings)",
    )
    parser.add_argument(
        "--mmap",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="serve the tier out of core (memmap-backed columns shipped "
        "to workers by path+offset); needs --tier and --cache",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="ship worker payloads by pickle instead of shared memory "
        "(results are identical; debugging aid)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="stage-cache directory (default: benchmarks/results/cache)",
    )


@dataclass(frozen=True)
class DataPlaneConfig:
    """The validated data-plane knobs, independent of any parser.

    Frozen so a config handed to a driver cannot be mutated mid-run;
    invalid combinations fail at construction with the same messages
    the CLIs have always printed.
    """

    workers: Optional[int] = None
    cache: bool = False
    tier: Optional[str] = None
    mmap: bool = False
    shm: bool = True
    cache_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"--workers must be >= 0, got {self.workers}")
        if self.tier is not None and self.tier not in TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; choose from {sorted(TIERS)}"
            )
        if self.mmap:
            if self.tier is None:
                raise ValueError(
                    "--mmap needs a --tier (only tiers are mmap-served)"
                )
            if not self.cache:
                raise ValueError(
                    "--mmap needs --cache (bundles live beside the stage cache)"
                )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "DataPlaneConfig":
        """Build from a namespace parsed with the shared flags.

        Tolerates parsers that declared only a subset (``getattr`` with
        the field defaults), so legacy subcommands can adopt the config
        without re-declaring every flag at once.
        """
        return cls(
            workers=getattr(args, "workers", None),
            cache=bool(getattr(args, "cache", False)),
            tier=getattr(args, "tier", None),
            mmap=bool(getattr(args, "mmap", False)),
            shm=not getattr(args, "no_shm", False),
            cache_dir=getattr(args, "cache_dir", None),
        )

    def stage_cache(self) -> Optional[StageCache]:
        """The stage cache this config asks for, or ``None``."""
        if not self.cache:
            return None
        return StageCache(self.cache_dir) if self.cache_dir else StageCache()

    def apply(self) -> None:
        """Apply process-global effects (the shm transport toggle)."""
        from repro.parallel import set_shared_memory_enabled

        set_shared_memory_enabled(self.shm)
