"""Content-addressed cache for expensive, deterministic pipeline stages.

Every cacheable stage in the experiment pipelines (population generation,
coordinate pools, obfuscation tables, per-row attack sweeps) is a pure
function of its configuration: the generators consume a seeded
``numpy.random.Generator`` in a fixed call order, so the same config
always produces bit-identical arrays.  That makes content-addressed
caching sound — the cache key is a canonical hash of the stage name, its
parameters and a per-stage code version, and a hit returns exactly the
arrays a fresh run would have produced.

Artifacts are ``.npz`` files under ``benchmarks/results/cache/`` (override
with the ``REPRO_CACHE_DIR`` environment variable).  Bump the stage's
version constant whenever its code changes results; old entries simply
stop being addressed and can be dropped with :meth:`StageCache.clear` or
``repro experiments <id> --no-cache``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = ["DEFAULT_CACHE_DIR", "StageCache", "stage_key"]


def _record_cache_event(event: str, nbytes: int = 0) -> None:
    """Meter one cache interaction (hit/miss/store) when obs is on."""
    if not _obs_enabled():
        return
    registry = _obs_registry()
    registry.counter(f"cache.{event}").inc()
    if event == "hits":
        registry.counter("cache.read_bytes").inc(nbytes)
    elif event == "stores":
        registry.counter("cache.written_bytes").inc(nbytes)


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro/data/cache.py -> repo root is three levels above the package.
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "cache"


#: Where artifacts land unless a directory is passed explicitly.
DEFAULT_CACHE_DIR = _default_cache_dir()


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-compatible primitives.

    Dataclasses become sorted dicts, tuples become lists, numpy scalars
    become Python scalars; floats round-trip through ``repr`` inside JSON
    so equal values always hash equally.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"stage_key params must be JSON-canonicalisable, got {type(value).__name__}"
    )


def stage_key(stage: str, params: Any, version: str) -> str:
    """Content address for one stage run: ``<stage>-<sha256 prefix>``.

    ``params`` may be a dataclass, mapping, or nested tuples/lists of
    scalars; ``version`` is the stage's code-version constant, bumped when
    the stage's output for the same params changes.
    """
    blob = json.dumps(
        {"stage": stage, "version": version, "params": _canonical(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return f"{stage}-{digest[:32]}"


class StageCache:
    """Load/store named numpy array bundles keyed by content address.

    A disabled cache (``StageCache(enabled=False)``) never hits and never
    writes, which lets callers thread one object through unconditionally.
    Corrupt or truncated artifacts are treated as misses and removed.
    """

    def __init__(
        self, directory: Optional[Path] = None, *, enabled: bool = True
    ) -> None:
        self.directory = Path(directory) if directory is not None else DEFAULT_CACHE_DIR
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def disabled(cls) -> "StageCache":
        """A cache that always misses and never writes."""
        return cls(enabled=False)

    def path_for(self, key: str) -> Path:
        """The artifact path a key addresses (may not exist)."""
        return self.directory / f"{key}.npz"

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored arrays for ``key``, or ``None`` on a miss."""
        if not self.enabled:
            self.misses += 1
            _record_cache_event("misses")
            return None
        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            _record_cache_event("misses")
            return None
        try:
            nbytes = path.stat().st_size
            with np.load(path) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except (OSError, ValueError, EOFError, KeyError):
            # Truncated/corrupt artifact: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            _record_cache_event("misses")
            return None
        self.hits += 1
        _record_cache_event("hits", nbytes)
        return arrays

    def store(self, key: str, arrays: Mapping[str, np.ndarray]) -> Optional[Path]:
        """Persist an array bundle atomically; returns the path (None if disabled)."""
        if not self.enabled:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".npz.tmp", dir=str(self.directory)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **dict(arrays))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        _record_cache_event("stores", path.stat().st_size)
        return path

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], Mapping[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Cached arrays for ``key``, computing and storing on a miss."""
        cached = self.load(key)
        if cached is not None:
            return cached
        arrays = dict(compute())
        self.store(key, arrays)
        return arrays

    def clear(self) -> int:
        """Remove every artifact in the cache directory; returns the count.

        Also clears the sibling ``mmap/`` bundle store — a "cold" bench
        run must regenerate the out-of-core tiers too, not silently warm
        itself from their ``.npy`` bundles.
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.npz"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        from repro.data.mmapstore import MmapStore

        removed += MmapStore.for_cache_dir(self.directory).clear()
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters for reports and tests."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"StageCache({self.directory}, {state}, {self.stats()})"
