"""Out-of-core array bundles: ``.npy`` files served through ``np.memmap``.

The :class:`~repro.data.cache.StageCache` stores array bundles as ``.npz``
zip archives, which must be decompressed **into the heap** on every load —
fine at the city tier, fatal at a million users where one population is
hundreds of megabytes and every pool dispatch used to copy it again into
shared memory.  :class:`MmapStore` is the out-of-core sibling: each bundle
is a directory of plain ``.npy`` files plus a JSON manifest, written
atomically and opened with ``np.load(..., mmap_mode="r")`` so loads map
pages lazily instead of materialising bytes.  The arrays a load returns
are byte-identical to what was stored (the ``.npy`` payload *is* the
array's memory), read-only, and backed by the file — the OS pages them
in on first touch and may evict them under pressure, which is what keeps
peak RSS bounded for populations that do not fit the worker fleet's
budget.

Memmap-backed arrays also change the worker-transport story: because the
bytes already live in a file, :mod:`repro.parallel.shared` ships them to
pool workers as ``MmapArrayRef`` path+offset descriptors instead of
copying them into shared-memory segments — attach is an ``mmap`` call,
zero bytes move.

Corruption discipline mirrors the ``.npz`` cache: a bundle whose manifest
is unreadable, whose files are missing, or whose ``.npy`` payload is
truncated is dropped and reported as a miss, so a crashed writer degrades
to regeneration rather than a crash at read time.
"""

from __future__ import annotations

import json
import mmap as _mmap_module
import os
import shutil
import tempfile
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, Mapping, Optional, Tuple, Type

import numpy as np

from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = [
    "MANIFEST_NAME",
    "MMAP_SUBDIR",
    "BundleWriter",
    "MmapStore",
    "release_pages",
]

#: Per-bundle metadata file: array names, dtypes, shapes, byte sizes.
MANIFEST_NAME = "manifest.json"

#: Subdirectory of a stage-cache directory where bundles live.
MMAP_SUBDIR = "mmap"


def _record_event(event: str, nbytes: int = 0) -> None:
    """Meter one store interaction (hit/miss/store) when obs is on."""
    if not _obs_enabled():
        return
    registry = _obs_registry()
    registry.counter(f"mmapstore.{event}").inc()
    if event == "hits":
        registry.counter("mmapstore.mapped_bytes").inc(nbytes)
    elif event == "stores":
        registry.counter("mmapstore.written_bytes").inc(nbytes)


def release_pages(*arrays: np.ndarray) -> None:
    """Advise the kernel to drop resident pages behind memmap-backed arrays.

    This is what keeps peak RSS flat for chunk-streamed walks over a
    bundle much larger than memory: after a window is processed, its
    pages are surrendered (``MADV_DONTNEED``), and the next window
    faults its own pages in from the page cache.  Safe on shared
    file mappings — dropped pages repopulate from the file — and a
    silent no-op for heap arrays, read-only platforms, or interpreters
    without ``mmap.madvise``.
    """
    for arr in arrays:
        base: Any = arr
        while base is not None and not isinstance(base, np.memmap):
            base = getattr(base, "base", None)
        if base is None:
            continue
        raw = getattr(base, "_mmap", None)
        if raw is None:
            continue
        try:
            raw.madvise(_mmap_module.MADV_DONTNEED)
        except (AttributeError, ValueError, OSError):  # pragma: no cover
            pass


def _open_npy(path: Path, dtype: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Open one ``.npy`` payload read-only, memory-mapped when possible.

    Zero-size arrays cannot be mmapped (there are no pages to map), so
    they load eagerly — the cost is zero bytes by construction.  A
    header/dtype/shape mismatch with the manifest, or a file shorter
    than the header promises, raises ``ValueError`` for the caller's
    corruption handling.
    """
    if int(np.prod(shape)) == 0:
        arr = np.load(path)
    else:
        arr = np.load(path, mmap_mode="r")
    if arr.dtype.str != dtype or tuple(arr.shape) != tuple(shape):
        raise ValueError(
            f"{path}: payload is {arr.dtype.str}{arr.shape}, "
            f"manifest says {dtype}{tuple(shape)}"
        )
    arr.flags.writeable = False
    return arr


class BundleWriter:
    """Preallocated writable bundle, committed atomically.

    ``writer.arrays[name]`` are ``w+`` memmaps created in a temporary
    sibling directory; filling them streams straight to disk, so the
    writer's heap footprint is independent of the bundle size.
    :meth:`commit` flushes, writes the manifest, and renames the
    directory into place — readers only ever see complete bundles.
    Use as a context manager: an exception aborts and removes the
    temporary directory.
    """

    def __init__(
        self, store: "MmapStore", key: str, specs: Mapping[str, Tuple[Tuple[int, ...], str]]
    ) -> None:
        self._store = store
        self._key = key
        self._final = store.path_for(key)
        store.directory.mkdir(parents=True, exist_ok=True)
        self._tmp = Path(
            tempfile.mkdtemp(prefix=f".{key}.", suffix=".tmp", dir=str(store.directory))
        )
        self.arrays: Dict[str, np.ndarray] = {}
        self._manifest: Dict[str, Dict[str, object]] = {}
        for name, (shape, dtype) in specs.items():
            path = self._tmp / f"{name}.npy"
            if int(np.prod(shape)) == 0:
                empty = np.empty(shape, dtype=np.dtype(dtype))
                np.save(path, empty)
                self.arrays[name] = empty
            else:
                self.arrays[name] = np.lib.format.open_memmap(
                    str(path), mode="w+", dtype=np.dtype(dtype), shape=tuple(shape)
                )
            self._manifest[name] = {
                "dtype": np.dtype(dtype).str,
                "shape": list(shape),
                "nbytes": int(np.dtype(dtype).itemsize * int(np.prod(shape))),
            }

    def __enter__(self) -> "BundleWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def commit(self) -> Path:
        """Flush every array, write the manifest, and publish the bundle."""
        total = 0
        for name, arr in self.arrays.items():
            if isinstance(arr, np.memmap):
                arr.flush()
            total += int(arr.nbytes)
        (self._tmp / MANIFEST_NAME).write_text(
            json.dumps({"version": 1, "arrays": self._manifest}, sort_keys=True)
        )
        # Release the writable mappings before the rename: readers attach
        # their own read-only maps to the published path.
        self.arrays = {}
        try:
            os.replace(self._tmp, self._final)
        except OSError:
            # A concurrent writer published first; its bundle is
            # byte-identical (content-addressed key), keep it.
            shutil.rmtree(self._tmp, ignore_errors=True)
        self._store.stores += 1
        _record_event("stores", total)
        return self._final

    def abort(self) -> None:
        """Discard the temporary directory without publishing."""
        self.arrays = {}
        shutil.rmtree(self._tmp, ignore_errors=True)


class MmapStore:
    """Content-addressed ``.npy`` bundle store with memory-mapped loads.

    The API mirrors :class:`~repro.data.cache.StageCache` (``load`` /
    ``store`` / ``clear`` / hit-miss stats) so tier builders can thread
    either store; the difference is the return contract — ``load`` hands
    back **read-only memmap-backed arrays** whose pages materialise on
    first touch, not heap copies.
    """

    def __init__(self, directory: Path, *, enabled: bool = True) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def for_cache_dir(cls, cache_dir: Path, *, enabled: bool = True) -> "MmapStore":
        """The store rooted inside a stage-cache directory (``<dir>/mmap``)."""
        return cls(Path(cache_dir) / MMAP_SUBDIR, enabled=enabled)

    def path_for(self, key: str) -> Path:
        """The bundle directory a key addresses (may not exist)."""
        return self.directory / key

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored arrays for ``key`` as read-only memmaps, or ``None``.

        Any inconsistency — unreadable manifest, missing payload file,
        truncated or reshaped ``.npy`` — removes the bundle and reports a
        miss, exactly like the ``.npz`` cache's corruption path.
        """
        if not self.enabled:
            self.misses += 1
            _record_event("misses")
            return None
        bundle = self.path_for(key)
        manifest_path = bundle / MANIFEST_NAME
        if not manifest_path.is_file():
            self.misses += 1
            _record_event("misses")
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
            entries = manifest["arrays"]
            arrays: Dict[str, np.ndarray] = {}
            total = 0
            for name, entry in entries.items():
                arrays[name] = _open_npy(
                    bundle / f"{name}.npy",
                    str(entry["dtype"]),
                    tuple(int(d) for d in entry["shape"]),
                )
                total += int(entry["nbytes"])
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            # Truncated/corrupt bundle: drop it and let the caller
            # regenerate, same contract as a corrupt .npz artifact.
            shutil.rmtree(bundle, ignore_errors=True)
            self.misses += 1
            _record_event("misses")
            return None
        self.hits += 1
        _record_event("hits", total)
        return arrays

    def store(self, key: str, arrays: Mapping[str, np.ndarray]) -> Optional[Path]:
        """Persist a bundle atomically; returns its path (None if disabled)."""
        if not self.enabled:
            return None
        specs = {
            name: (tuple(arr.shape), arr.dtype.str) for name, arr in arrays.items()
        }
        with BundleWriter(self, key, specs) as writer:
            for name, arr in arrays.items():
                if writer.arrays[name].size:
                    writer.arrays[name][...] = arr
        return self.path_for(key)

    def writer(
        self, key: str, specs: Mapping[str, Tuple[Tuple[int, ...], str]]
    ) -> BundleWriter:
        """A streaming :class:`BundleWriter` for ``key`` (shapes known upfront)."""
        return BundleWriter(self, key, specs)

    def clear(self) -> int:
        """Remove every bundle in the store; returns the count removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for bundle in sorted(self.directory.iterdir()):
            if bundle.is_dir():
                shutil.rmtree(bundle, ignore_errors=True)
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters for reports and tests."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"MmapStore({self.directory}, {state}, {self.stats()})"
