"""Struct-of-arrays containers for check-in populations (CSR layout).

``CheckInColumns`` stores a whole population's check-ins as four flat
arrays — ``xs``/``ys`` (float64 planar metres), ``timestamps`` (float64
unix seconds) and ``offsets`` (int64 CSR user offsets) — so that per-user
work reads contiguous slices instead of materialising per-user
``CheckIn`` object lists.  ``PopulationColumns`` adds the ground-truth
top locations in the same layout, which is everything the attack
experiments need from a :class:`~repro.datagen.population.SyntheticUser`.

Conversions are lossless and order-preserving: ``from_traces`` followed
by ``to_traces`` reproduces the exact same coordinates and timestamps the
object path carried, which is what keeps columnar pipelines bit-identical
to the original per-object pipelines.

The flat arrays are also the unit of transport for the shared-memory
fan-out in :mod:`repro.parallel.shared`: a population ships to workers as
a handful of named segments instead of a pickle of millions of objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.geo.point import Point
from repro.profiles.checkin import CheckIn

__all__ = ["CheckInColumns", "PopulationColumns", "chunk_csr"]


def chunk_csr(
    xs: np.ndarray, ys: np.ndarray, offsets: np.ndarray, lo: int, hi: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Rebase users ``[lo, hi)`` of a CSR bundle to local offsets.

    Returns array views (no copies) over the users' rows plus a rebased
    offsets array — the unit the population kernels consume when a chunk
    worker owns a contiguous user range of a larger shard.
    """
    start = offsets[lo]
    return xs[start:offsets[hi]], ys[start:offsets[hi]], offsets[lo:hi + 1] - start


def _as_float64(arr: "np.ndarray | Sequence[float]", name: str) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=np.float64)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    return out


def _as_offsets(arr: "np.ndarray | Sequence[int]", n_checkins: int) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out.ndim != 1 or len(out) < 1:
        raise ValueError("offsets must be a one-dimensional array of length >= 1")
    if out[0] != 0 or out[-1] != n_checkins:
        raise ValueError(
            f"offsets must run from 0 to {n_checkins}, got [{out[0]}, {out[-1]}]"
        )
    if (np.diff(out) < 0).any():
        raise ValueError("offsets must be non-decreasing")
    return out


@dataclass(frozen=True)
class CheckInColumns:
    """A population of check-ins in CSR struct-of-arrays layout.

    ``xs[offsets[i]:offsets[i+1]]`` (and likewise ``ys``/``timestamps``)
    are user ``i``'s check-ins in their original trace order.
    """

    xs: np.ndarray
    ys: np.ndarray
    timestamps: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "xs", _as_float64(self.xs, "xs"))
        object.__setattr__(self, "ys", _as_float64(self.ys, "ys"))
        object.__setattr__(self, "timestamps", _as_float64(self.timestamps, "timestamps"))
        if not (len(self.xs) == len(self.ys) == len(self.timestamps)):
            raise ValueError("xs, ys and timestamps must have equal lengths")
        object.__setattr__(self, "offsets", _as_offsets(self.offsets, len(self.xs)))

    @property
    def n_users(self) -> int:
        """Number of users (CSR rows)."""
        return len(self.offsets) - 1

    @property
    def n_checkins(self) -> int:
        """Total number of check-ins across all users."""
        return len(self.xs)

    @property
    def nbytes(self) -> int:
        """Total payload size of the four arrays, in bytes."""
        return int(
            self.xs.nbytes + self.ys.nbytes + self.timestamps.nbytes + self.offsets.nbytes
        )

    def user_slice(self, i: int) -> slice:
        """The ``[start, end)`` slice of user ``i``'s rows in the flat arrays."""
        if not 0 <= i < self.n_users:
            raise IndexError(f"user index {i} out of range [0, {self.n_users})")
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    def user_coords(self, i: int) -> np.ndarray:
        """User ``i``'s check-in coordinates as an ``(k, 2)`` float array.

        Identical values (and row order) to ``checkins_to_array(trace)``
        on the object path — the contract the bit-identity tests pin.
        """
        s = self.user_slice(i)
        return np.column_stack((self.xs[s], self.ys[s]))

    def user_timestamps(self, i: int) -> np.ndarray:
        """User ``i``'s timestamps (a read-only view, no copy)."""
        return self.timestamps[self.user_slice(i)]

    def coords(self) -> np.ndarray:
        """All check-in coordinates stacked into one ``(n, 2)`` array."""
        return np.column_stack((self.xs, self.ys))

    def iter_user_coords(self) -> Iterator[np.ndarray]:
        """Yield each user's ``(k, 2)`` coordinate array in user order."""
        for i in range(self.n_users):
            yield self.user_coords(i)

    @classmethod
    def from_traces(cls, traces: Iterable[Sequence[CheckIn]]) -> "CheckInColumns":
        """Pack per-user ``CheckIn`` lists into columns (order preserved)."""
        xs: List[float] = []
        ys: List[float] = []
        ts: List[float] = []
        offsets: List[int] = [0]
        for trace in traces:
            for c in trace:
                xs.append(c.point.x)
                ys.append(c.point.y)
                ts.append(c.timestamp)
            offsets.append(len(xs))
        return cls(
            xs=np.asarray(xs, dtype=np.float64),
            ys=np.asarray(ys, dtype=np.float64),
            timestamps=np.asarray(ts, dtype=np.float64),
            offsets=np.asarray(offsets, dtype=np.int64),
        )

    def to_traces(self) -> List[List[CheckIn]]:
        """Materialise the per-user ``CheckIn`` lists back (exact round-trip)."""
        out: List[List[CheckIn]] = []
        for i in range(self.n_users):
            s = self.user_slice(i)
            out.append(
                [
                    CheckIn(float(t), Point(float(x), float(y)))
                    for x, y, t in zip(self.xs[s], self.ys[s], self.timestamps[s])
                ]
            )
        return out

    def arrays(self) -> Dict[str, np.ndarray]:
        """The raw arrays keyed for ``.npz`` storage."""
        return {
            "xs": self.xs,
            "ys": self.ys,
            "timestamps": self.timestamps,
            "offsets": self.offsets,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "CheckInColumns":
        """Rebuild from :meth:`arrays` output (e.g. a cache hit)."""
        return cls(
            xs=arrays["xs"],
            ys=arrays["ys"],
            timestamps=arrays["timestamps"],
            offsets=arrays["offsets"],
        )

    @classmethod
    def concat(cls, shards: Sequence["CheckInColumns"]) -> "CheckInColumns":
        """Stack user shards back-to-back into one CSR population.

        Offsets are rebased so shard boundaries disappear; user ``i`` of
        shard ``j`` becomes a plain user of the combined columns with its
        rows untouched.  This is the reassembly half of shard-parallel
        tier generation.
        """
        if not shards:
            return cls(
                xs=np.empty(0), ys=np.empty(0), timestamps=np.empty(0),
                offsets=np.zeros(1, dtype=np.int64),
            )
        offsets = [shards[0].offsets]
        base = shards[0].offsets[-1]
        for shard in shards[1:]:
            offsets.append(shard.offsets[1:] + base)
            base = base + shard.offsets[-1]
        return cls(
            xs=np.concatenate([s.xs for s in shards]),
            ys=np.concatenate([s.ys for s in shards]),
            timestamps=np.concatenate([s.timestamps for s in shards]),
            offsets=np.concatenate(offsets),
        )


@dataclass(frozen=True)
class PopulationColumns:
    """A synthetic population in columnar form: check-ins + true top sets.

    ``top_xs[top_offsets[i]:top_offsets[i+1]]`` are user ``i``'s
    ground-truth top locations, most frequent first — the slice the
    attack-success evaluation compares inferred locations against.
    """

    checkins: CheckInColumns
    top_xs: np.ndarray
    top_ys: np.ndarray
    top_offsets: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "top_xs", _as_float64(self.top_xs, "top_xs"))
        object.__setattr__(self, "top_ys", _as_float64(self.top_ys, "top_ys"))
        if len(self.top_xs) != len(self.top_ys):
            raise ValueError("top_xs and top_ys must have equal lengths")
        object.__setattr__(
            self, "top_offsets", _as_offsets(self.top_offsets, len(self.top_xs))
        )
        if len(self.top_offsets) != len(self.checkins.offsets):
            raise ValueError("top_offsets must cover the same users as checkins")

    @property
    def n_users(self) -> int:
        """Number of users in the population."""
        return self.checkins.n_users

    def user_true_tops(self, i: int) -> List[Point]:
        """User ``i``'s ground-truth top locations, most frequent first."""
        if not 0 <= i < self.n_users:
            raise IndexError(f"user index {i} out of range [0, {self.n_users})")
        s = slice(int(self.top_offsets[i]), int(self.top_offsets[i + 1]))
        return [
            Point(float(x), float(y)) for x, y in zip(self.top_xs[s], self.top_ys[s])
        ]

    @classmethod
    def from_users(cls, users: Iterable[object]) -> "PopulationColumns":
        """Pack users (anything with ``.trace`` and ``.true_tops``) into columns."""
        traces: List[Sequence[CheckIn]] = []
        top_xs: List[float] = []
        top_ys: List[float] = []
        top_offsets: List[int] = [0]
        for user in users:
            traces.append(user.trace)  # type: ignore[attr-defined]
            for p in user.true_tops:  # type: ignore[attr-defined]
                top_xs.append(p.x)
                top_ys.append(p.y)
            top_offsets.append(len(top_xs))
        return cls(
            checkins=CheckInColumns.from_traces(traces),
            top_xs=np.asarray(top_xs, dtype=np.float64),
            top_ys=np.asarray(top_ys, dtype=np.float64),
            top_offsets=np.asarray(top_offsets, dtype=np.int64),
        )

    def arrays(self) -> Dict[str, np.ndarray]:
        """The raw arrays keyed for ``.npz`` storage."""
        out = self.checkins.arrays()
        out.update(
            top_xs=self.top_xs, top_ys=self.top_ys, top_offsets=self.top_offsets
        )
        return out

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "PopulationColumns":
        """Rebuild from :meth:`arrays` output (e.g. a cache hit)."""
        return cls(
            checkins=CheckInColumns.from_arrays(arrays),
            top_xs=arrays["top_xs"],
            top_ys=arrays["top_ys"],
            top_offsets=arrays["top_offsets"],
        )

    @classmethod
    def concat(cls, shards: Sequence["PopulationColumns"]) -> "PopulationColumns":
        """Stack population shards into one (see ``CheckInColumns.concat``)."""
        if not shards:
            return cls(
                checkins=CheckInColumns.concat([]),
                top_xs=np.empty(0), top_ys=np.empty(0),
                top_offsets=np.zeros(1, dtype=np.int64),
            )
        top_offsets = [shards[0].top_offsets]
        base = shards[0].top_offsets[-1]
        for shard in shards[1:]:
            top_offsets.append(shard.top_offsets[1:] + base)
            base = base + shard.top_offsets[-1]
        return cls(
            checkins=CheckInColumns.concat([s.checkins for s in shards]),
            top_xs=np.concatenate([s.top_xs for s in shards]),
            top_ys=np.concatenate([s.top_ys for s in shards]),
            top_offsets=np.concatenate(top_offsets),
        )
