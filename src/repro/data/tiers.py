"""Named dataset tiers: small / city / metro-100k populations as CSR shards.

A tier names a fixed :class:`~repro.datagen.population.PopulationConfig`
so benches and CI refer to "the 10k-user city tier" instead of an ad-hoc
parameter soup.  Tier populations are generated **shard-streamed**: users
come from :func:`~repro.datagen.population.iter_population_spawned` (each
user a pure function of ``(config, user id)``), so fixed-size shards of
the population can be generated in parallel, cached individually in the
content-addressed :class:`~repro.data.cache.StageCache` under the
``tier-shard`` stage, and concatenated back — large populations never
regenerate, and a partially warm cache only computes the missing shards.

Per-user check-in volume shrinks as the tier grows (a 100k-user bench
stresses the *population* axis, not per-user trace length), keeping the
metro tier around 5-6M check-ins (~130 MB of columns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.cache import StageCache, stage_key
from repro.data.columns import PopulationColumns
from repro.datagen.population import PopulationConfig, iter_population_spawned

__all__ = [
    "DatasetTier",
    "TIERS",
    "TIER_SHARD_USERS",
    "TIER_STAGE_VERSION",
    "tier_config",
    "tier_columns",
]

#: Bump when spawned-stream population generation changes output.
TIER_STAGE_VERSION = "1"

#: Users per generation/cache shard.  Part of the cache key via the shard
#: ranges, so changing it invalidates tier entries (they re-shard).
TIER_SHARD_USERS = 2_500


@dataclass(frozen=True)
class DatasetTier:
    """A named population scale with its trace-volume calibration."""

    name: str
    n_users: int
    count_log_mean: float
    count_log_sigma: float
    max_checkins: int
    seed: int = 20220522

    def config(self) -> PopulationConfig:
        """The tier's fully specified population config."""
        return PopulationConfig(
            n_users=self.n_users,
            seed=self.seed,
            count_log_mean=self.count_log_mean,
            count_log_sigma=self.count_log_sigma,
            max_checkins=self.max_checkins,
        )


#: The named tiers the benches and docs refer to.
TIERS: Dict[str, DatasetTier] = {
    tier.name: tier
    for tier in (
        # Laptop tier: the repo-default population calibration.
        DatasetTier(
            name="small", n_users=2_000,
            count_log_mean=math.log(450.0), count_log_sigma=1.15,
            max_checkins=11_435,
        ),
        # CI mid-tier: 10k users, ~130 check-ins each.
        DatasetTier(
            name="city", n_users=10_000,
            count_log_mean=math.log(80.0), count_log_sigma=1.0,
            max_checkins=2_000,
        ),
        # The bench-trajectory tier: 100k users, ~55 check-ins each.
        DatasetTier(
            name="metro-100k", n_users=100_000,
            count_log_mean=math.log(40.0), count_log_sigma=0.8,
            max_checkins=400,
        ),
    )
}


def tier_config(name: str) -> PopulationConfig:
    """Resolve a tier name to its population config."""
    try:
        return TIERS[name].config()
    except KeyError:
        raise ValueError(
            f"unknown tier {name!r}; available: {sorted(TIERS)}"
        ) from None


def _shard_ranges(n_users: int) -> List[Tuple[int, int]]:
    return [
        (s, min(s + TIER_SHARD_USERS, n_users))
        for s in range(0, n_users, TIER_SHARD_USERS)
    ]


def _shard_key(config: PopulationConfig, start: int, stop: int) -> str:
    return stage_key(
        "tier-shard",
        {"config": config, "start": start, "stop": stop},
        TIER_STAGE_VERSION,
    )


def _generate_shards(
    chunk: List[Tuple[int, int]],
    rng: np.random.Generator,
    payload: Dict[str, PopulationConfig],
) -> List[Dict[str, np.ndarray]]:
    """parallel_map chunk fn: generate the given ``(start, stop)`` shards.

    The chunk rng is unused on purpose — every user draws from its own
    spawned stream, so shard content is independent of the chunk schedule.
    """
    config: PopulationConfig = payload["config"]
    return [
        PopulationColumns.from_users(
            iter_population_spawned(config, start, stop)
        ).arrays()
        for start, stop in chunk
    ]


def tier_columns(
    name: str,
    cache: Optional[StageCache] = None,
    workers: Optional[int] = 1,
) -> PopulationColumns:
    """The tier's full population, shard-cached and shard-parallel.

    Shards present in ``cache`` load directly; missing shards are
    generated (fanned out over ``workers`` via ``parallel_map``) and
    stored, then everything concatenates in user order.  The result is
    bit-identical regardless of cache state or worker count.
    """
    from repro.parallel.pool import parallel_map

    config = tier_config(name)
    ranges = _shard_ranges(config.n_users)
    shards: List[Optional[PopulationColumns]] = [None] * len(ranges)
    missing: List[Tuple[int, Tuple[int, int]]] = []
    for i, (start, stop) in enumerate(ranges):
        if cache is not None:
            arrays = cache.load(_shard_key(config, start, stop))
            if arrays is not None:
                shards[i] = PopulationColumns.from_arrays(arrays)
                continue
        missing.append((i, (start, stop)))

    if missing:
        generated = parallel_map(
            _generate_shards,
            [rng_pair for _, rng_pair in missing],
            workers=workers,
            chunk_size=1,
            payload={"config": config},
        )
        for (i, (start, stop)), arrays in zip(missing, generated):
            if cache is not None:
                # Client-side population shards: inputs to the mechanisms,
                # cached inside the trust boundary (see population_columns).
                # reprolint: disable=PRIV003
                cache.store(_shard_key(config, start, stop), arrays)
            shards[i] = PopulationColumns.from_arrays(arrays)

    return PopulationColumns.concat([s for s in shards if s is not None])
