"""Named dataset tiers: small .. metro-1M populations as CSR shards.

A tier names a fixed :class:`~repro.datagen.population.PopulationConfig`
so benches and CI refer to "the 10k-user city tier" instead of an ad-hoc
parameter soup.  Tier populations are generated **shard-streamed**: users
come from :func:`~repro.datagen.population.iter_population_spawned` (each
user a pure function of ``(config, user id)``), so fixed-size shards of
the population can be generated in parallel, cached individually in the
content-addressed :class:`~repro.data.cache.StageCache` under the
``tier-shard`` stage, and concatenated back — large populations never
regenerate, and a partially warm cache only computes the missing shards.

Per-user check-in volume shrinks as the tier grows (a 100k-user bench
stresses the *population* axis, not per-user trace length), keeping the
metro-100k tier around 5-6M check-ins (~130 MB of columns) and the
metro-1M tier around 26M check-ins (~650 MB).

Two serving paths share the shard discipline:

* the default in-memory path concatenates shard arrays on the heap —
  right up to metro-100k;
* ``tier_columns(..., mmap=True)`` builds the tier **out of core**: shard
  bundles land in the :class:`~repro.data.mmapstore.MmapStore` as ``.npy``
  files, generation proceeds in bounded waves so only a few shards are
  ever resident, the combined columns are streamed shard-by-shard into
  one preallocated bundle, and the returned
  :class:`~repro.data.columns.PopulationColumns` wraps read-only
  ``np.memmap`` views.  Values are bit-identical either way — only the
  residency story differs — which is what lets the candidate digests pin
  mmap-vs-heap equivalence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.cache import StageCache, stage_key
from repro.data.columns import PopulationColumns
from repro.data.mmapstore import MmapStore, release_pages
from repro.datagen.population import PopulationConfig, iter_population_spawned

__all__ = [
    "DatasetTier",
    "TIERS",
    "TIER_SHARD_USERS",
    "TIER_STAGE_VERSION",
    "MMAP_WAVE_SHARDS",
    "tier_config",
    "tier_columns",
]

#: Bump when spawned-stream population generation changes output.
TIER_STAGE_VERSION = "1"

#: Users per generation/cache shard.  Part of the cache key via the shard
#: ranges, so changing it invalidates tier entries (they re-shard).
TIER_SHARD_USERS = 2_500


@dataclass(frozen=True)
class DatasetTier:
    """A named population scale with its trace-volume calibration."""

    name: str
    n_users: int
    count_log_mean: float
    count_log_sigma: float
    max_checkins: int
    seed: int = 20220522

    def config(self) -> PopulationConfig:
        """The tier's fully specified population config."""
        return PopulationConfig(
            n_users=self.n_users,
            seed=self.seed,
            count_log_mean=self.count_log_mean,
            count_log_sigma=self.count_log_sigma,
            max_checkins=self.max_checkins,
        )


#: The named tiers the benches and docs refer to.
TIERS: Dict[str, DatasetTier] = {
    tier.name: tier
    for tier in (
        # Laptop tier: the repo-default population calibration.
        DatasetTier(
            name="small", n_users=2_000,
            count_log_mean=math.log(450.0), count_log_sigma=1.15,
            max_checkins=11_435,
        ),
        # CI mid-tier: 10k users, ~130 check-ins each.
        DatasetTier(
            name="city", n_users=10_000,
            count_log_mean=math.log(80.0), count_log_sigma=1.0,
            max_checkins=2_000,
        ),
        # The bench-trajectory tier: 100k users, ~55 check-ins each.
        DatasetTier(
            name="metro-100k", n_users=100_000,
            count_log_mean=math.log(40.0), count_log_sigma=0.8,
            max_checkins=400,
        ),
        # The out-of-core tier: 1M users, ~26 check-ins each (~650 MB of
        # columns) — sized for the mmap path; the in-memory path still
        # works but holds the whole population on the heap.
        DatasetTier(
            name="metro-1M", n_users=1_000_000,
            count_log_mean=math.log(18.0), count_log_sigma=0.6,
            max_checkins=150,
        ),
    )
}

#: Shards generated per wave on the mmap path — bounds how many freshly
#: generated shards are heap-resident at once, independent of tier size.
MMAP_WAVE_SHARDS = 16


def tier_config(name: str) -> PopulationConfig:
    """Resolve a tier name to its population config."""
    try:
        return TIERS[name].config()
    except KeyError:
        raise ValueError(
            f"unknown tier {name!r}; available: {sorted(TIERS)}"
        ) from None


def _shard_ranges(n_users: int) -> List[Tuple[int, int]]:
    return [
        (s, min(s + TIER_SHARD_USERS, n_users))
        for s in range(0, n_users, TIER_SHARD_USERS)
    ]


def _shard_key(config: PopulationConfig, start: int, stop: int) -> str:
    return stage_key(
        "tier-shard",
        {"config": config, "start": start, "stop": stop},
        TIER_STAGE_VERSION,
    )


def _generate_shards(
    chunk: List[Tuple[int, int]],
    rng: np.random.Generator,
    payload: Dict[str, PopulationConfig],
) -> List[Dict[str, np.ndarray]]:
    """parallel_map chunk fn: generate the given ``(start, stop)`` shards.

    The chunk rng is unused on purpose — every user draws from its own
    spawned stream, so shard content is independent of the chunk schedule.
    """
    config: PopulationConfig = payload["config"]
    return [
        PopulationColumns.from_users(
            iter_population_spawned(config, start, stop)
        ).arrays()
        for start, stop in chunk
    ]


def _combined_key(config: PopulationConfig) -> str:
    return stage_key(
        "tier-columns",
        {"config": config, "shard_users": TIER_SHARD_USERS},
        TIER_STAGE_VERSION,
    )


def _tier_columns_mmap(
    config: PopulationConfig, cache: StageCache, workers: Optional[int]
) -> PopulationColumns:
    """Build (or reopen) the tier as one memmap-backed ``.npy`` bundle.

    The combined bundle is content-addressed under the ``tier-columns``
    stage; a hit reopens it with zero generation work and near-zero heap.
    On a miss, shard bundles are ensured first — reusing ``.npz`` shards
    a previous in-memory run cached, generating the rest in waves of
    :data:`MMAP_WAVE_SHARDS` so heap residency is bounded by the wave,
    not the tier — then streamed into one preallocated bundle with
    offsets rebased shard by shard.  Page-release advice after each shard
    keeps the build's peak RSS flat at any tier size.
    """
    from repro.parallel.pool import parallel_map

    store = MmapStore.for_cache_dir(cache.directory)
    key = _combined_key(config)
    combined = store.load(key)
    if combined is not None:
        return PopulationColumns.from_arrays(combined)

    ranges = _shard_ranges(config.n_users)
    keys = [_shard_key(config, start, stop) for start, stop in ranges]
    shard_arrays: List[Optional[Dict[str, np.ndarray]]] = [
        store.load(k) for k in keys
    ]
    for i, existing in enumerate(shard_arrays):
        if existing is None:
            npz = cache.load(keys[i])
            if npz is not None:
                store.store(keys[i], npz)
                shard_arrays[i] = store.load(keys[i])

    missing = [i for i, a in enumerate(shard_arrays) if a is None]
    for wave_start in range(0, len(missing), MMAP_WAVE_SHARDS):
        wave = missing[wave_start:wave_start + MMAP_WAVE_SHARDS]
        generated = parallel_map(
            _generate_shards,
            [ranges[i] for i in wave],
            workers=workers,
            chunk_size=1,
            payload={"config": config},
        )
        for i, arrays in zip(wave, generated):
            # Same trust boundary as the .npz shard store below; the
            # bundle lives beside it under <cache>/mmap/.
            # reprolint: disable=PRIV003
            store.store(keys[i], arrays)
            shard_arrays[i] = store.load(keys[i])

    shards = [a for a in shard_arrays if a is not None]
    n_checkins = sum(int(a["xs"].shape[0]) for a in shards)
    n_tops = sum(int(a["top_xs"].shape[0]) for a in shards)
    n_rows = config.n_users + 1
    specs: Dict[str, Tuple[Tuple[int, ...], str]] = {
        "xs": ((n_checkins,), "<f8"),
        "ys": ((n_checkins,), "<f8"),
        "timestamps": ((n_checkins,), "<f8"),
        "offsets": ((n_rows,), "<i8"),
        "top_xs": ((n_tops,), "<f8"),
        "top_ys": ((n_tops,), "<f8"),
        "top_offsets": ((n_rows,), "<i8"),
    }
    with store.writer(key, specs) as writer:
        out = writer.arrays
        out["offsets"][0] = 0
        out["top_offsets"][0] = 0
        row = top = user = 0
        for j, a in enumerate(shards):
            k = int(a["xs"].shape[0])
            t = int(a["top_xs"].shape[0])
            u = int(a["offsets"].shape[0]) - 1
            out["xs"][row:row + k] = a["xs"]
            out["ys"][row:row + k] = a["ys"]
            out["timestamps"][row:row + k] = a["timestamps"]
            out["top_xs"][top:top + t] = a["top_xs"]
            out["top_ys"][top:top + t] = a["top_ys"]
            out["offsets"][user + 1:user + u + 1] = a["offsets"][1:] + row
            out["top_offsets"][user + 1:user + u + 1] = a["top_offsets"][1:] + top
            row += k
            top += t
            user += u
            release_pages(*a.values())
            if (j + 1) % MMAP_WAVE_SHARDS == 0:
                # Push dirty pages to disk and surrender them so the
                # writer's residency stays one wave, not the whole tier.
                for arr in out.values():
                    if isinstance(arr, np.memmap):
                        arr.flush()
                release_pages(*out.values())

    combined = store.load(key)
    if combined is None:
        raise RuntimeError(
            f"mmap tier bundle vanished immediately after build: {store.path_for(key)}"
        )
    return PopulationColumns.from_arrays(combined)


def tier_columns(
    name: str,
    cache: Optional[StageCache] = None,
    workers: Optional[int] = 1,
    mmap: bool = False,
) -> PopulationColumns:
    """The tier's full population, shard-cached and shard-parallel.

    Shards present in ``cache`` load directly; missing shards are
    generated (fanned out over ``workers`` via ``parallel_map``) and
    stored, then everything concatenates in user order.  The result is
    bit-identical regardless of cache state or worker count.

    With ``mmap=True`` the tier is served out of core from the
    :class:`~repro.data.mmapstore.MmapStore` beside the cache: the
    returned columns wrap read-only memmaps and downstream fan-out ships
    them by path+offset instead of copying.  Values are bit-identical to
    the heap path.  An mmap request without a disk-backed cache has
    nowhere to put the bundle and falls back to the heap path.
    """
    from repro.parallel.pool import parallel_map

    config = tier_config(name)
    if mmap and cache is not None and cache.enabled:
        return _tier_columns_mmap(config, cache, workers)
    ranges = _shard_ranges(config.n_users)
    shards: List[Optional[PopulationColumns]] = [None] * len(ranges)
    missing: List[Tuple[int, Tuple[int, int]]] = []
    for i, (start, stop) in enumerate(ranges):
        if cache is not None:
            arrays = cache.load(_shard_key(config, start, stop))
            if arrays is not None:
                shards[i] = PopulationColumns.from_arrays(arrays)
                continue
        missing.append((i, (start, stop)))

    if missing:
        generated = parallel_map(
            _generate_shards,
            [rng_pair for _, rng_pair in missing],
            workers=workers,
            chunk_size=1,
            payload={"config": config},
        )
        for (i, (start, stop)), arrays in zip(missing, generated):
            if cache is not None:
                # Client-side population shards: inputs to the mechanisms,
                # cached inside the trust boundary (see population_columns).
                # reprolint: disable=PRIV003
                cache.store(_shard_key(config, start, stop), arrays)
            shards[i] = PopulationColumns.from_arrays(arrays)

    return PopulationColumns.concat([s for s in shards if s is not None])
