"""Cached builders for the expensive, shared pipeline stages.

Each builder is a pure function of its parameters (the generators consume
a seeded RNG in a fixed order), so its output can be content-addressed:
the first run computes and stores the arrays, later runs with the same
parameters load them back bit-identically.  Callers pass a
:class:`~repro.data.cache.StageCache` (or ``None`` to always compute).

Stage version constants are part of the cache key — bump them whenever a
code change alters the stage's output for unchanged parameters.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.data.cache import StageCache, stage_key
from repro.data.columns import PopulationColumns
from repro.datagen.population import PopulationConfig, iter_population

__all__ = [
    "POPULATION_STAGE_VERSION",
    "CANDIDATE_TABLE_STAGE_VERSION",
    "population_columns",
    "population_coords_pool",
    "candidate_table",
]

#: Bump when population generation changes output for the same config.
POPULATION_STAGE_VERSION = "1"

#: Bump when candidate-set pinning changes output for the same params.
CANDIDATE_TABLE_STAGE_VERSION = "1"


def population_columns(
    config: PopulationConfig, cache: Optional[StageCache] = None
) -> PopulationColumns:
    """The synthetic population as columns, cached on the full config.

    Bit-identical to packing ``iter_population(config)`` directly: the
    cache stores exactly the arrays a fresh generation produces.
    """
    key = stage_key("population", config, POPULATION_STAGE_VERSION)
    if cache is not None:
        arrays = cache.load(key)
        if arrays is not None:
            return PopulationColumns.from_arrays(arrays)
    columns = PopulationColumns.from_users(iter_population(config))
    if cache is not None:
        # The stage cache is a client-side artifact inside the trust
        # boundary: it memoises the *input* population the obfuscation
        # experiments consume, so it stores raw coordinates by design.
        # reprolint: disable=PRIV003
        cache.store(key, columns.arrays())
    return columns


def population_coords_pool(
    pool_size: int, seed: int, cache: Optional[StageCache] = None
) -> List[np.ndarray]:
    """Per-user coordinate arrays for the timing workloads (Table II).

    Same values as ``[checkins_to_array(u.trace) for u in
    iter_population(...)]`` — the pool rides the population stage's cache
    entry, so a fig6 run at the same config warms it for free.
    """
    config = PopulationConfig(n_users=pool_size, seed=seed)
    columns = population_columns(config, cache).checkins
    return [columns.user_coords(i) for i in range(columns.n_users)]


def candidate_table(
    budget: GeoIndBudget,
    max_users: int,
    seed: int,
    cache: Optional[StageCache] = None,
) -> np.ndarray:
    """Pinned per-user candidate sets for the selection workload (Table III).

    An ``(max_users, n, 2)`` array: one n-fold candidate set per user,
    drawn once from a mechanism seeded with ``seed``.
    """
    key = stage_key(
        "candidate-table",
        {"budget": budget, "max_users": max_users, "seed": seed},
        CANDIDATE_TABLE_STAGE_VERSION,
    )
    if cache is not None:
        arrays = cache.load(key)
        if arrays is not None:
            return arrays["candidates"]
    mechanism = NFoldGaussianMechanism(budget, rng=default_rng(seed))
    # Precomputed candidate table for the selection-timing workload: the
    # sets are drawn around the origin (no real location is released) and
    # real deployments charge at pin time via ObfuscationModule's ledger.
    # reprolint: disable=BUD101
    candidates = np.asarray(
        mechanism.obfuscate_batch(np.zeros((max_users, 2))), dtype=np.float64
    )
    if cache is not None:
        cache.store(key, {"candidates": candidates})
    return candidates
