"""Columnar data plane: struct-of-arrays stores and the stage cache.

The experiment pipelines (datagen → profiles → attack → reports) used to
be object-shaped: per-user ``CheckIn``/``Point`` lists rebuilt and
re-serialized on every run.  This package provides the columnar
counterparts:

* :mod:`repro.data.columns` — ``CheckInColumns``/``PopulationColumns``,
  CSR-layout struct-of-arrays containers with converters to and from the
  existing object types;
* :mod:`repro.data.cache` — a content-addressed stage cache that keys
  each expensive pipeline stage on a canonical hash of its config and
  stores ``.npz`` artifacts;
* :mod:`repro.data.stages` — cached builders for the shared pipeline
  stages (population generation, coordinate pools, candidate tables);
* :mod:`repro.data.mmapstore` — the out-of-core sibling of the cache:
  ``.npy`` bundles opened with ``np.memmap`` so million-user tiers load
  as lazily paged file-backed arrays instead of heap copies;
* :mod:`repro.data.plane` — :class:`~repro.data.plane.DataPlaneConfig`,
  the one frozen config (and shared argparse flags) for the
  workers/cache/tier/mmap/shm knobs every CLI driver used to re-plumb.

Everything here preserves bit-identical results: the columns hold exactly
the values the object path produced, and cached stage outputs are only
reused for configs whose outputs are deterministic functions of the key.
"""

from repro.data.cache import DEFAULT_CACHE_DIR, StageCache, stage_key
from repro.data.columns import CheckInColumns, PopulationColumns
from repro.data.mmapstore import MmapStore, release_pages
from repro.data.plane import DataPlaneConfig, add_data_plane_arguments
from repro.data.stages import (
    CANDIDATE_TABLE_STAGE_VERSION,
    POPULATION_STAGE_VERSION,
    candidate_table,
    population_columns,
    population_coords_pool,
)

__all__ = [
    "CheckInColumns",
    "DataPlaneConfig",
    "PopulationColumns",
    "add_data_plane_arguments",
    "MmapStore",
    "release_pages",
    "StageCache",
    "stage_key",
    "DEFAULT_CACHE_DIR",
    "population_columns",
    "population_coords_pool",
    "candidate_table",
    "POPULATION_STAGE_VERSION",
    "CANDIDATE_TABLE_STAGE_VERSION",
]
