"""A uniform-grid spatial index for fixed-radius neighbour queries.

The longitudinal attack's connectivity clustering (Algorithm 1) needs to
group tens of thousands of check-ins by "within threshold distance of each
other", transitively.  A naive all-pairs scan is O(n^2) and a naive
per-point region query still degenerates on dense clusters (a top location
contributes thousands of near-coincident points).  This index therefore
implements clustering with a *cell-level union-find*:

* points are bucketed into square cells of side ``radius / sqrt(2)``, so
  any two points sharing a cell are guaranteed within ``radius`` and can
  be unioned for free;
* only nearby cell *pairs* are then tested for a connecting point pair,
  vectorised with an early exit — once two components merge, no further
  pairs between them are examined.

This keeps clustering near-linear for both dense routine clusters and
scattered nomadic points.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["GridIndex", "UnionFind", "connected_components", "component_labels"]

CellKey = Tuple[int, int]


class UnionFind:
    """Array-based disjoint-set union with path compression and rank."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = np.arange(size, dtype=np.int64)
        self._rank = np.zeros(size, dtype=np.int8)

    def find(self, i: int) -> int:
        """Root of ``i``'s set, compressing the path walked."""
        parent = self._parent
        root = i
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def groups(self) -> Dict[int, List[int]]:
        """Map each root to the sorted list of its members."""
        out: Dict[int, List[int]] = defaultdict(list)
        for i in range(len(self._parent)):
            out[self.find(i)].append(i)
        return out


class GridIndex:
    """Bucket ``(n, 2)`` points into a uniform grid of ``cell_size`` metres.

    Points are referenced by their integer row index into the original
    array, so callers can map query results back to their own records.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"expected (n, 2) points, got shape {points.shape}")
        self._points = points
        self._cell_size = cell_size
        self._cells = _bucket(points, cell_size)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    def query(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of the coordinate ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        # One ring beyond the exact-arithmetic reach: a point mathematically
        # just outside ``radius`` can still satisfy the rounded float
        # predicate ``d2 <= radius**2`` (e.g. query at -0.0 epsilon against
        # a point exactly ``radius`` away), and it may live one cell past
        # the exact range.  The extra ring makes the candidate set a strict
        # superset of everything the final comparison can accept.
        reach = max(1, math.ceil(radius / self._cell_size)) + 1
        cx = math.floor(x / self._cell_size)
        cy = math.floor(y / self._cell_size)
        buckets = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                b = self._cells.get((gx, gy))
                if b is not None:
                    buckets.append(b)
        if not buckets:
            return []
        candidates = np.concatenate(buckets)
        pts = self._points[candidates]
        mask = (pts[:, 0] - x) ** 2 + (pts[:, 1] - y) ** 2 <= radius * radius
        return [int(i) for i in candidates[mask]]

    def neighbors_within(self, idx: int, radius: float) -> List[int]:
        """Indices of points within ``radius`` of point ``idx`` (excluding itself)."""
        x, y = self._points[idx]
        return [j for j in self.query(float(x), float(y), radius) if j != idx]

    def connected_components(self, radius: float) -> List[List[int]]:
        """Group point indices into transitive fixed-radius components.

        Two points are connected when their distance is at most ``radius``;
        components are the transitive closure — exactly the clustering rule
        of the paper's Algorithm 1 line 2.  Returned components are sorted
        by size, largest first, with ties broken by smallest member index.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        return connected_components(self._points, radius)

    def iter_cells(self) -> Iterator[Tuple[CellKey, np.ndarray]]:
        """Iterate over ``(cell_key, point_indices)`` pairs (for diagnostics)."""
        return iter(self._cells.items())


def _bucket(points: np.ndarray, cell_size: float) -> Dict[CellKey, np.ndarray]:
    """Group row indices by grid cell, each bucket a numpy index array."""
    cells: Dict[CellKey, np.ndarray] = {}
    if len(points) == 0:
        return cells
    keys = np.floor(points / cell_size).astype(np.int64)
    order = np.lexsort((keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]
    change = np.ones(len(order), dtype=bool)
    change[1:] = (sorted_keys[1:] != sorted_keys[:-1]).any(axis=1)
    starts = np.flatnonzero(change)
    bounds = np.append(starts, len(order))
    for s, e in zip(bounds[:-1], bounds[1:]):
        key = (int(sorted_keys[s, 0]), int(sorted_keys[s, 1]))
        cells[key] = order[s:e]
    return cells


def _cell_roots(points: np.ndarray, radius: float) -> np.ndarray:
    """Union-find over *cells* (not points): each point's component root.

    All points sharing a cell are within ``radius`` by construction, so
    connectivity only has to be resolved at the cell level — the union-find
    touches O(#cells) nodes instead of O(#points), which is what keeps
    clustering a year of check-ins (thousands of near-coincident points per
    top location) cheap.  Cell keys are encoded as sorted int64 codes and
    neighbour cells located with ``searchsorted``, so the python-level work
    is proportional to the number of *actually adjacent* cell pairs.
    Returns ``point_root`` where ``point_root[i]`` is an
    arbitrary-but-deterministic component id for point ``i``.
    """
    n = len(points)
    # Side radius/sqrt(2): same-cell points are within radius by construction.
    cell = radius / math.sqrt(2.0)
    keys = np.floor(points / cell).astype(np.int64)
    kx = keys[:, 0] - keys[:, 0].min()
    ky = keys[:, 1] - keys[:, 1].min()
    # Row width leaves >= 2 cells of slack so +-2 neighbour offsets can
    # never alias a cell in an adjacent row.
    width = int(ky.max()) + 5
    code = kx * width + ky
    order = np.argsort(code, kind="stable")
    sorted_code = code[order]
    is_start = np.ones(n, dtype=bool)
    is_start[1:] = sorted_code[1:] != sorted_code[:-1]
    starts = np.flatnonzero(is_start)
    bounds = np.append(starts, n)
    unique_codes = sorted_code[starts]
    n_cells = len(unique_codes)

    uf = UnionFind(n_cells)
    # Cells whose minimum gap can be <= radius: Chebyshev offset <= 2,
    # excluding offsets whose corner gap exceeds radius ((3,*) etc. are
    # already out of range).
    offsets = [
        (ox, oy)
        for ox in range(-2, 3)
        for oy in range(-2, 3)
        if (ox, oy) > (0, 0)  # half-plane: each unordered pair once
        and math.hypot(max(0, abs(ox) - 1), max(0, abs(oy) - 1)) * cell <= radius
    ]
    r2 = radius * radius
    for ox, oy in offsets:
        target = unique_codes + (ox * width + oy)
        pos = np.searchsorted(unique_codes, target)
        pos = np.minimum(pos, n_cells - 1)
        hits = np.flatnonzero(unique_codes[pos] == target)
        for i in hits:
            j = int(pos[i])
            if uf.find(i) == uf.find(j):
                continue
            a_idx = order[bounds[i] : bounds[i + 1]]
            b_idx = order[bounds[j] : bounds[j + 1]]
            if _cells_connect(points, a_idx, b_idx, r2):
                uf.union(int(i), j)

    cell_root = np.fromiter(
        (uf.find(i) for i in range(n_cells)), dtype=np.int64, count=n_cells
    )
    point_cell = np.empty(n, dtype=np.int64)
    point_cell[order] = np.repeat(
        np.arange(n_cells, dtype=np.int64), np.diff(bounds)
    )
    return cell_root[point_cell]


def connected_components(points: np.ndarray, radius: float) -> List[List[int]]:
    """Fixed-radius transitive clustering via cell-level union-find."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        return []
    point_root = _cell_roots(points, radius)
    # Group point indices by root, vectorised: stable sort by root keeps
    # each group's indices ascending, then split at root boundaries.
    order = np.argsort(point_root, kind="stable")
    sorted_roots = point_root[order]
    starts = np.flatnonzero(np.diff(sorted_roots)) + 1
    components = [g.tolist() for g in np.split(order, starts)]
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def component_labels(points: np.ndarray, radius: float) -> np.ndarray:
    """Per-point component labels for fixed-radius transitive clustering.

    Labels are assigned in the same order :func:`connected_components`
    returns its groups (decreasing size, ties by smallest member index), so
    ``labels == k`` selects the ``k``-th largest component.  This is the
    allocation-light interface for callers that aggregate per component
    (e.g. profile centroids) and do not need explicit index lists.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        return np.empty(0, dtype=np.int64)
    point_root = _cell_roots(points, radius)
    roots, inverse, counts = np.unique(
        point_root, return_inverse=True, return_counts=True
    )
    # Rank roots by (size desc, smallest member asc) to match the
    # connected_components ordering contract.
    first_member = np.full(len(roots), len(points), dtype=np.int64)
    np.minimum.at(first_member, inverse, np.arange(len(points), dtype=np.int64))
    order = np.lexsort((first_member, -counts))
    rank = np.empty(len(roots), dtype=np.int64)
    rank[order] = np.arange(len(roots), dtype=np.int64)
    return rank[inverse]


def _cells_connect(
    points: np.ndarray, a_idx: np.ndarray, b_idx: np.ndarray, r2: float
) -> bool:
    """Does any cross pair between two cells lie within the radius?

    Iterates over the smaller cell, vectorising against the larger one and
    exiting on the first hit — dense adjacent cells connect on the first
    probe, so the worst case only occurs for genuinely disconnected pairs.
    """
    if len(a_idx) > len(b_idx):
        a_idx, b_idx = b_idx, a_idx
    b_pts = points[b_idx]
    for i in a_idx:
        dx = b_pts[:, 0] - points[i, 0]
        dy = b_pts[:, 1] - points[i, 1]
        if ((dx * dx + dy * dy) <= r2).any():
            return True
    return False
