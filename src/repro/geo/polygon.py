"""Simple polygons: containment, area, bounding box.

Substrate for the paper's *areas targeting* category (Section II-A), where
advertisers target administrative regions rather than radii.  Implemented
from scratch: ray-casting containment (with boundary tolerance), shoelace
area, and centroid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

__all__ = ["Polygon"]


@dataclass(frozen=True)
class Polygon:
    """A simple (non-self-intersecting) polygon given by its vertex ring.

    Vertices may be listed in either orientation; the ring is implicitly
    closed (do not repeat the first vertex).
    """

    vertices: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", tuple(self.vertices))

    @classmethod
    def from_coords(cls, coords: Sequence[Tuple[float, float]]) -> "Polygon":
        """Build a polygon from (x, y) coordinate pairs."""
        return cls(tuple(Point(float(x), float(y)) for x, y in coords))

    @classmethod
    def rectangle(cls, box: BoundingBox) -> "Polygon":
        """The axis-aligned rectangle of a bounding box."""
        return cls(
            (
                Point(box.min_x, box.min_y),
                Point(box.max_x, box.min_y),
                Point(box.max_x, box.max_y),
                Point(box.min_x, box.max_y),
            )
        )

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """A regular polygon (useful to approximate circular districts)."""
        if sides < 3:
            raise ValueError("need at least three sides")
        if radius <= 0:
            raise ValueError("radius must be positive")
        angles = np.linspace(0.0, 2.0 * np.pi, sides, endpoint=False)
        return cls(
            tuple(
                Point(center.x + radius * float(np.cos(a)),
                      center.y + radius * float(np.sin(a)))
                for a in angles
            )
        )

    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        xs = np.array([v.x for v in self.vertices])
        ys = np.array([v.y for v in self.vertices])
        return float(
            abs(np.dot(xs, np.roll(ys, -1)) - np.dot(ys, np.roll(xs, -1))) / 2.0
        )

    def centroid(self) -> Point:
        """Area centroid (falls back to the vertex mean for degenerate area)."""
        xs = np.array([v.x for v in self.vertices])
        ys = np.array([v.y for v in self.vertices])
        cross = xs * np.roll(ys, -1) - np.roll(xs, -1) * ys
        a = cross.sum() / 2.0
        if abs(a) < 1e-12:
            return Point(float(xs.mean()), float(ys.mean()))
        cx = ((xs + np.roll(xs, -1)) * cross).sum() / (6.0 * a)
        cy = ((ys + np.roll(ys, -1)) * cross).sum() / (6.0 * a)
        return Point(float(cx), float(cy))

    def bounding_box(self) -> BoundingBox:
        """The polygon's axis-aligned bounding box."""
        return BoundingBox(
            min_x=min(v.x for v in self.vertices),
            min_y=min(v.y for v in self.vertices),
            max_x=max(v.x for v in self.vertices),
            max_y=max(v.y for v in self.vertices),
        )

    def contains(self, p: Point, boundary_tol: float = 1e-9) -> bool:
        """Ray-casting containment; boundary points count as inside."""
        n = len(self.vertices)
        inside = False
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if _on_segment(a, b, p, boundary_tol):
                return True
            intersects = (a.y > p.y) != (b.y > p.y)
            if intersects:
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def contains_many(self, coords: np.ndarray) -> np.ndarray:
        """Vectorised containment mask for an ``(n, 2)`` array."""
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coords, got {coords.shape}")
        xs = np.array([v.x for v in self.vertices])
        ys = np.array([v.y for v in self.vertices])
        xa, ya = xs, ys
        xb, yb = np.roll(xs, -1), np.roll(ys, -1)
        px = coords[:, 0][:, None]
        py = coords[:, 1][:, None]
        crosses = (ya > py) != (yb > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = xa + (py - ya) * (xb - xa) / (yb - ya)
        hits = crosses & (px < x_cross)
        return hits.sum(axis=1) % 2 == 1


def _on_segment(a: Point, b: Point, p: Point, tol: float) -> bool:
    """Is ``p`` within ``tol`` of the segment ``ab``?"""
    ab2 = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    # Exact == 0.0 is intended: it only guards the division below, and the
    # near-degenerate case is already handled by clamping t to [0, 1].
    if ab2 == 0.0:  # reprolint: disable=FLT001
        return p.distance_to(a) <= tol
    t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / ab2
    t = max(0.0, min(1.0, t))
    proj = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    return p.distance_to(proj) <= tol
