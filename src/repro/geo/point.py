"""Planar points and distances.

All core algorithms in this library operate on a *local tangent plane* in
metres: check-ins are projected from (latitude, longitude) into planar
coordinates once (see :mod:`repro.geo.projection`) and every mechanism,
attack, and metric then works with plain Euclidean geometry, exactly as the
paper does (distances such as the 50 m clustering threshold, the 200 m attack
threshold, and the 500 m indistinguishability radius are all Euclidean).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "distance",
    "points_to_array",
    "array_to_points",
    "centroid",
    "pairwise_distances",
    "distances_to",
]


@dataclass(frozen=True)
class Point:
    """A planar location in metres on the local tangent plane.

    The class is immutable and hashable so that points can be used as
    dictionary keys (the obfuscation table maps top locations to candidate
    output sets) and stored in sets.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)`` metres."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def points_to_array(points: Iterable[Point]) -> np.ndarray:
    """Pack an iterable of :class:`Point` into an ``(n, 2)`` float array."""
    data = [(p.x, p.y) for p in points]
    if not data:
        return np.empty((0, 2), dtype=float)
    return np.asarray(data, dtype=float)


def array_to_points(arr: np.ndarray) -> list:
    """Unpack an ``(n, 2)`` array into a list of :class:`Point`."""
    arr = np.asarray(arr, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    return [Point(float(x), float(y)) for x, y in arr]


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid of an empty point sequence is undefined")
    arr = points_to_array(points)
    cx, cy = arr.mean(axis=0)
    return Point(float(cx), float(cy))


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix for a point sequence."""
    arr = points_to_array(points)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=-1))


def distances_to(points: Sequence[Point], target: Point) -> np.ndarray:
    """Vector of distances from every point in ``points`` to ``target``."""
    arr = points_to_array(points)
    if arr.size == 0:
        return np.empty(0, dtype=float)
    return np.hypot(arr[:, 0] - target.x, arr[:, 1] - target.y)
