"""Circle geometry used by the utility metrics.

The paper's utilization rate (Definition 4) is the area of the intersection
between the *area of interest* (AOI: circle of targeting radius R around the
user's true location) and the *area of request* (AOR: the union of circles
of radius R around the reported obfuscated locations), normalised by the AOI
area.  For a single reported location this is the classical circle-circle
"lens" intersection, which has a closed form; for unions of several circles
we estimate coverage with a deterministic low-discrepancy Monte Carlo
integration over the AOI disc.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.geo.point import Point, points_to_array

__all__ = [
    "circle_area",
    "lens_area",
    "circle_overlap_fraction",
    "union_coverage_fraction",
    "sample_uniform_disc",
    "points_in_any_circle",
]


def circle_area(radius: float) -> float:
    """Area of a circle, raising on negative radius."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return math.pi * radius * radius


def lens_area(r1: float, r2: float, d: float) -> float:
    """Intersection area of two circles of radii ``r1``/``r2`` at distance ``d``.

    Handles the disjoint (zero) and contained (smaller circle) cases.
    """
    if r1 < 0 or r2 < 0 or d < 0:
        raise ValueError("radii and distance must be non-negative")
    if d >= r1 + r2:
        return 0.0
    # Containment, including distances so small that the lens-formula
    # denominators (2*d*r) would underflow to zero for subnormal d.  The
    # comparison must be an exact == 0.0: it guards the exact divisions
    # below, and any tolerance would misclassify valid thin lenses.
    # reprolint: disable=FLT001
    if d <= abs(r1 - r2) or 2.0 * d * r1 == 0.0 or 2.0 * d * r2 == 0.0:
        return circle_area(min(r1, r2))
    # Standard two-circle lens formula.
    alpha = math.acos(_clamp((d * d + r1 * r1 - r2 * r2) / (2 * d * r1)))
    beta = math.acos(_clamp((d * d + r2 * r2 - r1 * r1) / (2 * d * r2)))
    return (
        r1 * r1 * (alpha - math.sin(2 * alpha) / 2)
        + r2 * r2 * (beta - math.sin(2 * beta) / 2)
    )


def _clamp(v: float, lo: float = -1.0, hi: float = 1.0) -> float:
    return max(lo, min(hi, v))


def circle_overlap_fraction(center_a: Point, center_b: Point, radius: float) -> float:
    """Fraction of circle A covered by an equal-radius circle B.

    This is the analytic utilization rate for a *single* obfuscated output.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    d = center_a.distance_to(center_b)
    return lens_area(radius, radius, d) / circle_area(radius)


def sample_uniform_disc(
    center: Point, radius: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``size`` points uniformly from a disc, as an ``(size, 2)`` array.

    Uses the sqrt radial transform so density is uniform over area rather
    than over radius.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if size < 0:
        raise ValueError("size must be non-negative")
    theta = rng.uniform(0.0, 2 * math.pi, size)
    rad = radius * np.sqrt(rng.uniform(0.0, 1.0, size))
    xs = center.x + rad * np.cos(theta)
    ys = center.y + rad * np.sin(theta)
    return np.column_stack([xs, ys])


def points_in_any_circle(
    samples: np.ndarray, centers: Sequence[Point], radius: float
) -> np.ndarray:
    """Boolean mask: which sample points fall inside at least one circle."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] != 2:
        raise ValueError(f"expected (n, 2) samples, got shape {samples.shape}")
    if not centers:
        return np.zeros(len(samples), dtype=bool)
    carr = points_to_array(centers)
    # (n_samples, n_centers) squared distances; small n_centers keeps this cheap.
    d2 = (
        (samples[:, None, 0] - carr[None, :, 0]) ** 2
        + (samples[:, None, 1] - carr[None, :, 1]) ** 2
    )
    return (d2 <= radius * radius).any(axis=1)


def union_coverage_fraction(
    aoi_center: Point,
    aoi_radius: float,
    aor_centers: Sequence[Point],
    aor_radius: float,
    samples: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of the AOI disc covered by the union of AOR discs.

    For a single AOR circle with ``aor_radius == aoi_radius`` the analytic
    lens is used; otherwise the fraction is estimated by Monte Carlo over
    the AOI disc.
    """
    if len(aor_centers) == 1 and math.isclose(aor_radius, aoi_radius):
        return circle_overlap_fraction(aoi_center, aor_centers[0], aoi_radius)
    if rng is None:
        rng = np.random.default_rng(0)
    pts = sample_uniform_disc(aoi_center, aoi_radius, samples, rng)
    covered = points_in_any_circle(pts, aor_centers, aor_radius)
    return float(covered.mean()) if len(covered) else 0.0
