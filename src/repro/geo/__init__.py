"""Geometric substrate: planar points, projections, circle geometry, indexing."""

from repro.geo.bbox import BoundingBox, GeoBoundingBox
from repro.geo.geometry import (
    circle_area,
    circle_overlap_fraction,
    lens_area,
    points_in_any_circle,
    sample_uniform_disc,
    union_coverage_fraction,
)
from repro.geo.index import GridIndex, UnionFind, connected_components
from repro.geo.polygon import Polygon
from repro.geo.point import (
    Point,
    array_to_points,
    centroid,
    distance,
    distances_to,
    pairwise_distances,
    points_to_array,
)
from repro.geo.projection import EARTH_RADIUS_M, GeoPoint, LocalProjection, haversine_m

__all__ = [
    "Polygon",
    "UnionFind",
    "connected_components",
    "BoundingBox",
    "GeoBoundingBox",
    "GridIndex",
    "Point",
    "GeoPoint",
    "LocalProjection",
    "EARTH_RADIUS_M",
    "haversine_m",
    "array_to_points",
    "centroid",
    "distance",
    "distances_to",
    "pairwise_distances",
    "points_to_array",
    "circle_area",
    "circle_overlap_fraction",
    "lens_area",
    "points_in_any_circle",
    "sample_uniform_disc",
    "union_coverage_fraction",
]
