"""Axis-aligned bounding boxes for planar and geodetic regions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.point import Point
from repro.geo.projection import GeoPoint

__all__ = ["BoundingBox", "GeoBoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """A planar axis-aligned box in metres."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        """Geometric centre of the box."""
        return Point((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains(self, p: Point) -> bool:
        """Is the point inside (boundary inclusive)?"""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def clamp(self, p: Point) -> Point:
        """Project a point onto the box (used to keep noisy samples in-region)."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )

    def sample_uniform(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample points uniformly from the box as an ``(size, 2)`` array."""
        xs = rng.uniform(self.min_x, self.max_x, size)
        ys = rng.uniform(self.min_y, self.max_y, size)
        return np.column_stack([xs, ys])

    def expand(self, margin: float) -> "BoundingBox":
        """Grow the box by ``margin`` metres on every side."""
        return BoundingBox(
            self.min_x - margin, self.min_y - margin,
            self.max_x + margin, self.max_y + margin,
        )


@dataclass(frozen=True)
class GeoBoundingBox:
    """A geodetic box in degrees, e.g. the paper's Shanghai study region."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat or self.min_lon > self.max_lon:
            raise ValueError(f"degenerate geo bounding box: {self}")

    @property
    def center(self) -> GeoPoint:
        """Geometric centre of the box."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2, (self.min_lon + self.max_lon) / 2
        )

    def contains(self, g: GeoPoint) -> bool:
        """Is the geodetic point inside (boundary inclusive)?"""
        return (
            self.min_lat <= g.lat <= self.max_lat
            and self.min_lon <= g.lon <= self.max_lon
        )
