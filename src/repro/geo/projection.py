"""Geodetic coordinates and local tangent-plane projection.

The paper's dataset lives in a small bounding box around Shanghai
(latitude in [30.7, 31.4], longitude in [121, 122], roughly 78 km x 95 km).
Over such an extent an equirectangular projection around a reference origin
is accurate to well under 0.1 % of distance, which is far below every
threshold the paper uses (50 m clustering, 200 m / 500 m attack-success
radii).  We therefore project all geodetic coordinates once into planar
metres and run everything else in Euclidean space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.point import Point

__all__ = ["EARTH_RADIUS_M", "GeoPoint", "haversine_m", "LocalProjection"]

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """A geodetic coordinate (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two geodetic points in metres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


class LocalProjection:
    """Equirectangular projection around a fixed reference origin.

    ``to_plane`` maps a :class:`GeoPoint` to planar metres (east = +x,
    north = +y) relative to the origin; ``to_geo`` inverts it.  The
    projection is exact at the origin and its distance distortion grows
    quadratically with the offset, which is negligible for city-scale
    regions like the paper's Shanghai box.
    """

    def __init__(self, origin: GeoPoint) -> None:
        if abs(origin.lat) > 89.0:
            raise ValueError(
                "equirectangular projection is unusable near the poles; "
                f"origin latitude {origin.lat} exceeds +-89 degrees"
            )
        self.origin = origin
        self._cos_lat0 = math.cos(math.radians(origin.lat))

    def to_plane(self, geo: GeoPoint) -> Point:
        """Project a geodetic point to local planar metres."""
        x = math.radians(geo.lon - self.origin.lon) * EARTH_RADIUS_M * self._cos_lat0
        y = math.radians(geo.lat - self.origin.lat) * EARTH_RADIUS_M
        return Point(x, y)

    def to_geo(self, point: Point) -> GeoPoint:
        """Invert the projection back to geodetic degrees."""
        lon = self.origin.lon + math.degrees(point.x / (EARTH_RADIUS_M * self._cos_lat0))
        lat = self.origin.lat + math.degrees(point.y / EARTH_RADIUS_M)
        return GeoPoint(lat, lon)
