"""Noise-scale calibration for the Gaussian geo-IND mechanisms.

Implements the paper's two calibration results:

* Lemma 1 — the 1-fold Gaussian mechanism satisfies (r, eps, delta, 1)-
  geo-IND with ``sigma = (r / eps) * sqrt(ln(1 / delta^2) + eps)``.
* Theorem 2 — the n-fold Gaussian mechanism satisfies (r, eps, delta, n)-
  geo-IND with ``sigma = (sqrt(n) * r / eps) * sqrt(ln(1 / delta^2) + eps)``,
  because the sample mean of the n outputs (a sufficient statistic for the
  true location) is distributed ``N(p, sigma^2 / n)`` and only the mean's
  release needs to satisfy the 1-fold bound.

The module also exposes the sigma the *plain composition* baseline must
use, so the advantage of the sufficient-statistic analysis can be measured
directly (the composition sigma grows ~linearly in n, the paper's ~sqrt(n)).
"""

from __future__ import annotations

import math

from repro.core.params import GeoIndBudget

__all__ = [
    "gaussian_sigma_single",
    "gaussian_sigma_nfold",
    "gaussian_sigma_composition",
    "sigma_for_budget",
]


def gaussian_sigma_single(r: float, epsilon: float, delta: float) -> float:
    """Lemma 1 noise scale for one Gaussian-perturbed output."""
    _validate(r, epsilon, delta)
    return (r / epsilon) * math.sqrt(math.log(1.0 / (delta * delta)) + epsilon)


def gaussian_sigma_nfold(r: float, epsilon: float, delta: float, n: int) -> float:
    """Theorem 2 noise scale for releasing ``n`` outputs at once.

    Exactly ``sqrt(n)`` times the single-output scale: the mean of the n
    outputs carries all the information about the true location, and its
    standard deviation is ``sigma / sqrt(n)``, which must match Lemma 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(n) * gaussian_sigma_single(r, epsilon, delta)


def gaussian_sigma_composition(r: float, epsilon: float, delta: float, n: int) -> float:
    """Per-output noise scale of the plain-composition baseline.

    Each of the ``n`` outputs independently satisfies
    ``(r, eps/n, delta/n, 1)``-geo-IND, so the whole set satisfies
    ``(r, eps, delta, n)`` by the composition theorem — at the cost of a
    noise scale that grows roughly linearly in ``n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return gaussian_sigma_single(r, epsilon / n, delta / n)


def sigma_for_budget(budget: GeoIndBudget) -> float:
    """Theorem 2 sigma for a full :class:`GeoIndBudget` (n-fold)."""
    return gaussian_sigma_nfold(budget.r, budget.epsilon, budget.delta, budget.n)


def _validate(r: float, epsilon: float, delta: float) -> None:
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
