"""Privacy-budget parameter objects.

Two budget flavours appear in the paper:

* **One-time geo-IND** (Definition 1): a pure ``epsilon`` per unit distance,
  usually written as a privacy level ``l`` at a radius ``r`` so that
  ``epsilon = l / r`` (per metre).  Used by the planar Laplace mechanism
  that the longitudinal attack defeats.
* **(r, eps, delta, n)-geo-IND** (Definition 3): a bounded guarantee over a
  *set* of ``n`` simultaneous outputs for any pair of ``r``-neighbouring
  true locations.  Used by the n-fold Gaussian mechanism and the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["OneTimeBudget", "GeoIndBudget"]


@dataclass(frozen=True)
class OneTimeBudget:
    """Pure geo-IND budget: ``epsilon`` is per metre (``l / r``)."""

    epsilon: float

    def __post_init__(self) -> None:
        if not (self.epsilon > 0 and math.isfinite(self.epsilon)):
            raise ValueError(f"epsilon must be positive and finite, got {self.epsilon}")

    @classmethod
    def from_level(cls, level: float, radius_m: float) -> "OneTimeBudget":
        """Build from the paper's ``(l, r)`` convention: ``epsilon = l / r``.

        For example the paper uses ``l = ln(2)`` at ``r = 200`` m, i.e. a
        ``(ln(2)/200) m^-1`` geo-IND guarantee.
        """
        if level <= 0:
            raise ValueError(f"privacy level must be positive, got {level}")
        if radius_m <= 0:
            raise ValueError(f"radius must be positive, got {radius_m}")
        return cls(epsilon=level / radius_m)


@dataclass(frozen=True)
class GeoIndBudget:
    """A ``(r, epsilon, delta, n)``-geo-IND budget (Definition 3).

    Attributes:
        r: the indistinguishability radius in metres — any two true
            locations closer than ``r`` must be near-indistinguishable.
        epsilon: the privacy-loss bound over the whole output set.
        delta: the slack probability of the bounded guarantee.
        n: how many obfuscated locations are released simultaneously.
    """

    r: float
    epsilon: float
    delta: float
    n: int = 1

    def __post_init__(self) -> None:
        if self.r <= 0 or not math.isfinite(self.r):
            raise ValueError(f"r must be positive and finite, got {self.r}")
        if self.epsilon <= 0 or not math.isfinite(self.epsilon):
            raise ValueError(f"epsilon must be positive and finite, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.n < 1 or not isinstance(self.n, int):
            raise ValueError(f"n must be a positive integer, got {self.n}")

    def with_n(self, n: int) -> "GeoIndBudget":
        """The same (r, epsilon, delta) budget at a different fold count."""
        return GeoIndBudget(self.r, self.epsilon, self.delta, n)

    def split_for_composition(self) -> "GeoIndBudget":
        """The per-output budget under the plain composition theorem.

        Composing ``n`` independent ``(r, eps/n, delta/n, 1)`` releases
        yields ``(r, eps, delta, n)`` in total — the paper's second
        baseline spends its budget this way.
        """
        return GeoIndBudget(self.r, self.epsilon / self.n, self.delta / self.n, 1)
