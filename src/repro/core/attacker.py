"""The adversary interface: the canonical ``observe``/``estimate`` pair.

Mirror of :mod:`repro.core.mechanism`: just as every mechanism exposes
the scalar/columnar ``obfuscate``/``obfuscate_batch`` pair, every
attacker exposes one canonical surface instead of the ad-hoc
``infer_top_locations``/``infer_top1`` duck typing the fig6/ablation
drivers grew up with.

API stability — the canonical method pair
-----------------------------------------

The :class:`Attacker` protocol names the two entry points:

* ``observe(observations)`` / ``estimate(n)`` — the *longitudinal*
  pair: feed ``(m, 2)`` reported-coordinate arrays into the attacker's
  evidence buffer as they leak, then recover the ``n`` most supported
  location estimates from everything observed so far;
* ``estimate_xy(coords, n) -> List[Point]`` — the stateless batch fast
  path: one ``(m, 2)`` array in, the estimates out, no buffer touched.

``estimate`` must equal ``estimate_xy`` over the concatenated buffer —
an attacker's conclusion depends on *what* it saw, never on how the
observations were batched.  :class:`AttackerBase` implements the buffer
plumbing so an attacker only writes ``estimate_xy``.

The old driver-facing names served their one-release deprecation cycle
starting with this module: ``infer_top1`` (and ``KMeansAttack``'s
``infer_top_locations``) now forward here with a
:class:`DeprecationWarning`; ``MAPAttack``'s candidate-set method was
renamed ``map_candidate`` to free ``estimate`` for the protocol.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

import numpy as np

from repro.geo.point import Point

__all__ = ["Attacker", "AttackerBase"]


@runtime_checkable
class Attacker(Protocol):
    """The canonical attacker surface: observe/estimate, plus the batch path.

    Structural — any object with these members satisfies it; every
    shipped attacker (Algorithm 1 de-obfuscation, k-means baseline,
    temporal refinement, MAP estimator) does.
    """

    name: str

    def observe(self, observations: np.ndarray) -> None:
        """Append an ``(m, 2)`` reported-coordinate array to the evidence."""
        ...

    def estimate(self, n: int) -> List[Point]:
        """Up to ``n`` location estimates from everything observed."""
        ...

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """Batch fast path: estimates for one ``(m, 2)`` array, statelessly."""
        ...


class AttackerBase:
    """Evidence-buffer plumbing shared by the shipped attackers.

    Subclasses set :attr:`name` and implement :meth:`estimate_xy`;
    ``observe``/``estimate``/``reset`` come for free.  The buffer keeps
    the arrays as given and concatenates lazily, so repeated observe
    calls stay O(1) and ``estimate`` sees one contiguous array.
    """

    name: str = "attacker"

    def __init__(self) -> None:
        self._observed: List[np.ndarray] = []

    def observe(self, observations: np.ndarray) -> None:
        """Append an ``(m, 2)`` reported-coordinate array to the evidence."""
        coords = np.asarray(observations, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"expected (m, 2) array, got {coords.shape}")
        if len(coords):
            self._observed.append(coords)

    @property
    def observations(self) -> np.ndarray:
        """Everything observed so far as one ``(m, 2)`` array."""
        if not self._observed:
            return np.empty((0, 2), dtype=float)
        if len(self._observed) == 1:
            return self._observed[0]
        return np.concatenate(self._observed, axis=0)

    def reset(self) -> None:
        """Forget all buffered observations."""
        self._observed = []

    def estimate(self, n: int) -> List[Point]:
        """Up to ``n`` estimates over the concatenated evidence buffer."""
        return self.estimate_xy(self.observations, n)

    def estimate_xy(self, coords: np.ndarray, n: int) -> List[Point]:
        """Batch fast path; subclasses implement this one method."""
        raise NotImplementedError

    # Shared validation for estimate_xy implementations.
    @staticmethod
    def _check_request(coords: np.ndarray, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"expected (m, 2) array, got {coords.shape}")
        return coords
