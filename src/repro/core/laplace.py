"""The planar Laplace mechanism (one-time geo-IND).

This is the mechanism of Andres et al. (CCS 2013) that the paper's
longitudinal attack targets: each reported check-in is independently
perturbed with planar Laplace noise, which satisfies pure epsilon-geo-IND
*per report* but degrades under repeated observation of the same true
location (the composition theorem), which is exactly what the
de-obfuscation attack exploits.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.mechanism import LPPM
from repro.core.params import OneTimeBudget
from repro.core.sampling import (
    planar_laplace_radial_quantile,
    sample_planar_laplace_noise,
)
from repro.geo.point import Point

__all__ = ["PlanarLaplaceMechanism"]


class PlanarLaplaceMechanism(LPPM):
    """One-shot planar Laplace obfuscation with per-metre budget ``epsilon``.

    The paper instantiates it via the ``(l, r)`` convention, e.g.
    ``PlanarLaplaceMechanism.from_level(math.log(2), 200.0)`` for
    (ln(2)/200 m^-1)-geo-IND.
    """

    name = "planar-laplace"

    def __init__(self, budget: OneTimeBudget, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        self.budget = budget

    @classmethod
    def from_level(
        cls,
        level: float,
        radius_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "PlanarLaplaceMechanism":
        """Build from the paper's ``(l, r)`` parameterisation."""
        return cls(OneTimeBudget.from_level(level, radius_m), rng)

    @property
    def epsilon(self) -> float:
        """Per-metre privacy budget."""
        return self.budget.epsilon

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (always one)."""
        return 1

    def obfuscate(self, location: Point) -> List[Point]:
        """One planar-Laplace-perturbed copy of the location."""
        noise = sample_planar_laplace_noise(self.epsilon, 1, self.rng)[0]
        return [Point(location.x + float(noise[0]), location.y + float(noise[1]))]

    def obfuscate_batch(self, locations: np.ndarray) -> np.ndarray:
        """Vectorised independent obfuscation of an ``(n, 2)`` array.

        Used by the attack experiments, which perturb tens of thousands of
        check-ins per user population.
        """
        locations = np.asarray(locations, dtype=float)
        noise = sample_planar_laplace_noise(self.epsilon, len(locations), self.rng)
        return locations + noise

    def noise_tail_radius(self, alpha: float) -> float:
        """``r_alpha`` such that a perturbed point is farther with prob <= alpha."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return planar_laplace_radial_quantile(1.0 - alpha, self.epsilon)
