"""Per-user privacy budget ledger for the edge's obfuscation module.

A user's eta-frequent location set changes over time (new home, new job).
Every *new* top location the edge pins consumes one (r, eps, delta, n)
release, and those releases compose: the total exposure after pinning k
distinct locations is (k*eps, k*delta) by basic composition (each pinned
set is about a different secret location, but a cautious deployment
budgets them jointly).  The ledger makes that spend explicit and lets a
deployment cap it — once the cap is reached, further pinning is refused
and the edge must fall back to coarser protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.params import GeoIndBudget
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = ["BudgetExceededError", "LedgerEntry", "PrivacyLedger"]


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push the ledger past its cap."""


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded budget spend."""

    budget: GeoIndBudget
    label: str
    timestamp: float


@dataclass
class PrivacyLedger:
    """Tracks cumulative (eps, delta) spend under basic composition.

    Args:
        max_epsilon: optional cap on total epsilon; ``spend`` raises
            :class:`BudgetExceededError` beyond it.
        max_delta: optional cap on total delta.
    """

    max_epsilon: Optional[float] = None
    max_delta: Optional[float] = None
    entries: List[LedgerEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_epsilon is not None and self.max_epsilon <= 0:
            raise ValueError("max_epsilon must be positive when set")
        if self.max_delta is not None and not 0 < self.max_delta < 1:
            raise ValueError("max_delta must be in (0, 1) when set")

    @property
    def total_epsilon(self) -> float:
        """Sum of epsilon over all recorded spends."""
        return sum(e.budget.epsilon for e in self.entries)

    @property
    def total_delta(self) -> float:
        """Sum of delta over all recorded spends."""
        return sum(e.budget.delta for e in self.entries)

    @property
    def spends(self) -> int:
        """Number of recorded budget spends."""
        return len(self.entries)

    def can_spend(self, budget: GeoIndBudget) -> bool:
        """Would this spend stay within both caps?"""
        if self.max_epsilon is not None:
            if self.total_epsilon + budget.epsilon > self.max_epsilon + 1e-12:
                return False
        if self.max_delta is not None:
            if self.total_delta + budget.delta > self.max_delta + 1e-15:
                return False
        return True

    def spend(
        self, budget: GeoIndBudget, label: str = "", timestamp: float = 0.0
    ) -> LedgerEntry:
        """Record a spend, raising if it would exceed a cap."""
        if not self.can_spend(budget):
            raise BudgetExceededError(
                f"spend of eps={budget.epsilon}, delta={budget.delta} would "
                f"exceed the cap (spent eps={self.total_epsilon:.4g}/"
                f"{self.max_epsilon}, delta={self.total_delta:.3g}/"
                f"{self.max_delta})"
            )
        entry = LedgerEntry(budget=budget, label=label, timestamp=timestamp)
        self.entries.append(entry)
        if _obs_enabled():
            # Budget gauges accumulate exactly what the ledger records, so
            # the observability totals always equal the ledger sums.
            registry = _obs_registry()
            registry.gauge("privacy.epsilon_spent").add(budget.epsilon)
            registry.gauge("privacy.delta_spent").add(budget.delta)
            registry.counter("privacy.ledger_spends").inc()
        return entry

    def to_state(self) -> Dict[str, Any]:
        """The ledger's full state as JSON-able primitives.

        The state is a *record*, not a transcript: restoring it via
        :meth:`from_state` reconstructs the entries directly and never
        replays :meth:`spend`, so a checkpoint/restore round trip adds
        nothing to the ``privacy.epsilon_spent``/``delta_spent`` gauges —
        a restored ledger must not double-charge the observability audit.
        """
        return {
            "max_epsilon": self.max_epsilon,
            "max_delta": self.max_delta,
            "entries": [
                [
                    e.budget.r,
                    e.budget.epsilon,
                    e.budget.delta,
                    e.budget.n,
                    e.label,
                    e.timestamp,
                ]
                for e in self.entries
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "PrivacyLedger":
        """Rebuild a ledger from :meth:`to_state` output (no gauge emission)."""
        ledger = cls(
            max_epsilon=state.get("max_epsilon"),
            max_delta=state.get("max_delta"),
        )
        for r, epsilon, delta, n, label, timestamp in state.get("entries", []):
            # Append directly: these spends were already charged (and
            # metered) when they first happened.
            ledger.entries.append(
                LedgerEntry(
                    budget=GeoIndBudget(
                        r=float(r), epsilon=float(epsilon), delta=float(delta), n=int(n)
                    ),
                    label=str(label),
                    timestamp=float(timestamp),
                )
            )
        return ledger

    def remaining_epsilon(self) -> float:
        """Epsilon headroom (infinite when uncapped)."""
        if self.max_epsilon is None:
            return float("inf")
        return max(0.0, self.max_epsilon - self.total_epsilon)

    def remaining_spends(self, budget: GeoIndBudget) -> int:
        """How many more identical spends fit under the caps."""
        import math

        candidates = []
        if self.max_epsilon is not None:
            candidates.append(
                math.floor(
                    (self.max_epsilon - self.total_epsilon) / budget.epsilon + 1e-9
                )
            )
        if self.max_delta is not None:
            candidates.append(
                math.floor((self.max_delta - self.total_delta) / budget.delta + 1e-9)
            )
        if not candidates:
            return 2**31 - 1
        return max(0, min(candidates))
