"""The 1-fold and n-fold Gaussian geo-IND mechanisms (the paper's LPPM).

The n-fold Gaussian mechanism (Definition 7) releases ``n`` obfuscated
locations simultaneously for one true location, each the true location plus
independent isotropic Gaussian noise with scale calibrated by Theorem 2:

    sigma = (sqrt(n) * r / eps) * sqrt(ln(1 / delta^2) + eps)

The key insight is that the sample mean of the ``n`` outputs is a
sufficient statistic for the true location and is distributed
``N(p, sigma^2 / n)``, so the whole release is as private as a single
Gaussian output at scale ``sigma / sqrt(n)`` — a sqrt(n) saving over plain
composition.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.calibration import gaussian_sigma_nfold, gaussian_sigma_single
from repro.core.mechanism import LPPM
from repro.core.params import GeoIndBudget
from repro.core.sampling import rayleigh_quantile, sample_gaussian_noise
from repro.geo.point import Point

__all__ = ["GaussianMechanism", "NFoldGaussianMechanism"]


class GaussianMechanism(LPPM):
    """The 1-fold Gaussian mechanism satisfying (r, eps, delta, 1)-geo-IND."""

    name = "gaussian-1fold"

    def __init__(self, budget: GeoIndBudget, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        if budget.n != 1:
            raise ValueError(
                f"GaussianMechanism is single-output; budget has n={budget.n} "
                "(use NFoldGaussianMechanism)"
            )
        self.budget = budget
        self.sigma = gaussian_sigma_single(budget.r, budget.epsilon, budget.delta)

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (always one)."""
        return 1

    def obfuscate(self, location: Point) -> List[Point]:
        """One Gaussian-perturbed copy of the location."""
        noise = sample_gaussian_noise(self.sigma, 1, self.rng)[0]
        return [Point(location.x + float(noise[0]), location.y + float(noise[1]))]

    def obfuscate_batch(self, locations: np.ndarray) -> np.ndarray:
        """Vectorised independent obfuscation of an ``(m, 2)`` array.

        One noise draw for the whole batch instead of one per location —
        the fast path the trace-obfuscation helpers use for nomadic
        check-in streams.
        """
        locations = np.asarray(locations, dtype=float)
        noise = sample_gaussian_noise(self.sigma, len(locations), self.rng)
        return locations + noise

    def noise_tail_radius(self, alpha: float) -> float:
        """Rayleigh tail quantile of the noise radius."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return rayleigh_quantile(1.0 - alpha, self.sigma)


class NFoldGaussianMechanism(LPPM):
    """The paper's n-fold Gaussian mechanism (Definition 7 + Theorem 2).

    One call to :meth:`obfuscate` draws ``n`` i.i.d. Gaussian-perturbed
    copies of the true location, all under a single (r, eps, delta, n)
    budget.  The outputs are intended to be generated *once* per top
    location and pinned in the obfuscation table for permanent reuse —
    that permanence is what defeats the longitudinal attacker.
    """

    name = "gaussian-nfold"

    def __init__(self, budget: GeoIndBudget, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        self.budget = budget
        self.sigma = gaussian_sigma_nfold(
            budget.r, budget.epsilon, budget.delta, budget.n
        )

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (the budget's n)."""
        return self.budget.n

    @property
    def posterior_sigma(self) -> float:
        """Scale of the true location's posterior given the n candidates.

        The sample mean of the candidates is the sufficient statistic and
        is distributed N(p, sigma^2/n), so the posterior of the true
        location given the released set has scale ``sigma / sqrt(n)`` —
        this is the sigma the output-selection density (Eq. 17) must use.
        """
        import math

        return self.sigma / math.sqrt(self.budget.n)

    def obfuscate(self, location: Point) -> List[Point]:
        """The n i.i.d. Gaussian-perturbed candidates (Definition 7)."""
        noise = sample_gaussian_noise(self.sigma, self.budget.n, self.rng)
        return [
            Point(location.x + float(dx), location.y + float(dy)) for dx, dy in noise
        ]

    def obfuscate_batch(self, locations: np.ndarray) -> np.ndarray:
        """Candidate sets for ``m`` locations as one ``(m, n, 2)`` array.

        Draws all ``m * n`` noise offsets in a single batched call — the
        fast path for pinning every top location of a population at once
        (Table II's workload at full scale).
        """
        locations = np.asarray(locations, dtype=float)
        m = len(locations)
        n = self.budget.n
        noise = sample_gaussian_noise(self.sigma, m * n, self.rng)
        return locations[:, None, :] + noise.reshape(m, n, 2)

    def noise_tail_radius(self, alpha: float) -> float:
        """Tail radius of a *single* output's noise (Rayleigh(sigma))."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return rayleigh_quantile(1.0 - alpha, self.sigma)

    def mean_tail_radius(self, alpha: float) -> float:
        """Tail radius of the output *mean* — the sufficient statistic.

        The mean is N(p, sigma^2/n), so its radius is
        Rayleigh(sigma / sqrt(n)); this is the quantity the privacy proof
        (and the optimal informed attacker) actually sees.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        import math

        return rayleigh_quantile(1.0 - alpha, self.sigma / math.sqrt(self.budget.n))
