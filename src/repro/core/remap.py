"""Bayesian posterior remapping of obfuscated locations.

The paper's related work (Bordenabe et al. CCS'14, Chatzikokolakis et al.
PETS'17) improves the *utility* of a geo-IND release by post-processing:
given the reported location ``z``, a public prior over plausible user
locations, and the mechanism's noise likelihood, replace ``z`` with the
point minimising the posterior expected loss.  Remapping is pure
post-processing, so it costs no privacy budget.

Two standard loss functions are provided:

* squared Euclidean loss — the optimum is the posterior mean;
* Euclidean (absolute) loss — the optimum is the posterior geometric
  median, computed with Weiszfeld's algorithm.

This module also enables an instructive negative result reproduced in the
benches: remapping *concentrates* repeated reports of the same true
location, so while it improves per-report utility it makes the
longitudinal attack strictly easier — post-processing helps utility, only
the n-fold permanent release helps longitudinal privacy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.geo.point import Point, points_to_array

__all__ = [
    "LocationPrior",
    "BayesianRemap",
    "geometric_median",
]

#: log-likelihood callback: (reported (2,), support (k, 2)) -> (k,) values.
NoiseLogLikelihood = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class LocationPrior:
    """A discrete prior over plausible true locations.

    In the LBA setting the prior comes from public knowledge: population
    density, road networks, or (for the strongest adversary/remapper) the
    user's own historical profile.
    """

    support: np.ndarray  # (k, 2) candidate coordinates
    weights: np.ndarray  # (k,) probabilities

    def __post_init__(self) -> None:
        support = np.asarray(self.support, dtype=float)
        weights = np.asarray(self.weights, dtype=float)
        if support.ndim != 2 or support.shape[1] != 2:
            raise ValueError(f"support must be (k, 2), got {support.shape}")
        if weights.shape != (len(support),):
            raise ValueError("weights must have one entry per support point")
        if len(support) == 0:
            raise ValueError("prior support must be non-empty")
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative with positive mass")
        object.__setattr__(self, "support", support)
        object.__setattr__(self, "weights", weights / weights.sum())

    @classmethod
    def uniform_grid(
        cls, center: Point, half_extent: float, step: float
    ) -> "LocationPrior":
        """A uniform prior on a square grid around ``center``."""
        if half_extent <= 0 or step <= 0:
            raise ValueError("half_extent and step must be positive")
        offsets = np.arange(-half_extent, half_extent + step / 2, step)
        xx, yy = np.meshgrid(center.x + offsets, center.y + offsets)
        support = np.column_stack([xx.ravel(), yy.ravel()])
        return cls(support=support, weights=np.ones(len(support)))

    @classmethod
    def from_profile(cls, locations: Sequence[Point], frequencies: Sequence[float]) -> "LocationPrior":
        """A prior proportional to a (public or leaked) location profile."""
        return cls(
            support=points_to_array(locations),
            weights=np.asarray(list(frequencies), dtype=float),
        )


def geometric_median(
    points: np.ndarray,
    weights: np.ndarray,
    tol: float = 1e-6,
    max_iter: int = 200,
) -> np.ndarray:
    """Weighted geometric median via Weiszfeld's fixed-point iteration."""
    points = np.asarray(points, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if len(points) == 0:
        raise ValueError("need at least one point")
    estimate = np.average(points, axis=0, weights=weights)
    for _ in range(max_iter):
        d = np.hypot(points[:, 0] - estimate[0], points[:, 1] - estimate[1])
        at_point = d < 1e-12
        if at_point.any():
            # The median coincides with a support point of positive weight.
            if weights[at_point].sum() >= weights.sum() / 2:
                return points[at_point][0]
            d = np.where(at_point, 1e-12, d)
        w = weights / d
        new_estimate = (points * w[:, None]).sum(axis=0) / w.sum()
        if np.hypot(*(new_estimate - estimate)) < tol:
            return new_estimate
        estimate = new_estimate
    return estimate


class BayesianRemap:
    """Posterior expected-loss remapping of reported locations."""

    def __init__(
        self,
        prior: LocationPrior,
        log_likelihood: NoiseLogLikelihood,
        loss: str = "squared",
    ) -> None:
        if loss not in ("squared", "euclidean"):
            raise ValueError(f"unknown loss: {loss!r} (use 'squared' or 'euclidean')")
        self.prior = prior
        self.loss = loss
        self._loglik = log_likelihood

    def posterior(self, reported: Point) -> np.ndarray:
        """Posterior over the prior support given the reported location."""
        z = np.array([reported.x, reported.y])
        log_post = self._loglik(z, self.prior.support) + np.log(self.prior.weights)
        log_post -= log_post.max()
        post = np.exp(log_post)
        return post / post.sum()

    def remap(self, reported: Point) -> Point:
        """The posterior-optimal replacement for the reported location."""
        post = self.posterior(reported)
        if self.loss == "squared":
            optimum = (self.prior.support * post[:, None]).sum(axis=0)
        else:
            optimum = geometric_median(self.prior.support, post)
        return Point(float(optimum[0]), float(optimum[1]))

    def remap_batch(self, reported: Sequence[Point]) -> list:
        """Remap a stream of reports (each independently — post-processing)."""
        return [self.remap(z) for z in reported]


def gaussian_noise_loglik(sigma: float) -> NoiseLogLikelihood:
    """Noise model for remapping Gaussian-perturbed reports."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")

    def loglik(z: np.ndarray, support: np.ndarray) -> np.ndarray:
        d2 = (support[:, 0] - z[0]) ** 2 + (support[:, 1] - z[1]) ** 2
        return -d2 / (2.0 * sigma * sigma)

    return loglik


def planar_laplace_noise_loglik(epsilon: float) -> NoiseLogLikelihood:
    """Noise model for remapping planar-Laplace-perturbed reports."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    def loglik(z: np.ndarray, support: np.ndarray) -> np.ndarray:
        d = np.hypot(support[:, 0] - z[0], support[:, 1] - z[1])
        return -epsilon * d

    return loglik


__all__ += ["gaussian_noise_loglik", "planar_laplace_noise_loglik"]
