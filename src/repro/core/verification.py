"""Numerical verification of the (r, eps, delta, n)-geo-IND guarantee.

The paper's proof route (Theorems 1-2) reduces the privacy of the n-fold
Gaussian release to the privacy of the output *mean*, which is an
isotropic planar Gaussian at scale ``sigma / sqrt(n)``.  For a pair of
true locations at distance ``d``, the privacy loss of an isotropic
Gaussian is one-dimensional along the line joining them, and the tight
trade-off has the classical closed form (Balle & Wang 2018):

    delta(eps) = Phi(d/(2s) - eps*s/d) - e^eps * Phi(-d/(2s) - eps*s/d)

with ``s`` the Gaussian scale.  This module evaluates that expression so
tests can check, for every calibrated mechanism, that the worst-case pair
(``d = r``) indeed satisfies the claimed (eps, delta) bound — and an
empirical histogram-based verifier double-checks the bound on actual
samples, catching calibration or sampler bugs the analytic check would
miss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.sampling import sample_gaussian_noise

__all__ = [
    "gaussian_delta",
    "verify_gaussian_geo_ind",
    "EmpiricalPrivacyReport",
    "empirical_privacy_check",
]


def gaussian_delta(distance: float, scale: float, epsilon: float) -> float:
    """Tight delta(eps) for distinguishing two Gaussians ``distance`` apart.

    Both hypotheses are isotropic planar Gaussians with the given scale;
    the privacy loss is Gaussian along the separating direction, yielding
    the one-dimensional expression above.  Returns 0 for coincident
    centres.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if distance == 0:
        return 0.0
    a = distance / (2.0 * scale)
    b = epsilon * scale / distance
    value = norm.cdf(a - b) - math.exp(epsilon) * norm.cdf(-a - b)
    return max(0.0, float(value))


def verify_gaussian_geo_ind(
    r: float, epsilon: float, delta: float, n: int, sigma: float
) -> bool:
    """Analytic check: does an n-fold Gaussian at ``sigma`` meet the budget?

    By sufficiency, only the output mean (scale ``sigma/sqrt(n)``) matters,
    and the worst-case neighbouring pair is at the full radius ``d = r``.
    """
    mean_scale = sigma / math.sqrt(n)
    return gaussian_delta(r, mean_scale, epsilon) <= delta


@dataclass(frozen=True)
class EmpiricalPrivacyReport:
    """Result of a sampled likelihood-ratio privacy check."""

    epsilon: float
    delta_bound: float
    estimated_delta: float
    samples: int

    @property
    def satisfied(self) -> bool:
        """Whether the empirical estimate meets the delta bound."""
        return self.estimated_delta <= self.delta_bound

    def __str__(self) -> str:  # pragma: no cover - formatting only
        status = "OK" if self.satisfied else "VIOLATED"
        return (
            f"empirical geo-IND check [{status}]: "
            f"estimated delta {self.estimated_delta:.2e} vs bound "
            f"{self.delta_bound:.2e} at eps={self.epsilon} ({self.samples} samples)"
        )


def empirical_privacy_check(
    r: float,
    epsilon: float,
    delta: float,
    n: int,
    sigma: float,
    samples: int = 200_000,
    rng: Optional[np.random.Generator] = None,
) -> EmpiricalPrivacyReport:
    """Monte-Carlo estimate of delta for the n-fold release's sufficient statistic.

    Draws output means under the worst-case pair of r-neighbouring true
    locations and estimates ``E[max(0, 1 - e^eps / L)]`` where ``L`` is the
    likelihood ratio — the standard sampled form of the hockey-stick
    divergence.  This exercises the actual sampler (Algorithm 3 polar
    draws), not just the formula.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if samples < 1:
        raise ValueError("samples must be positive")
    mean_scale = sigma / math.sqrt(n)
    # Worst case: p0 at origin, p1 at (r, 0).  Simulate the mean directly by
    # averaging n Algorithm-3 noise draws.
    noise = sample_gaussian_noise(sigma, samples * n, rng).reshape(samples, n, 2)
    means = noise.mean(axis=1)  # distributed N(0, sigma^2/n)
    # Log likelihood ratio log f0(x)/f1(x) for isotropic Gaussians.
    d0 = (means ** 2).sum(axis=1)
    d1 = ((means[:, 0] - r) ** 2) + (means[:, 1] ** 2)
    log_ratio = (d1 - d0) / (2.0 * mean_scale ** 2)
    # Hockey-stick: E_{x~f0}[ (1 - e^eps / ratio)_+ ] = E[(1 - e^(eps - log_ratio))_+]
    contrib = 1.0 - np.exp(np.minimum(epsilon - log_ratio, 0.0))
    estimated = float(np.maximum(contrib, 0.0).mean())
    return EmpiricalPrivacyReport(
        epsilon=epsilon,
        delta_bound=delta,
        estimated_delta=estimated,
        samples=samples,
    )
