"""Polar inverse-CDF samplers for planar noise distributions.

Both mechanisms in the paper draw planar noise in polar coordinates
(Algorithm 3): the angle is uniform on [0, 2*pi) and the radius follows
the distribution's radial marginal, sampled by inverting its CDF.

* Isotropic planar Gaussian: the radius is Rayleigh(sigma), with CDF
  ``F(r) = 1 - exp(-r^2 / (2 sigma^2))`` (paper Eq. 15).
* Planar Laplace (geo-IND): the radius has CDF
  ``C_eps(r) = 1 - (1 + eps r) e^{-eps r}``, inverted with the
  Lambert-W function's -1 branch, as in Andres et al. 2013.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.special import lambertw

#: Below this quantile level the planar-Laplace inversion switches from
#: Lambert-W to its branch-point series (better conditioned near p = 0).
_SMALL_P_SERIES_THRESHOLD = 1e-6

__all__ = [
    "rayleigh_quantile",
    "rayleigh_cdf",
    "rayleigh_radius_from_uniform",
    "sample_gaussian_noise",
    "planar_laplace_radial_cdf",
    "planar_laplace_radial_quantile",
    "planar_laplace_radius_from_uniform",
    "sample_planar_laplace_noise",
    "polar_to_cartesian",
]


def rayleigh_cdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """CDF of the radial distance of an isotropic planar Gaussian (Eq. 15)."""
    r = np.asarray(r, dtype=float)
    return 1.0 - np.exp(-(r * r) / (2.0 * sigma * sigma))


def rayleigh_quantile(p: float, sigma: float) -> float:
    """Inverse of :func:`rayleigh_cdf`: ``r = sigma * sqrt(-2 ln(1 - p))``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"quantile level must be in [0, 1), got {p}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return sigma * math.sqrt(-2.0 * math.log1p(-p))


def polar_to_cartesian(radius: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Convert polar noise samples into an ``(n, 2)`` Cartesian offset array."""
    radius = np.asarray(radius, dtype=float)
    theta = np.asarray(theta, dtype=float)
    return np.column_stack([radius * np.cos(theta), radius * np.sin(theta)])


def rayleigh_radius_from_uniform(s: np.ndarray, sigma: float) -> np.ndarray:
    """Invert the Rayleigh CDF elementwise: ``r = sigma * sqrt(-2 log1p(-s))``.

    The deterministic half of :func:`sample_gaussian_noise`, factored out
    so population-level kernels can draw the uniforms from per-user
    streams and run this transform batched over every user at once while
    staying bit-identical (the expression is purely elementwise).
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    s = np.asarray(s, dtype=float)
    return sigma * np.sqrt(-2.0 * np.log1p(-s))


def sample_gaussian_noise(
    sigma: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` isotropic planar Gaussian offsets via Algorithm 3.

    Samples the angle uniformly and the radius by inverting the Rayleigh
    CDF, exactly the procedure the paper prescribes (rather than calling a
    library normal sampler) so that the implementation matches the text.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    theta = rng.uniform(0.0, 2.0 * math.pi, size)
    s = rng.uniform(0.0, 1.0, size)
    radius = rayleigh_radius_from_uniform(s, sigma)
    return polar_to_cartesian(radius, theta)


def planar_laplace_radial_cdf(r: np.ndarray, epsilon: float) -> np.ndarray:
    """``C_eps(r) = 1 - (1 + eps r) e^{-eps r}`` — radial CDF of planar Laplace."""
    r = np.asarray(r, dtype=float)
    return 1.0 - (1.0 + epsilon * r) * np.exp(-epsilon * r)


def planar_laplace_radial_quantile(p: float, epsilon: float) -> float:
    """Invert the planar-Laplace radial CDF at level ``p``.

    Solving ``(1 + eps r) e^{-eps r} = 1 - p`` gives
    ``r = -(1/eps) * (W_{-1}((p - 1)/e) + 1)`` on the -1 branch of the
    Lambert-W function (Andres et al. 2013, Theorem 4.2).
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"quantile level must be in [0, 1), got {p}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if p < _SMALL_P_SERIES_THRESHOLD:
        # Near p = 0 the Lambert-W argument sits at the -1/e branch point,
        # where (p - 1)/e loses p's low bits and scipy's W_{-1} degrades
        # (below p ~ 5e-9 it returns r with C(r) off by orders of
        # magnitude).  The branch-point series of W_{-1} inverts
        # C_eps(r) = p directly: r = (s + s^2/3 + 11 s^3/72)/eps with
        # s = sqrt(2p); truncation error is O(s^4), so at the 1e-6
        # threshold both branches agree to ~1e-10 relative.
        s = math.sqrt(2.0 * p)
        return (s + s * s / 3.0 + 11.0 * s * s * s / 72.0) / epsilon
    w = lambertw((p - 1.0) / math.e, k=-1)
    return float(-(w.real + 1.0) / epsilon)


def planar_laplace_radius_from_uniform(p: np.ndarray, epsilon: float) -> np.ndarray:
    """Invert the planar-Laplace radial CDF elementwise via Lambert-W.

    The deterministic half of :func:`sample_planar_laplace_noise`; see
    :func:`rayleigh_radius_from_uniform` for why it is factored out.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    p = np.asarray(p, dtype=float)
    w = lambertw((p - 1.0) / math.e, k=-1)
    return np.asarray(-(w.real + 1.0) / epsilon, dtype=float)


def sample_planar_laplace_noise(
    epsilon: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` planar Laplace offsets with per-metre budget ``epsilon``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    theta = rng.uniform(0.0, 2.0 * math.pi, size)
    p = rng.uniform(0.0, 1.0, size)
    # Vectorised Lambert-W inversion over the batch.
    radius = planar_laplace_radius_from_uniform(p, epsilon)
    return polar_to_cartesian(radius, theta)
