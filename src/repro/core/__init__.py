"""Privacy core: geo-IND budgets, mechanisms, selection, accounting, verification."""

from repro.core.accounting import (
    LongitudinalExposureAccountant,
    SigmaComparison,
    composition_vs_sufficient_statistic,
)
from repro.core.attacker import Attacker, AttackerBase
from repro.core.baselines import NaivePostProcessingMechanism, PlainCompositionMechanism
from repro.core.calibration import (
    gaussian_sigma_composition,
    gaussian_sigma_nfold,
    gaussian_sigma_single,
    sigma_for_budget,
)
from repro.core.gaussian import GaussianMechanism, NFoldGaussianMechanism
from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import LPPM, Mechanism, default_rng
from repro.core.params import GeoIndBudget, OneTimeBudget
from repro.core.posterior import (
    OutputSelector,
    PosteriorSelector,
    UniformSelector,
    posterior_density,
    posterior_weights,
)
from repro.core.sampling import (
    planar_laplace_radial_cdf,
    planar_laplace_radial_quantile,
    rayleigh_cdf,
    rayleigh_quantile,
    sample_gaussian_noise,
    sample_planar_laplace_noise,
)
from repro.core.verification import (
    EmpiricalPrivacyReport,
    empirical_privacy_check,
    gaussian_delta,
    verify_gaussian_geo_ind,
)

__all__ = [
    "LPPM",
    "Attacker",
    "AttackerBase",
    "Mechanism",
    "default_rng",
    "GeoIndBudget",
    "OneTimeBudget",
    "PlanarLaplaceMechanism",
    "GaussianMechanism",
    "NFoldGaussianMechanism",
    "NaivePostProcessingMechanism",
    "PlainCompositionMechanism",
    "OutputSelector",
    "PosteriorSelector",
    "UniformSelector",
    "posterior_density",
    "posterior_weights",
    "gaussian_sigma_single",
    "gaussian_sigma_nfold",
    "gaussian_sigma_composition",
    "sigma_for_budget",
    "LongitudinalExposureAccountant",
    "SigmaComparison",
    "composition_vs_sufficient_statistic",
    "gaussian_delta",
    "verify_gaussian_geo_ind",
    "empirical_privacy_check",
    "EmpiricalPrivacyReport",
    "rayleigh_cdf",
    "rayleigh_quantile",
    "planar_laplace_radial_cdf",
    "planar_laplace_radial_quantile",
    "sample_gaussian_noise",
    "sample_planar_laplace_noise",
]

from repro.core.discretization import (
    TruncatedDiscreteLaplaceMechanism,
    discretization_adjusted_epsilon,
    snap_to_grid,
)
from repro.core.ledger import BudgetExceededError, LedgerEntry, PrivacyLedger
from repro.core.remap import (
    BayesianRemap,
    LocationPrior,
    gaussian_noise_loglik,
    geometric_median,
    planar_laplace_noise_loglik,
)

__all__ += [
    "TruncatedDiscreteLaplaceMechanism",
    "discretization_adjusted_epsilon",
    "snap_to_grid",
    "PrivacyLedger",
    "LedgerEntry",
    "BudgetExceededError",
    "BayesianRemap",
    "LocationPrior",
    "geometric_median",
    "gaussian_noise_loglik",
    "planar_laplace_noise_loglik",
]
