"""Privacy accounting: why one-time geo-IND degrades and n-fold does not.

Two accountants are provided:

* :class:`LongitudinalExposureAccountant` tracks the cumulative geo-IND
  budget an attacker accrues by observing repeated independent
  obfuscations of the *same* true location — the composition-theorem view
  that motivates the longitudinal attack (k observations of an
  epsilon-geo-IND release yield k*epsilon overall).
* :func:`composition_vs_sufficient_statistic` quantifies the noise saving
  of the paper's sufficient-statistic analysis over plain composition for
  the same (r, eps, delta, n) target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.calibration import gaussian_sigma_composition, gaussian_sigma_nfold
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import get_registry as _obs_registry

__all__ = [
    "LongitudinalExposureAccountant",
    "SigmaComparison",
    "composition_vs_sufficient_statistic",
]


@dataclass
class LongitudinalExposureAccountant:
    """Cumulative pure geo-IND loss for repeated independent releases.

    Each observation of an independently perturbed report of the same true
    location adds its per-release epsilon (per metre) to the total by the
    sequential composition theorem.  ``effective_level(r)`` converts the
    running total back to the paper's ``l = eps * r`` convention, making
    the decay of protection human-readable: after 1,000 observations of a
    (ln(2)/200)-geo-IND release, the effective level at 200 m is
    1000*ln(2) — no protection at all in practice.
    """

    epsilons: List[float] = field(default_factory=list)

    def observe(self, epsilon_per_m: float, count: int = 1) -> None:
        """Record ``count`` observations of an epsilon-per-metre release."""
        if epsilon_per_m <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon_per_m}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.epsilons.extend([epsilon_per_m] * count)
        if _obs_enabled():
            registry = _obs_registry()
            registry.gauge("privacy.longitudinal_epsilon_per_m").add(
                epsilon_per_m * count
            )
            registry.counter("privacy.longitudinal_observations").inc(count)

    @property
    def total_epsilon(self) -> float:
        """Total per-metre budget consumed (sequential composition)."""
        return float(sum(self.epsilons))

    @property
    def observations(self) -> int:
        """Number of recorded observations."""
        return len(self.epsilons)

    def effective_level(self, radius_m: float) -> float:
        """Effective privacy level ``l`` at ``radius_m`` after all observations."""
        if radius_m <= 0:
            raise ValueError(f"radius must be positive, got {radius_m}")
        return self.total_epsilon * radius_m

    def reset(self) -> None:
        """Forget all recorded observations."""
        self.epsilons.clear()

    def to_state(self) -> List[float]:
        """The accountant's state (the observation list) as primitives."""
        return [float(e) for e in self.epsilons]

    @classmethod
    def from_state(cls, state: List[float]) -> "LongitudinalExposureAccountant":
        """Rebuild an accountant from :meth:`to_state` output.

        Like :meth:`PrivacyLedger.from_state <repro.core.ledger.PrivacyLedger.from_state>`,
        restoration bypasses :meth:`observe` so the longitudinal gauges are
        not re-emitted for exposure that was already metered.
        """
        accountant = cls()
        accountant.epsilons.extend(float(e) for e in state)
        return accountant


@dataclass(frozen=True)
class SigmaComparison:
    """Noise scales required by the two analyses for one (r,eps,delta,n) target."""

    n: int
    sigma_sufficient_statistic: float
    sigma_plain_composition: float

    @property
    def saving_factor(self) -> float:
        """How much less noise the sufficient-statistic analysis needs."""
        return self.sigma_plain_composition / self.sigma_sufficient_statistic


def composition_vs_sufficient_statistic(
    r: float, epsilon: float, delta: float, n: int
) -> SigmaComparison:
    """Compare per-output sigma under the two proofs for the same target.

    The sufficient-statistic sigma grows as sqrt(n) while the composition
    sigma grows roughly as n * sqrt(ln n), so the saving factor grows
    roughly as sqrt(n) — the quantitative core of the paper's Theorem 2.
    """
    return SigmaComparison(
        n=n,
        sigma_sufficient_statistic=gaussian_sigma_nfold(r, epsilon, delta, n),
        sigma_plain_composition=gaussian_sigma_composition(r, epsilon, delta, n),
    )
