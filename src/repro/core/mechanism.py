"""The location privacy-preserving mechanism (LPPM) interface.

Every mechanism in this library maps one true location to a *set* of
obfuscated output locations (a set of size one for the classic one-shot
mechanisms).  The interface also exposes the tail quantile of the noise
radius, which both the utility analysis and the *attacker* use: the
de-obfuscation attack's trimming radius ``r_alpha`` (paper Eq. 4) is the
radius beyond which an obfuscated check-in is implausible at confidence
``alpha``.

API stability — the canonical method pair
-----------------------------------------

The :class:`Mechanism` protocol names the two entry points every
mechanism exposes, scalar and columnar:

* ``obfuscate(location) -> List[Point]`` — one true location in, its
  output set out;
* ``obfuscate_batch(locations) -> np.ndarray`` — an ``(m, 2)``
  coordinate array in, the stacked outputs out: ``(m, 2)`` for
  single-output mechanisms, ``(m, n, 2)`` for n-fold ones.

``obfuscate_batch`` is the only columnar entry point (the former
``NFoldGaussianMechanism.obfuscate_many`` alias served its one-release
deprecation cycle and has been removed).  The trace-level helpers
:func:`repro.datagen.obfuscate.one_time_obfuscate_xy` and
:func:`repro.datagen.obfuscate.permanent_obfuscate_xy` are the documented
fast-path entry points *over* this protocol — they route whole coordinate
streams through ``obfuscate_batch`` while preserving the scalar path's
RNG call order bit-for-bit; the population kernels in
:mod:`repro.kernels` go one level further and stream whole CSR shards.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.geo.point import Point

__all__ = ["LPPM", "Mechanism", "default_rng"]


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """The library-wide RNG constructor (PCG64 via numpy's default)."""
    return np.random.default_rng(seed)


@runtime_checkable
class Mechanism(Protocol):
    """The canonical mechanism surface: the scalar/columnar method pair.

    Structural — any object with these members satisfies it; every
    shipped mechanism (Gaussian, n-fold Gaussian, planar Laplace, and the
    discretized wrapper) does.  ``obfuscate_batch`` must consume its RNG
    in one batched draw whose stream matches the equivalent sequence of
    scalar ``obfuscate`` calls, so columnar pipelines stay bit-identical
    to object pipelines at the same seed.
    """

    name: str

    @property
    def n_outputs(self) -> int:
        """How many obfuscated locations one obfuscate() call returns."""
        ...

    def obfuscate(self, location: Point) -> List[Point]:
        """The mechanism's output set for one true location."""
        ...

    def obfuscate_batch(self, locations: np.ndarray) -> np.ndarray:
        """Stacked outputs for an ``(m, 2)`` coordinate array.

        Shape ``(m, 2)`` for single-output mechanisms, ``(m, n, 2)`` for
        n-fold ones.
        """
        ...


class LPPM(abc.ABC):
    """Abstract base for location privacy-preserving mechanisms.

    Subclasses implement :meth:`obfuscate`, producing ``self.n_outputs``
    obfuscated locations for one true location, and
    :meth:`noise_tail_radius`, the radius such that a single output falls
    farther than it from the true location with probability at most
    ``alpha``.
    """

    #: Human-readable mechanism name used in reports and benchmarks.
    name: str = "lppm"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        # Seeded fallback: library code must stay reproducible run to run;
        # callers wanting fresh entropy pass their own Generator.
        self._rng = rng if rng is not None else default_rng(0)

    @property
    def rng(self) -> np.random.Generator:
        """The Generator this mechanism draws from."""
        return self._rng

    def reseed(self, seed: int) -> None:
        """Replace the mechanism's RNG (for reproducible experiments)."""
        self._rng = default_rng(seed)

    @property
    @abc.abstractmethod
    def n_outputs(self) -> int:
        """How many obfuscated locations one call to obfuscate() returns."""

    @abc.abstractmethod
    def obfuscate(self, location: Point) -> List[Point]:
        """Produce the mechanism's obfuscated output set for one location."""

    @abc.abstractmethod
    def noise_tail_radius(self, alpha: float) -> float:
        """Radius r_alpha with ``Pr[dist(output, truth) > r_alpha] <= alpha``."""

    def obfuscate_one(self, location: Point) -> Point:
        """Convenience: obfuscate and return a single output.

        Only valid for single-output mechanisms; multi-output mechanisms
        must go through an output-selection policy instead.
        """
        outputs = self.obfuscate(location)
        if len(outputs) != 1:
            raise ValueError(
                f"{self.name} returns {len(outputs)} outputs; use an output "
                "selection policy rather than obfuscate_one()"
            )
        return outputs[0]

    def obfuscate_stream(self, locations: Sequence[Point]) -> List[List[Point]]:
        """Obfuscate each location in a stream independently."""
        return [self.obfuscate(p) for p in locations]
