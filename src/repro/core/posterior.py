"""Posterior-based output selection (Algorithm 4 / Section V-D).

Given the ``n`` pinned candidate locations for a top location, the output
selection module picks one candidate per ad request.  The paper samples
candidate ``q_i`` with probability proportional to the Gaussian posterior
density of the true location evaluated at ``q_i`` (Eq. 17-18): the
posterior is centred at the candidates' mean (the sufficient statistic),
so candidates close to the mean — hence likely close to the true location —
are chosen more often, boosting advertising efficacy *without any privacy
loss* (selection is pure post-processing of already-released outputs).

Note on the scale parameter: the posterior of the true location given n
independent N(p, sigma^2) candidates has scale ``sigma / sqrt(n)`` (the
sufficient statistic's standard deviation), so that is the ``sigma`` to
pass here — :attr:`repro.core.gaussian.NFoldGaussianMechanism.posterior_sigma`
exposes it.  Using the raw per-candidate sigma makes the weights nearly
uniform and forfeits the module's efficacy benefit.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.point import Point, centroid, points_to_array

__all__ = [
    "posterior_density",
    "posterior_weights",
    "posterior_weights_array",
    "OutputSelector",
    "PosteriorSelector",
    "UniformSelector",
]


def posterior_density(
    candidates: Sequence[Point], sigma: float, at: Point
) -> float:
    """Gaussian posterior density of the true location evaluated at ``at``.

    Eq. 17: ``f(x, y) = 1/(2 pi sigma^2) * exp(-((x-xbar)^2+(y-ybar)^2) / (2 sigma^2))``
    where ``(xbar, ybar)`` is the candidate mean.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    mean = centroid(candidates)
    d2 = (at.x - mean.x) ** 2 + (at.y - mean.y) ** 2
    return math.exp(-d2 / (2.0 * sigma * sigma)) / (2.0 * math.pi * sigma * sigma)


def posterior_weights(candidates: Sequence[Point], sigma: float) -> np.ndarray:
    """Normalised selection probabilities over the candidates (Eq. 18).

    Computed in a numerically stable way (log-densities shifted by their
    maximum before exponentiation) so that widely scattered candidates do
    not underflow to all-zero weights.
    """
    if not candidates:
        raise ValueError("candidate set must be non-empty")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    arr = points_to_array(candidates)
    mean = arr.mean(axis=0)
    d2 = ((arr - mean) ** 2).sum(axis=1)
    log_density = -d2 / (2.0 * sigma * sigma)
    log_density -= log_density.max()
    weights = np.exp(log_density)
    return weights / weights.sum()


def posterior_weights_array(candidate_sets: np.ndarray, sigma: float) -> np.ndarray:
    """Eq. 18 weights for ``m`` candidate sets at once.

    ``candidate_sets`` is an ``(m, n, 2)`` array — one pinned n-candidate
    set per row — and the result is the matching ``(m, n)`` row-stochastic
    weight matrix.  Same stabilised log-density computation as
    :func:`posterior_weights`, batched over the population so the edge can
    prepare every user's selection distribution in one pass.
    """
    candidate_sets = np.asarray(candidate_sets, dtype=float)
    if candidate_sets.ndim != 3 or candidate_sets.shape[2] != 2:
        raise ValueError(f"expected (m, n, 2) array, got {candidate_sets.shape}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    means = candidate_sets.mean(axis=1, keepdims=True)
    d2 = ((candidate_sets - means) ** 2).sum(axis=2)
    log_density = -d2 / (2.0 * sigma * sigma)
    log_density -= log_density.max(axis=1, keepdims=True)
    weights = np.exp(log_density)
    return weights / weights.sum(axis=1, keepdims=True)


def _sample_rows(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One categorical draw per row of a row-stochastic ``(m, n)`` matrix.

    Inverse-CDF over the row cumsums: a single uniform batch replaces
    ``m`` python-level ``Generator.choice`` calls.
    """
    cdf = np.cumsum(probs, axis=1)
    u = rng.random(len(probs))
    idx = (u[:, None] > cdf).sum(axis=1)
    return np.minimum(idx, probs.shape[1] - 1)


class OutputSelector(abc.ABC):
    """Policy that picks one reported location from a pinned candidate set."""

    name: str = "selector"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        # Seeded fallback, matching LPPM: reproducible unless the caller
        # supplies their own Generator.
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def rng(self) -> np.random.Generator:
        """The Generator this selector draws from."""
        return self._rng

    @abc.abstractmethod
    def probabilities(self, candidates: Sequence[Point]) -> np.ndarray:
        """Selection distribution over the candidates."""

    def select(self, candidates: Sequence[Point]) -> Point:
        """Sample one candidate according to :meth:`probabilities`."""
        candidates = list(candidates)
        probs = self.probabilities(candidates)
        idx = int(self._rng.choice(len(candidates), p=probs))
        return candidates[idx]

    def select_index(self, candidates: Sequence[Point]) -> int:
        """Sample and return the index of the chosen candidate."""
        probs = self.probabilities(list(candidates))
        return int(self._rng.choice(len(probs), p=probs))

    def probabilities_array(self, candidate_sets: np.ndarray) -> np.ndarray:
        """Selection distributions for ``(m, n, 2)`` candidate sets at once.

        Subclasses override with a vectorised computation; the base
        implementation falls back to one :meth:`probabilities` call per set.
        """
        candidate_sets = np.asarray(candidate_sets, dtype=float)
        return np.stack(
            [
                self.probabilities([Point(float(x), float(y)) for x, y in cs])
                for cs in candidate_sets
            ]
        )

    def select_index_batch(self, candidate_sets: np.ndarray) -> np.ndarray:
        """One sampled candidate index per set — ``(m,)`` for ``(m, n, 2)``.

        The batched counterpart of :meth:`select_index`: the whole
        population's per-tick selections come from one uniform draw.
        """
        candidate_sets = np.asarray(candidate_sets, dtype=float)
        if candidate_sets.ndim != 3 or candidate_sets.shape[2] != 2:
            raise ValueError(f"expected (m, n, 2) array, got {candidate_sets.shape}")
        if len(candidate_sets) == 0:
            return np.empty(0, dtype=np.int64)
        return _sample_rows(self.probabilities_array(candidate_sets), self._rng)


class PosteriorSelector(OutputSelector):
    """The paper's Algorithm 4: sample with posterior-proportional weights."""

    name = "posterior"

    def __init__(self, sigma: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma

    def probabilities(self, candidates: Sequence[Point]) -> np.ndarray:
        """Eq. 18 posterior-proportional weights."""
        return posterior_weights(candidates, self.sigma)

    def probabilities_array(self, candidate_sets: np.ndarray) -> np.ndarray:
        """Vectorised Eq. 18 weights over all candidate sets."""
        return posterior_weights_array(candidate_sets, self.sigma)


class UniformSelector(OutputSelector):
    """Ablation baseline: pick any candidate uniformly at random."""

    name = "uniform"

    def probabilities(self, candidates: Sequence[Point]) -> np.ndarray:
        """Equal weight on every candidate."""
        if not candidates:
            raise ValueError("candidate set must be non-empty")
        n = len(candidates)
        return np.full(n, 1.0 / n)

    def probabilities_array(self, candidate_sets: np.ndarray) -> np.ndarray:
        """Uniform weights for every set."""
        candidate_sets = np.asarray(candidate_sets, dtype=float)
        m, n = candidate_sets.shape[0], candidate_sets.shape[1]
        return np.full((m, n), 1.0 / n)
