"""The two baseline multi-output LPPMs the paper compares against.

* **Naive post-processing** — perturb once with the 1-fold Gaussian
  mechanism, then uniformly scatter ``n`` candidates in a disc around the
  single obfuscated location.  Privacy is free (post-processing), but the
  candidates inherit the single draw's error, so the utilization rate
  plateaus well below the n-fold mechanism's.
* **Plain composition** — draw ``n`` independent Gaussian outputs, each
  satisfying (r, eps/n, delta/n, 1)-geo-IND, so the set satisfies
  (r, eps, delta, n) by the composition theorem.  The per-output noise
  scale then grows ~linearly in n, and utility *decreases* as more
  candidates are generated — the paper's Observation 2.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.calibration import gaussian_sigma_composition, gaussian_sigma_single
from repro.core.mechanism import LPPM
from repro.core.params import GeoIndBudget
from repro.core.sampling import rayleigh_quantile, sample_gaussian_noise
from repro.geo.geometry import sample_uniform_disc
from repro.geo.point import Point

__all__ = ["NaivePostProcessingMechanism", "PlainCompositionMechanism"]


class NaivePostProcessingMechanism(LPPM):
    """1-fold Gaussian + uniform resampling of ``n`` candidates (baseline 1).

    The paper specifies sampling "in a certain radius around the obfuscated
    location" without fixing it; we default the scatter radius to the
    mechanism's noise scale ``sigma`` so the candidate spread matches the
    magnitude of the original perturbation (documented substitution; the
    radius is a constructor parameter for sensitivity studies).
    """

    name = "naive-postprocessing"

    def __init__(
        self,
        budget: GeoIndBudget,
        scatter_radius: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng)
        self.budget = budget
        # The privacy cost is a single 1-fold release; scattering is free.
        self.sigma = gaussian_sigma_single(budget.r, budget.epsilon, budget.delta)
        self.scatter_radius = scatter_radius if scatter_radius is not None else self.sigma
        if self.scatter_radius <= 0:
            raise ValueError(f"scatter radius must be positive, got {self.scatter_radius}")

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (the budget's n)."""
        return self.budget.n

    def obfuscate(self, location: Point) -> List[Point]:
        """One Gaussian anchor plus n uniformly scattered candidates."""
        noise = sample_gaussian_noise(self.sigma, 1, self.rng)[0]
        anchor = Point(location.x + float(noise[0]), location.y + float(noise[1]))
        scattered = sample_uniform_disc(
            anchor, self.scatter_radius, self.budget.n, self.rng
        )
        return [Point(float(x), float(y)) for x, y in scattered]

    def noise_tail_radius(self, alpha: float) -> float:
        """Tail radius of a candidate's distance from the true location.

        A candidate is at most ``scatter_radius`` past the Gaussian draw,
        so the Rayleigh tail shifted by the scatter radius is a valid
        (conservative) bound.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return rayleigh_quantile(1.0 - alpha, self.sigma) + self.scatter_radius


class PlainCompositionMechanism(LPPM):
    """n independent Gaussian outputs under split budgets (baseline 2)."""

    name = "plain-composition"

    def __init__(self, budget: GeoIndBudget, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        self.budget = budget
        self.sigma = gaussian_sigma_composition(
            budget.r, budget.epsilon, budget.delta, budget.n
        )

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (the budget's n)."""
        return self.budget.n

    def obfuscate(self, location: Point) -> List[Point]:
        """n independent draws, each under the split per-output budget."""
        noise = sample_gaussian_noise(self.sigma, self.budget.n, self.rng)
        return [
            Point(location.x + float(dx), location.y + float(dy)) for dx, dy in noise
        ]

    def noise_tail_radius(self, alpha: float) -> float:
        """Rayleigh tail quantile at the (large) composition sigma."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return rayleigh_quantile(1.0 - alpha, self.sigma)
