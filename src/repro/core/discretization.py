"""Discretized and truncated planar Laplace (Andres et al. 2013, Sec. 4.3).

Real deployments do not report arbitrary-precision coordinates: outputs
are snapped to a finite grid (GPS precision, protocol encoding) and
clamped to the service region.  Truncation (clamping) is a deterministic
post-processing step and costs nothing; discretization, however, *does*
erode pure geo-IND, because two nearby true locations can round to grids
differently.  Following the original geo-IND paper, the continuous
mechanism must therefore be run with a slightly stronger budget
``epsilon'`` such that the discretized release still satisfies the nominal
``epsilon``:

    epsilon' = epsilon - 2 * epsilon * (step / sqrt(2)) * correction

We use the paper's conservative closed form via the inverse relation
``epsilon' = epsilon / (1 + epsilon * step * sqrt(2))`` which guarantees
``epsilon'-geo-IND of the continuous release + rounding to a step grid``
implies ``epsilon``-geo-IND of the released value for all pairs at
distance >= step (documented approximation; the exact constant in the
original paper depends on the rounding norm).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.laplace import PlanarLaplaceMechanism
from repro.core.mechanism import LPPM
from repro.core.params import OneTimeBudget
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

__all__ = [
    "snap_to_grid",
    "discretization_adjusted_epsilon",
    "TruncatedDiscreteLaplaceMechanism",
]


def snap_to_grid(point: Point, step: float) -> Point:
    """Round a point to the nearest vertex of a ``step``-metre grid."""
    if step <= 0:
        raise ValueError(f"grid step must be positive, got {step}")
    return Point(round(point.x / step) * step, round(point.y / step) * step)


def discretization_adjusted_epsilon(epsilon: float, step: float) -> float:
    """The stronger continuous budget that absorbs grid-rounding leakage.

    Rounding moves any output by at most ``step / sqrt(2)`` (half the grid
    diagonal), which can transfer up to ``2 * (step/sqrt(2))`` of distance
    advantage between two hypotheses.  Running the continuous mechanism at
    ``epsilon' = epsilon / (1 + sqrt(2) * epsilon * step)`` keeps the
    released (rounded) value ``epsilon``-geo-IND.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if step <= 0:
        raise ValueError("step must be positive")
    return epsilon / (1.0 + math.sqrt(2.0) * epsilon * step)


class TruncatedDiscreteLaplaceMechanism(LPPM):
    """Planar Laplace + grid snapping + region clamping.

    The deployable variant of the one-time geo-IND mechanism: outputs are
    vertices of a ``grid_step`` grid, guaranteed inside ``region`` when
    one is given.  The internal continuous mechanism runs at the adjusted
    (stronger) epsilon so the *released* value meets the nominal budget.
    """

    name = "planar-laplace-discrete"

    def __init__(
        self,
        budget: OneTimeBudget,
        grid_step: float,
        region: Optional[BoundingBox] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng)
        if grid_step <= 0:
            raise ValueError(f"grid step must be positive, got {grid_step}")
        self.nominal_budget = budget
        self.grid_step = grid_step
        self.region = region
        adjusted = discretization_adjusted_epsilon(budget.epsilon, grid_step)
        self._continuous = PlanarLaplaceMechanism(
            OneTimeBudget(adjusted), rng=self.rng
        )

    @property
    def adjusted_epsilon(self) -> float:
        """The strengthened epsilon the continuous stage actually runs at."""
        return self._continuous.epsilon

    @property
    def n_outputs(self) -> int:
        """Outputs per obfuscate() call (always one)."""
        return 1

    def obfuscate(self, location: Point) -> List[Point]:
        """Perturb, snap to the grid, and clamp into the region."""
        raw = self._continuous.obfuscate(location)[0]
        snapped = snap_to_grid(raw, self.grid_step)
        if self.region is not None:
            snapped = snap_to_grid(self.region.clamp(snapped), self.grid_step)
            # Clamping may land on a non-grid boundary; snap the clamp back
            # inward so the output is both in-region and on-grid.
            if not self.region.contains(snapped):
                snapped = Point(
                    math.floor(self.region.clamp(raw).x / self.grid_step)
                    * self.grid_step,
                    math.floor(self.region.clamp(raw).y / self.grid_step)
                    * self.grid_step,
                )
        return [snapped]

    def obfuscate_batch(self, locations: np.ndarray) -> np.ndarray:
        """Vectorised variant used by the attack experiments."""
        noisy = self._continuous.obfuscate_batch(locations)
        snapped = np.round(noisy / self.grid_step) * self.grid_step
        if self.region is not None:
            snapped[:, 0] = np.clip(snapped[:, 0], self.region.min_x, self.region.max_x)
            snapped[:, 1] = np.clip(snapped[:, 1], self.region.min_y, self.region.max_y)
        return snapped

    def noise_tail_radius(self, alpha: float) -> float:
        """Continuous tail plus the worst-case rounding displacement."""
        return self._continuous.noise_tail_radius(alpha) + self.grid_step / math.sqrt(2.0)
