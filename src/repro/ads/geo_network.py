"""Mixed-category ad serving over the three geo-targeting types.

The main :class:`~repro.ads.network.AdNetwork` implements the paper's
focus — radius targeting with a spatial index.  This module generalises
serving to campaigns of *any* of the Section II-A categories (countries,
areas, radius) behind one interface, and exposes the privacy-relevant
observation the paper makes: each category's matching predicate requires a
different precision of the user's geography, and only radius targeting
needs a precise (hence obfuscated) location.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ads.campaign import Advertiser
from repro.ads.targeting import AreaRegistry, GeoTargeting, RequestGeo
from repro.geo.point import Point

__all__ = ["GeoCampaign", "GeoAdNetwork", "build_request_geo"]

_geo_campaign_counter = itertools.count(1)


@dataclass(frozen=True)
class GeoCampaign:
    """A campaign carrying an arbitrary geo-targeting rule."""

    campaign_id: str
    advertiser: Advertiser
    targeting: GeoTargeting
    bid_price: float = 1.0

    def __post_init__(self) -> None:
        if self.bid_price <= 0:
            raise ValueError("bid price must be positive")

    @classmethod
    def create(
        cls,
        advertiser: Advertiser,
        targeting: GeoTargeting,
        bid_price: float = 1.0,
    ) -> "GeoCampaign":
        """Build a campaign with a fresh sequential id."""
        return cls(
            campaign_id=f"geo-campaign-{next(_geo_campaign_counter):06d}",
            advertiser=advertiser,
            targeting=targeting,
            bid_price=bid_price,
        )


def build_request_geo(
    reported_location: Optional[Point],
    country: Optional[str] = None,
    registry: Optional[AreaRegistry] = None,
    true_location: Optional[Point] = None,
) -> RequestGeo:
    """Assemble the geography attributes the edge attaches to a request.

    The coarse attributes (country, administrative areas) are derived from
    the *true* location — they are coarse enough to be non-sensitive and
    keeping them truthful preserves utility for the coarse categories —
    while the precise ``location`` field carries only the *obfuscated*
    report.  This mirrors the paper's observation that radius targeting is
    the only category that forces precise coordinates onto the wire.
    """
    area_ids = frozenset()
    if registry is not None and true_location is not None:
        area_ids = registry.areas_containing(true_location)
    return RequestGeo(
        country=country, area_ids=area_ids, location=reported_location
    )


class GeoAdNetwork:
    """Serve campaigns across all three geo-targeting categories."""

    def __init__(self, max_ads_per_request: int = 3) -> None:
        if max_ads_per_request < 1:
            raise ValueError("max_ads_per_request must be positive")
        self.max_ads_per_request = max_ads_per_request
        self._campaigns: List[GeoCampaign] = []

    def register(self, campaign: GeoCampaign) -> None:
        """Register one campaign of any targeting category."""
        self._campaigns.append(campaign)

    def register_all(self, campaigns: Sequence[GeoCampaign]) -> None:
        """Register a batch of campaigns."""
        for c in campaigns:
            self.register(c)

    @property
    def campaign_count(self) -> int:
        """Number of registered campaigns."""
        return len(self._campaigns)

    def match(self, geo: RequestGeo) -> List[GeoCampaign]:
        """All campaigns whose targeting accepts the request geography."""
        return [c for c in self._campaigns if c.targeting.matches(geo)]

    def serve(self, geo: RequestGeo) -> List[GeoCampaign]:
        """Top bidders among the matches (simple ranked serving)."""
        matches = sorted(self.match(geo), key=lambda c: -c.bid_price)
        return matches[: self.max_ads_per_request]

    def precision_demand(self) -> Dict[str, int]:
        """How many registered campaigns demand each geography precision.

        A privacy dashboard number: the share of campaigns that force
        precise locations onto the wire (the paper's motivation for
        protecting exactly that field).
        """
        demand: Dict[str, int] = {"country": 0, "area": 0, "location": 0}
        for c in self._campaigns:
            demand[c.targeting.required_precision] += 1
        return demand
