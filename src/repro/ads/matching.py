"""Geo-matching of campaigns to reported locations.

An ad network with many radius-targeting campaigns must find, per bid
request, all campaigns whose targeting circle contains the reported
location.  The campaign index buckets campaigns on a uniform grid keyed by
their business locations so a match query inspects only nearby cells —
the same spatial-index idea the attack's clustering uses, applied to the
serving path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import math

from repro.ads.campaign import Campaign
from repro.geo.point import Point

__all__ = ["CampaignIndex"]


class CampaignIndex:
    """Grid-bucketed campaign lookup by reported location.

    The cell size is chosen as the largest campaign radius so that any
    campaign containing a query point lives in the 3x3 cell neighbourhood
    of the query.  Campaigns can be added incrementally; the index rebuilds
    lazily when a new campaign exceeds the current cell size.
    """

    def __init__(self, campaigns: Sequence[Campaign] = ()) -> None:
        self._campaigns: List[Campaign] = []
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._cell_size: float = 0.0
        for c in campaigns:
            self.add(c)

    def __len__(self) -> int:
        return len(self._campaigns)

    @property
    def campaigns(self) -> List[Campaign]:
        """Snapshot of the registered campaigns."""
        return list(self._campaigns)

    def add(self, campaign: Campaign) -> None:
        """Insert a campaign, rebuilding the grid if its radius grows the cell."""
        self._campaigns.append(campaign)
        if campaign.radius_m > self._cell_size:
            self._rebuild(campaign.radius_m)
        else:
            self._insert(len(self._campaigns) - 1)

    def _rebuild(self, cell_size: float) -> None:
        self._cell_size = cell_size
        self._cells = defaultdict(list)
        for i in range(len(self._campaigns)):
            self._insert(i)

    def _insert(self, idx: int) -> None:
        c = self._campaigns[idx]
        key = self._key(c.business_location)
        self._cells[key].append(idx)

    def _key(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self._cell_size),
            math.floor(p.y / self._cell_size),
        )

    def match(self, reported_location: Point) -> List[Campaign]:
        """All campaigns whose targeting circle contains the location."""
        if not self._campaigns:
            return []
        cx, cy = self._key(reported_location)
        out: List[Campaign] = []
        for gx in range(cx - 1, cx + 2):
            for gy in range(cy - 1, cy + 2):
                for idx in self._cells.get((gx, gy), ()):
                    if self._campaigns[idx].targets(reported_location):
                        out.append(self._campaigns[idx])
        return out
