"""The ad network: matching, auction, and the observable bidding log.

The network receives bid requests carrying *reported* (ideally obfuscated)
locations, matches them against registered radius-targeting campaigns,
runs a second-price auction among the matches, and serves the winners.
Every request is appended to the bidding log regardless of fill — that log
is what the honest-but-curious observer (and hence the longitudinal
attacker) sees.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.ads.bidding import Ad, BidLog, BidLogRecord, BidRequest, BidResponse
from repro.ads.campaign import Campaign
from repro.ads.matching import CampaignIndex
from repro.geo.point import Point

__all__ = ["AdNetwork"]


class AdNetwork:
    """A minimal but complete RTB-style LBA network."""

    def __init__(self, max_ads_per_request: int = 3) -> None:
        if max_ads_per_request < 1:
            raise ValueError("max_ads_per_request must be positive")
        self._index = CampaignIndex()
        self._log = BidLog()
        self._request_counter = itertools.count(1)
        self.max_ads_per_request = max_ads_per_request

    @property
    def bid_log(self) -> BidLog:
        """The observable request log (the attacker's vantage point)."""
        return self._log

    @property
    def campaign_count(self) -> int:
        """Number of registered campaigns."""
        return len(self._index)

    def register_campaign(self, campaign: Campaign) -> None:
        """Add one radius-targeting campaign to the matcher."""
        self._index.add(campaign)

    def register_campaigns(self, campaigns: Sequence[Campaign]) -> None:
        """Add a batch of campaigns."""
        for c in campaigns:
            self.register_campaign(c)

    def new_request(
        self, device_id: str, reported_location: Point, timestamp: float
    ) -> BidRequest:
        """Mint a bid request (the edge device calls this on the user's behalf)."""
        return BidRequest(
            request_id=f"req-{next(self._request_counter):09d}",
            device_id=device_id,
            reported_location=reported_location,
            timestamp=timestamp,
        )

    def handle(self, request: BidRequest) -> BidResponse:
        """Match, auction, serve, and log one bid request."""
        matches = self._index.match(request.reported_location)
        self._log.append(
            BidLogRecord(
                device_id=request.device_id,
                reported_location=request.reported_location,
                timestamp=request.timestamp,
                matched_campaigns=len(matches),
            )
        )
        winners = self._auction(matches)
        ads = tuple(
            Ad(
                campaign_id=c.campaign_id,
                advertiser_id=c.advertiser.advertiser_id,
                business_location=c.business_location,
                price_paid=price,
            )
            for c, price in winners
        )
        return BidResponse(request_id=request.request_id, ads=ads)

    def _auction(self, matches: List[Campaign]) -> List:
        """Generalised second-price auction over the matched campaigns.

        Winners pay the next-highest bid (the last winner pays the first
        loser's bid, or its own when there is no loser).
        """
        if not matches:
            return []
        ranked = sorted(matches, key=lambda c: -c.bid_price)
        winners = ranked[: self.max_ads_per_request]
        out = []
        for i, campaign in enumerate(winners):
            if i + 1 < len(ranked):
                price = ranked[i + 1].bid_price
            else:
                price = campaign.bid_price
            out.append((campaign, price))
        return out
