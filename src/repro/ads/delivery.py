"""Ad delivery filtering at the edge.

Because obfuscated request locations retrieve some irrelevant ads, the
edge device filters the network's response against the user's *true* area
of interest before forwarding ads to the device (paper Section V-A, the
third role of the edge).  Only the trusted edge can do this — it knows the
true location; the network never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.ads.bidding import Ad
from repro.geo.point import Point

__all__ = ["DeliveryStats", "filter_ads_to_aoi"]


@dataclass(frozen=True)
class DeliveryStats:
    """Bandwidth accounting of one filtered delivery."""

    received: int
    delivered: int

    @property
    def irrelevant(self) -> int:
        """Ads received from the network but dropped as irrelevant."""
        return self.received - self.delivered

    @property
    def relevance_ratio(self) -> float:
        """Share of received ads that were actually relevant."""
        return self.delivered / self.received if self.received else 1.0


def filter_ads_to_aoi(
    ads: Sequence[Ad],
    true_location: Point,
    targeting_radius: float,
) -> "tuple[List[Ad], DeliveryStats]":
    """Keep only ads whose business lies within the user's AOI."""
    if targeting_radius <= 0:
        raise ValueError("targeting radius must be positive")
    kept = [
        ad
        for ad in ads
        if ad.business_location.distance_to(true_location) <= targeting_radius
    ]
    return kept, DeliveryStats(received=len(ads), delivered=len(kept))
