"""Radius-targeting limits of real LBA platforms (paper Table I).

The paper surveys four major platforms and derives its targeting-radius
experiment range (5 km, the lower edge of the common interval) from this
table.  We encode the table as data so campaign validation and the Table I
bench can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PlatformLimit",
    "PLATFORM_LIMITS",
    "common_radius_interval",
    "MILES_TO_M",
]

MILES_TO_M = 1_609.344


@dataclass(frozen=True)
class PlatformLimit:
    """Minimal and maximal allowed targeting radius of one platform, metres."""

    name: str
    min_radius_m: float
    max_radius_m: float

    def __post_init__(self) -> None:
        if not 0 < self.min_radius_m <= self.max_radius_m:
            raise ValueError(f"invalid radius limits for {self.name}")

    def allows(self, radius_m: float) -> bool:
        """Is the radius within this platform's allowed range (inclusive)?"""
        return self.min_radius_m <= radius_m <= self.max_radius_m


#: Table I, using the metric variant where the paper lists both.
PLATFORM_LIMITS: Dict[str, PlatformLimit] = {
    "google": PlatformLimit("google", 5_000.0, 65_000.0),
    "microsoft": PlatformLimit("microsoft", 1_000.0, 800_000.0),
    "facebook": PlatformLimit("facebook", 1.0 * MILES_TO_M, 50.0 * MILES_TO_M),
    "tencent": PlatformLimit("tencent", 500.0, 25_000.0),
}


def common_radius_interval() -> Tuple[float, float]:
    """The radius interval allowed by *every* surveyed platform.

    The paper notes this is 5 km to 25 km and picks the minimum (5 km) as
    the hardest utility setting.
    """
    lo = max(p.min_radius_m for p in PLATFORM_LIMITS.values())
    hi = min(p.max_radius_m for p in PLATFORM_LIMITS.values())
    return (lo, hi)
