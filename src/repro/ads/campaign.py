"""Advertisers and radius-targeting campaigns.

A campaign pins a business location and a targeting radius (the paper's
"radius targeting" category, the most privacy-sensitive of the three
geo-targeting methods): the advertiser bids on ad requests whose reported
location falls within the radius of the business location.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.ads.platform_limits import PLATFORM_LIMITS
from repro.geo.point import Point

__all__ = ["Advertiser", "Campaign"]

_campaign_counter = itertools.count(1)


@dataclass(frozen=True)
class Advertiser:
    """A business promoting itself through the ad network."""

    advertiser_id: str
    name: str = ""
    category: str = "general"


@dataclass(frozen=True)
class Campaign:
    """One radius-targeting campaign.

    Attributes:
        business_location: the centre of the targeting circle (planar m).
        radius_m: targeting radius.
        bid_price: the advertiser's bid in the network's second-price
            auction (arbitrary currency units).
        platform: optional platform name; when given, the radius is
            validated against that platform's Table I limits.
    """

    campaign_id: str
    advertiser: Advertiser
    business_location: Point
    radius_m: float
    bid_price: float = 1.0
    platform: Optional[str] = None

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"targeting radius must be positive, got {self.radius_m}")
        if self.bid_price <= 0:
            raise ValueError(f"bid price must be positive, got {self.bid_price}")
        if self.platform is not None:
            limit = PLATFORM_LIMITS.get(self.platform)
            if limit is None:
                raise ValueError(f"unknown platform: {self.platform}")
            if not limit.allows(self.radius_m):
                raise ValueError(
                    f"radius {self.radius_m} m outside {self.platform}'s allowed "
                    f"range [{limit.min_radius_m}, {limit.max_radius_m}] m"
                )

    @classmethod
    def create(
        cls,
        advertiser: Advertiser,
        business_location: Point,
        radius_m: float,
        bid_price: float = 1.0,
        platform: Optional[str] = None,
        campaign_id: Optional[str] = None,
    ) -> "Campaign":
        """Create a campaign, auto-assigning an id unless one is given.

        The auto-assigned id comes from a process-global counter, which
        is fine for single-process simulations but not reproducible
        across processes — replicated inventories (every serve shard
        builds the same campaign set) must pass an explicit
        ``campaign_id``.
        """
        return cls(
            campaign_id=campaign_id
            if campaign_id is not None
            else f"campaign-{next(_campaign_counter):06d}",
            advertiser=advertiser,
            business_location=business_location,
            radius_m=radius_m,
            bid_price=bid_price,
            platform=platform,
        )

    def targets(self, reported_location: Point) -> bool:
        """Does this campaign target the given reported location?"""
        return self.business_location.distance_to(reported_location) <= self.radius_m
