"""Simulated location-based-advertising ecosystem."""

from repro.ads.bidding import Ad, BidLog, BidLogRecord, BidRequest, BidResponse
from repro.ads.campaign import Advertiser, Campaign
from repro.ads.delivery import DeliveryStats, filter_ads_to_aoi
from repro.ads.matching import CampaignIndex
from repro.ads.network import AdNetwork
from repro.ads.platform_limits import (
    MILES_TO_M,
    PLATFORM_LIMITS,
    PlatformLimit,
    common_radius_interval,
)

__all__ = [
    "Advertiser",
    "Campaign",
    "CampaignIndex",
    "AdNetwork",
    "Ad",
    "BidRequest",
    "BidResponse",
    "BidLog",
    "BidLogRecord",
    "DeliveryStats",
    "filter_ads_to_aoi",
    "PlatformLimit",
    "PLATFORM_LIMITS",
    "common_radius_interval",
    "MILES_TO_M",
]

from repro.ads.targeting import (
    AdministrativeArea,
    AreaRegistry,
    AreaTargeting,
    CountryTargeting,
    GeoTargeting,
    RadiusTargeting,
    RequestGeo,
)

__all__ += [
    "GeoTargeting",
    "CountryTargeting",
    "AreaTargeting",
    "RadiusTargeting",
    "AdministrativeArea",
    "AreaRegistry",
    "RequestGeo",
]

from repro.ads.geo_network import GeoAdNetwork, GeoCampaign, build_request_geo

__all__ += ["GeoAdNetwork", "GeoCampaign", "build_request_geo"]
