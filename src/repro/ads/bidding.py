"""RTB bid requests, responses, and the bidding log.

The bidding log is the attacker's observable: the paper argues any
advertiser or third-party traffic-verification company can harvest
(device id, reported location, timestamp) triples from the billions of
daily bid requests, which is exactly what :class:`BidLog` records and what
the longitudinal attack consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.geo.point import Point

__all__ = ["BidRequest", "Ad", "BidResponse", "BidLogRecord", "BidLog"]


@dataclass(frozen=True)
class BidRequest:
    """One ad request as the network sees it (already obfuscated, ideally)."""

    request_id: str
    device_id: str
    reported_location: Point
    timestamp: float


@dataclass(frozen=True)
class Ad:
    """A served ad creative with its campaign provenance."""

    campaign_id: str
    advertiser_id: str
    business_location: Point
    price_paid: float


@dataclass(frozen=True)
class BidResponse:
    """The network's answer to a bid request: served ads (possibly none)."""

    request_id: str
    ads: tuple

    @property
    def filled(self) -> bool:
        """Whether the auction produced any ads."""
        return bool(self.ads)


@dataclass(frozen=True)
class BidLogRecord:
    """What the honest-but-curious observer retains per request."""

    device_id: str
    reported_location: Point
    timestamp: float
    matched_campaigns: int


class BidLog:
    """Append-only log of bid traffic, queryable per device.

    This is the longitudinal attacker's data source — it deliberately
    exposes exactly (device id, reported location, timestamp) plus match
    metadata, nothing the trusted side keeps private.
    """

    def __init__(self) -> None:
        self._records: List[BidLogRecord] = []
        self._by_device: Dict[str, List[int]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: BidLogRecord) -> None:
        """Append one observed request record."""
        self._by_device[record.device_id].append(len(self._records))
        self._records.append(record)

    def devices(self) -> List[str]:
        """All device ids ever seen in the log."""
        return list(self._by_device)

    def records_for(self, device_id: str) -> List[BidLogRecord]:
        """The device's records in arrival order."""
        return [self._records[i] for i in self._by_device.get(device_id, [])]

    def observations_for(self, device_id: str) -> np.ndarray:
        """The device's reported locations as an ``(n, 2)`` array.

        This is the direct input format of
        :meth:`repro.attack.DeobfuscationAttack.infer_top_locations`.
        """
        recs = self.records_for(device_id)
        if not recs:
            return np.empty((0, 2), dtype=float)
        return np.asarray(
            [(r.reported_location.x, r.reported_location.y) for r in recs],
            dtype=float,
        )

    def __iter__(self) -> Iterator[BidLogRecord]:
        return iter(self._records)
