"""The paper's three geo-targeting categories (Section II-A).

* **Countries targeting** — match by country code; the request carries a
  coarse country attribute (never precise coordinates).
* **Areas targeting** — match administrative areas (cities/districts),
  modelled as named polygons.
* **Radius targeting** — the radius-from-business-location matching the
  rest of the library focuses on (most privacy-sensitive category).

Each category implements the same ``GeoTargeting`` interface so campaigns
can mix them; the paper's observation that radius targeting is the most
sensitive follows directly from what each ``matches`` call needs to see:
a country code, an area id, or a precise location.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence

from repro.geo.point import Point
from repro.geo.polygon import Polygon

__all__ = [
    "RequestGeo",
    "GeoTargeting",
    "CountryTargeting",
    "AreaTargeting",
    "RadiusTargeting",
    "AdministrativeArea",
    "AreaRegistry",
]


@dataclass(frozen=True)
class RequestGeo:
    """The geographic attributes an ad request may carry.

    Coarser categories need only the coarser fields — a privacy-aware edge
    populates exactly what the served campaigns' categories require.
    """

    country: Optional[str] = None
    area_ids: FrozenSet[str] = frozenset()
    location: Optional[Point] = None

    @classmethod
    def of(
        cls,
        country: Optional[str] = None,
        area_ids: Iterable[str] = (),
        location: Optional[Point] = None,
    ) -> "RequestGeo":
        """Build a request-geo record from its optional components."""
        return cls(
            country=country, area_ids=frozenset(area_ids), location=location
        )


class GeoTargeting(abc.ABC):
    """One campaign's geographic predicate."""

    #: Category name matching the paper's taxonomy.
    category: str = "abstract"

    @abc.abstractmethod
    def matches(self, geo: RequestGeo) -> bool:
        """Does the request's geography satisfy this targeting rule?"""

    @property
    @abc.abstractmethod
    def required_precision(self) -> str:
        """What the rule needs to observe: 'country' | 'area' | 'location'."""


@dataclass(frozen=True)
class CountryTargeting(GeoTargeting):
    """Match any of a set of country codes."""

    countries: FrozenSet[str]
    category = "countries"

    def __post_init__(self) -> None:
        if not self.countries:
            raise ValueError("country targeting needs at least one country")
        object.__setattr__(
            self, "countries", frozenset(c.upper() for c in self.countries)
        )

    @classmethod
    def of(cls, *countries: str) -> "CountryTargeting":
        """Targeting that matches any of the given countries."""
        return cls(frozenset(countries))

    def matches(self, geo: RequestGeo) -> bool:
        """Case-insensitive country-code membership."""
        return geo.country is not None and geo.country.upper() in self.countries

    @property
    def required_precision(self) -> str:
        """Coarsest location precision this targeting needs."""
        return "country"


@dataclass(frozen=True)
class AdministrativeArea:
    """A named administrative area with its polygon boundary."""

    area_id: str
    name: str
    boundary: Polygon

    def contains(self, p: Point) -> bool:
        """Is the point inside this area's boundary polygon?"""
        return self.boundary.contains(p)


class AreaRegistry:
    """The shared catalogue of administrative areas (cities, districts)."""

    def __init__(self, areas: Sequence[AdministrativeArea] = ()) -> None:
        self._areas: Dict[str, AdministrativeArea] = {}
        for area in areas:
            self.add(area)

    def add(self, area: AdministrativeArea) -> None:
        """Register an area; ids must be unique."""
        if area.area_id in self._areas:
            raise ValueError(f"duplicate area id: {area.area_id}")
        self._areas[area.area_id] = area

    def __len__(self) -> int:
        return len(self._areas)

    def get(self, area_id: str) -> AdministrativeArea:
        """Look an area up by id, raising KeyError for unknown ids."""
        try:
            return self._areas[area_id]
        except KeyError:
            raise KeyError(f"unknown area id: {area_id}") from None

    def areas_containing(self, p: Point) -> FrozenSet[str]:
        """Area ids whose boundary contains the point.

        This is how the edge derives the coarse ``area_ids`` attribute for
        a request without revealing the precise location.
        """
        return frozenset(
            area_id for area_id, area in self._areas.items() if area.contains(p)
        )


@dataclass(frozen=True)
class AreaTargeting(GeoTargeting):
    """Match requests tagged with any of the targeted area ids."""

    area_ids: FrozenSet[str]
    category = "areas"

    def __post_init__(self) -> None:
        if not self.area_ids:
            raise ValueError("area targeting needs at least one area")
        object.__setattr__(self, "area_ids", frozenset(self.area_ids))

    @classmethod
    def of(cls, *area_ids: str) -> "AreaTargeting":
        """Targeting that matches any of the given area ids."""
        return cls(frozenset(area_ids))

    def matches(self, geo: RequestGeo) -> bool:
        """Any overlap between targeted and request-tagged areas."""
        return bool(self.area_ids & geo.area_ids)

    @property
    def required_precision(self) -> str:
        """Coarsest location precision this targeting needs."""
        return "area"


@dataclass(frozen=True)
class RadiusTargeting(GeoTargeting):
    """Match locations within ``radius_m`` of the business location."""

    business_location: Point
    radius_m: float
    category = "radius"

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")

    def matches(self, geo: RequestGeo) -> bool:
        """Distance check against the precise reported location."""
        if geo.location is None:
            return False
        return self.business_location.distance_to(geo.location) <= self.radius_m

    @property
    def required_precision(self) -> str:
        """Coarsest location precision this targeting needs."""
        return "location"
