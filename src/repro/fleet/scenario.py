"""Deterministic fault-injection scenarios for the edge fleet.

A :class:`Scenario` is a declarative, content-hashable program of fleet
events scheduled on the service's integer event timeline: ``at=k`` means
the event takes effect immediately before schedule event ``seq == k`` is
served (events past the end of the schedule take effect during the
drain).  Scheduling on the *global event sequence* — never on wall time
or on execution shards — is what makes a scenario bit-reproducible for
any ``--shards N``: a user's events land on one shard in the same order
regardless of the shard count, so the faults interleave with the
workload identically everywhere.

Faults target *logical devices*, not execution shards: users are mapped
onto ``n_devices`` edge devices by the same stable hash the service uses
for shard routing, and crashes/restarts/handoffs move or destroy the
per-user actor state living on those devices.  The two network events
(:class:`NetworkPartition` / :class:`NetworkHeal`) are the exception —
they target execution shards (modulo the run's shard count) and are
digest-neutral by construction: a partitioned shard checkpoints and
continues inline, bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Type, Union

__all__ = [
    "DeviceCrash",
    "DeviceRestart",
    "UserHandoff",
    "NetworkPartition",
    "NetworkHeal",
    "SlowShard",
    "FleetEvent",
    "Scenario",
    "device_of",
    "churn_scenario",
    "builtin_scenario",
    "BUILTIN_SCENARIOS",
]


def device_of(user_id: str, n_devices: int) -> int:
    """The logical edge device serving ``user_id`` (stable hash routing).

    The same CRC-32 routing the service uses for shards, so device
    membership is a pure function of the user id — never of the run.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    return zlib.crc32(user_id.encode("utf-8")) % n_devices


@dataclass(frozen=True)
class DeviceCrash:
    """Device ``device`` fails before event ``at``.

    With ``persist_tables=True`` the device's durable state (profile
    windows, obfuscation tables, ledgers, RNG streams) survives in its
    checkpoint store and a later :class:`DeviceRestart` resumes
    bit-identically.  With ``persist_tables=False`` the state is
    destroyed: the lost privacy budget is surfaced on the
    ``ledger.lost_epsilon``/``ledger.lost_delta`` gauges (never silently
    dropped) and rebuilt actors start a new *epoch* with a fresh noise
    stream — replaying the old stream would hand the longitudinal
    attacker the exact draws it already observed.
    """

    at: int
    device: int
    persist_tables: bool = True
    kind: str = field(default="device_crash", init=False, repr=False)


@dataclass(frozen=True)
class DeviceRestart:
    """Device ``device`` comes back before event ``at``.

    Users whose state was persisted are restored (metered on the
    ``fleet.recovery_seconds`` histogram); users whose state was lost
    get fresh actors lazily, on their next event.
    """

    at: int
    device: int
    kind: str = field(default="device_restart", init=False, repr=False)


@dataclass(frozen=True)
class UserHandoff:
    """User ``user`` roams from their current device onto ``to_device``.

    The user's full edge state makes a snapshot/restore round trip
    through the checkpoint store; the user inherits the target device's
    health (a handoff onto a crashed device parks the state until that
    device restarts).  ``from_device`` is optional documentation — when
    set, scenario validation checks it against the user's actual device
    at that point in the program.
    """

    at: int
    user: str
    to_device: int
    from_device: Union[int, None] = None
    kind: str = field(default="user_handoff", init=False, repr=False)


@dataclass(frozen=True)
class NetworkPartition:
    """Execution shard ``shard % n_shards`` is cut off before event ``at``.

    The service checkpoints the shard's backend and degrades it to
    inline execution in the parent — serving continues, bit-identically,
    because the checkpoint carries every actor's RNG state and the
    shard's virtual clock.
    """

    at: int
    shard: int
    kind: str = field(default="network_partition", init=False, repr=False)


@dataclass(frozen=True)
class NetworkHeal:
    """The partition on ``shard % n_shards`` heals before event ``at``.

    A degraded process backend re-spawns its worker from the current
    inline checkpoint and rejoins; an inline run just counts the event.
    """

    at: int
    shard: int
    kind: str = field(default="network_heal", init=False, repr=False)


@dataclass(frozen=True)
class SlowShard:
    """Device ``device`` turns slow: extra latency per served event.

    The latency is injected deterministically — whole virtual ticks in
    replay mode, a real sleep live — and persists until the device next
    restarts.
    """

    at: int
    device: int
    latency_s: float = 0.005
    kind: str = field(default="slow_shard", init=False, repr=False)


#: Every concrete scenario event type.
FleetEvent = Union[
    DeviceCrash, DeviceRestart, UserHandoff, NetworkPartition, NetworkHeal, SlowShard
]

_EVENT_TYPES: Dict[str, Type[Any]] = {
    "device_crash": DeviceCrash,
    "device_restart": DeviceRestart,
    "user_handoff": UserHandoff,
    "network_partition": NetworkPartition,
    "network_heal": NetworkHeal,
    "slow_shard": SlowShard,
}


def _event_to_dict(event: FleetEvent) -> Dict[str, Any]:
    data = asdict(event)
    data["kind"] = event.kind
    return data


def _event_from_dict(data: Mapping[str, Any]) -> FleetEvent:
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _EVENT_TYPES:
        raise ValueError(f"unknown fleet event kind: {kind!r}")
    event: FleetEvent = _EVENT_TYPES[kind](**payload)
    return event


@dataclass(frozen=True)
class Scenario:
    """A named, content-hashable fault program over ``n_devices`` devices.

    The event list is kept in authoring order; events are *applied* in
    stable ``(at, position)`` order, so two events at the same tick take
    effect in the order they were written (a crash immediately followed
    by a restart at the same ``at`` is a pure checkpoint/restore round
    trip that serves every event).
    """

    name: str
    n_devices: int
    events: Tuple[FleetEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        for event in self.events:
            if event.at < 0:
                raise ValueError(f"event at must be >= 0, got {event.at}")
            device = getattr(event, "device", None)
            if device is not None and not 0 <= device < self.n_devices:
                raise ValueError(
                    f"device {device} out of range for {self.n_devices} devices"
                )
            to_device = getattr(event, "to_device", None)
            if to_device is not None and not 0 <= to_device < self.n_devices:
                raise ValueError(
                    f"to_device {to_device} out of range for "
                    f"{self.n_devices} devices"
                )

    # -- canonical form ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON-able form (kind-tagged event dicts)."""
        return {
            "name": self.name,
            "n_devices": self.n_devices,
            "events": [_event_to_dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from :meth:`to_dict`-shaped data."""
        return cls(
            name=str(data["name"]),
            n_devices=int(data["n_devices"]),
            events=tuple(_event_from_dict(e) for e in data.get("events", [])),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — hash input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON document."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        """Load a scenario from a YAML or JSON file.

        YAML is tried first when the parser is importable (it is a
        superset of JSON, so ``.json`` files load either way); without
        PyYAML the file must be JSON.
        """
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            import yaml
        except ImportError:
            return cls.from_json(text)
        return cls.from_dict(yaml.safe_load(text))

    def content_hash(self) -> str:
        """SHA-256 of the canonical JSON — the scenario's stable identity.

        Two scenarios hash equal iff they schedule the same events on
        the same devices, independent of authoring format (YAML/JSON/
        Python) and of any run-time knob (shards, backend, batch size).
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- introspection ----------------------------------------------------

    def shard_events(self) -> List[FleetEvent]:
        """The device-level events, in stable ``(at, position)`` order."""
        indexed = [
            (event.at, position, event)
            for position, event in enumerate(self.events)
            if not isinstance(event, (NetworkPartition, NetworkHeal))
        ]
        return [event for _, _, event in sorted(indexed, key=lambda t: t[:2])]

    def network_events(self) -> List[FleetEvent]:
        """The partition/heal events, in stable ``(at, position)`` order."""
        indexed = [
            (event.at, position, event)
            for position, event in enumerate(self.events)
            if isinstance(event, (NetworkPartition, NetworkHeal))
        ]
        return [event for _, _, event in sorted(indexed, key=lambda t: t[:2])]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def churn_scenario(
    n_events: int,
    user_ids: Sequence[str],
    n_devices: int = 4,
    churn: float = 0.10,
    persist_fraction: float = 0.75,
    seed: int = 0,
    slow_latency_s: float = 0.002,
    name: str = "churn",
) -> Scenario:
    """A reproducible churn program: crash/restart cycles plus roaming.

    Roughly ``churn * n_devices`` crash/restart pairs are spread evenly
    over the event timeline (``persist_fraction`` of them persist their
    tables), one user per cycle roams to the next device, one device
    turns slow mid-run, and one shard takes a partition/heal round trip.
    Everything is a pure function of the arguments — no run-time
    randomness — so the scenario hash pins the whole program.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    if not user_ids:
        raise ValueError("user_ids must be non-empty")
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be in [0, 1], got {churn}")
    cycles = max(1, round(churn * n_devices))
    events: List[FleetEvent] = []
    users = list(user_ids)
    span = max(1, n_events // (cycles + 1))
    for cycle in range(cycles):
        device = (seed + cycle) % n_devices
        crash_at = min(n_events - 1, (cycle + 1) * span)
        restart_at = min(n_events, crash_at + max(1, span // 3))
        if persist_fraction >= 1.0:
            persist = True
        else:
            lossy_every = max(
                1, round(1.0 / max(1.0 - persist_fraction, 1e-9))
            )
            persist = (cycle % lossy_every) != (lossy_every - 1)
        events.append(
            DeviceCrash(at=crash_at, device=device, persist_tables=persist)
        )
        events.append(DeviceRestart(at=restart_at, device=device))
        roamer = users[(seed + cycle) % len(users)]
        events.append(
            UserHandoff(
                at=min(n_events, restart_at + 1),
                user=roamer,
                to_device=(device_of(roamer, n_devices) + 1 + cycle) % n_devices,
            )
        )
    events.append(
        SlowShard(at=n_events // 2, device=seed % n_devices, latency_s=slow_latency_s)
    )
    events.append(NetworkPartition(at=n_events // 3, shard=seed % max(2, n_devices)))
    events.append(
        NetworkHeal(at=(2 * n_events) // 3, shard=seed % max(2, n_devices))
    )
    return Scenario(name=name, n_devices=n_devices, events=tuple(events))


def builtin_scenario(name: str, n_events: int, user_ids: Sequence[str]) -> Scenario:
    """Instantiate a named builtin scenario for a concrete workload."""
    try:
        builder = BUILTIN_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_SCENARIOS))
        raise ValueError(f"unknown builtin scenario {name!r} (known: {known})")
    return builder(n_events, user_ids)


def _churn10(n_events: int, user_ids: Sequence[str]) -> Scenario:
    return churn_scenario(
        n_events, user_ids, n_devices=4, churn=0.10, seed=0, name="churn10"
    )


def _churn25(n_events: int, user_ids: Sequence[str]) -> Scenario:
    return churn_scenario(
        n_events, user_ids, n_devices=8, churn=0.25, seed=1, name="churn25"
    )


def _lossy_crash(n_events: int, user_ids: Sequence[str]) -> Scenario:
    """One unpersisted crash mid-run: the lost-budget accounting demo."""
    return Scenario(
        name="lossy-crash",
        n_devices=2,
        events=(
            DeviceCrash(at=n_events // 2, device=0, persist_tables=False),
            DeviceRestart(at=n_events // 2 + max(1, n_events // 10), device=0),
        ),
    )


#: Builtin scenario builders, keyed by CLI name.  Each takes
#: ``(n_events, user_ids)`` so the same name adapts to any workload while
#: staying a pure function of it.
BUILTIN_SCENARIOS = {
    "churn10": _churn10,
    "churn25": _churn25,
    "lossy-crash": _lossy_crash,
}
