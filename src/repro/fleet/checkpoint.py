"""The per-shard checkpoint store backing crash/restart/handoff.

A :class:`CheckpointStore` holds the durable snapshots of crashed or
roaming user actors — profile windows, obfuscation tables, privacy
ledgers, RNG streams — keyed by ``user_index``.  It is in-memory by
default; given a directory it also mirrors every entry to a JSON file,
which is what ``repro fleet run --checkpoint-dir`` uses to leave an
inspectable trail of what survived each fault.

Privacy note: a snapshot contains the user's *true* buffered check-ins
(the open profile window), so the store is a sensitive sink and is
registered with the flow linter's policy
(:mod:`repro.analysis.dataflow.policy`) — writes here are audited, not
incidental.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Keyed snapshot storage with optional on-disk mirroring."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._entries: Dict[int, Dict[str, Any]] = {}
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        #: Lifetime put() count (round trips, for tests and reports).
        self.puts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_index: int) -> bool:
        return user_index in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    def _path(self, user_index: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"seat-{user_index:06d}.json")

    def put(self, user_index: int, snapshot: Dict[str, Any]) -> None:
        """Persist one actor snapshot (overwrites any previous one)."""
        self._entries[user_index] = snapshot
        self.puts += 1
        if self.directory is not None:
            with open(self._path(user_index), "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh)

    def get(self, user_index: int) -> Optional[Dict[str, Any]]:
        """The stored snapshot, or None."""
        return self._entries.get(user_index)

    def pop(self, user_index: int) -> Optional[Dict[str, Any]]:
        """Remove and return the stored snapshot, or None.

        Restores *pop* rather than read: a consumed checkpoint must not
        be restorable twice, or a later drain would double-finalize the
        user.
        """
        snapshot = self._entries.pop(user_index, None)
        if snapshot is not None and self.directory is not None:
            try:
                os.remove(self._path(user_index))
            except FileNotFoundError:
                pass
        return snapshot

    def discard(self, user_index: int) -> bool:
        """Destroy the stored snapshot (lossy crash); True if one existed."""
        return self.pop(user_index) is not None

    def keys(self) -> Iterator[int]:
        """Stored user indexes, ascending."""
        return iter(sorted(self._entries))

    def contents(self) -> Dict[int, Dict[str, Any]]:
        """A shallow copy of every entry (for shard checkpointing)."""
        return dict(self._entries)

    def restore_contents(self, entries: Dict[int, Dict[str, Any]]) -> None:
        """Replace the store's entries (shard restore path)."""
        self._entries = {int(k): v for k, v in entries.items()}
