"""Run a scenario against the serve workload, report, emit bench rows.

The entry point :func:`run_fleet` resolves a scenario (a built-in name,
a scenario file, or a :class:`~repro.fleet.scenario.Scenario` object),
runs the same seeded serve workload under fault injection, and returns
the :class:`~repro.serve.harness.ServiceReport` — so the fleet CLI, the
fleet-smoke CI job, and the robustness benchmark all drive one code
path.  :func:`bench_fleet_payload` reduces a faulted run and its
no-fault baseline to the committed ``BENCH_fleet.json`` shape, pinning
the churn p99 against the baseline p99 for the regression gate.

Serve imports are deferred into the functions: the serve package itself
imports :mod:`repro.fleet.scenario` (shard specs carry scenarios), so a
module-level import here would cycle through ``repro.fleet.__init__``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.fleet.scenario import BUILTIN_SCENARIOS, Scenario, builtin_scenario

if TYPE_CHECKING:
    from repro.serve.harness import ServiceReport

__all__ = ["bench_fleet_payload", "resolve_scenario", "run_fleet"]


def resolve_scenario(
    spec: Union[str, Scenario],
    n_events: int,
    user_ids: List[str],
) -> Scenario:
    """A :class:`Scenario` from a built-in name, a file path, or itself.

    Built-in names win over same-named files (they are documented and
    stable); anything else must exist on disk as a YAML/JSON scenario.
    """
    if isinstance(spec, Scenario):
        return spec
    if spec in BUILTIN_SCENARIOS:
        return builtin_scenario(spec, n_events, user_ids)
    if os.path.exists(spec):
        return Scenario.from_file(spec)
    known = ", ".join(sorted(BUILTIN_SCENARIOS))
    raise ValueError(
        f"unknown scenario {spec!r}: not a built-in ({known}) and not a file"
    )


def run_fleet(
    scenario: Union[str, Scenario, None],
    n_users: int = 50,
    n_events: int = 2_000,
    n_campaigns: int = 200,
    seed: int = 0,
    n_shards: int = 2,
    replay: bool = True,
    use_processes: bool = True,
    qps: float = 0.0,
    checkpoint_dir: Optional[str] = None,
    dispatch_timeout_s: Optional[float] = None,
) -> "ServiceReport":
    """Run the serve workload under ``scenario`` and report.

    ``scenario=None`` runs the no-fault baseline — the digest and SLO
    reference every faulted run is compared against.  Replay is the
    default here (unlike ``run_service``): fault injection is first a
    determinism instrument, live QPS mode is the explicit opt-out.
    """
    from repro.serve.events import workload_user_ids
    from repro.serve.harness import run_service

    resolved: Optional[Scenario] = None
    if scenario is not None:
        resolved = resolve_scenario(
            scenario, n_events, workload_user_ids(n_users)
        )
    return run_service(
        n_users=n_users,
        n_events=n_events,
        n_campaigns=n_campaigns,
        seed=seed,
        n_shards=n_shards,
        qps=qps,
        replay=replay,
        use_processes=use_processes,
        scenario=resolved,
        checkpoint_dir=checkpoint_dir,
        dispatch_timeout_s=dispatch_timeout_s,
    )


def bench_fleet_payload(
    faulted: "ServiceReport",
    baseline: "ServiceReport",
) -> Dict[str, Any]:
    """A ``BENCH_fleet.json`` payload: churn SLOs pinned to the baseline.

    ``stage_seconds`` carries both runs' pin quantiles plus their ratio,
    so ``repro bench --compare`` trips when churn degrades the p99
    relative to the no-fault baseline — not merely when wall time moves.
    """
    slo_f = faulted.slo
    slo_b = baseline.slo
    p99_ratio = (
        slo_f["pin_p99_s"] / slo_b["pin_p99_s"] if slo_b["pin_p99_s"] > 0 else 0.0
    )
    scenario = faulted.config.scenario
    counters = faulted.metrics.get("counters", {})
    audit = faulted.audit
    notes: List[str] = [
        f"scenario={scenario.name if scenario else 'none'}",
        f"backend={faulted.backend}",
        f"shards={faulted.config.n_shards}",
        f"replay={faulted.config.replay}",
        f"pin_p99_ratio={p99_ratio:.3f}",
        f"crashes={counters.get('fleet.crashes', 0)}",
        f"handoffs={counters.get('fleet.handoffs', 0)}",
        f"unserved={counters.get('fleet.unserved_events', 0)}",
        f"audit_ok={audit.ok}",
    ]
    return {
        "experiment_id": "fleet",
        "title": "repro.fleet: serve under deterministic churn",
        "wall_seconds": faulted.wall_seconds,
        "workers": faulted.config.n_shards,
        "scale": {
            "name": "fleet-churn",
            "n_users": faulted.config.workload.n_users,
            "n_events": faulted.config.workload.n_events,
            "n_campaigns": faulted.config.workload.n_campaigns,
            "seed": faulted.config.workload.seed,
            "scenario_hash": scenario.content_hash() if scenario else None,
        },
        "stage_seconds": {
            "pin_p50": slo_f["pin_p50_s"],
            "pin_p99": slo_f["pin_p99_s"],
            "baseline_pin_p50": slo_b["pin_p50_s"],
            "baseline_pin_p99": slo_b["pin_p99_s"],
            "pin_p99_ratio": p99_ratio,
        },
        "cache": None,
        "rows": [
            {
                "processed": faulted.processed,
                "unserved": counters.get("fleet.unserved_events", 0),
                "qps_achieved": slo_f["qps_achieved"],
                "baseline_qps_achieved": slo_b["qps_achieved"],
                "epsilon_spent": audit.gauge_epsilon,
                "lost_epsilon": audit.lost_epsilon,
            }
        ],
        "notes": notes,
    }
