"""``repro.fleet``: deterministic fault injection for the edge fleet.

The serving layer (:mod:`repro.serve`) runs per-user actors sharded
across worker processes; this package makes that fleet *breakable on
purpose*.  A :class:`Scenario` is a seeded, declarative program of
faults — device crashes (with or without persisted tables), restarts,
user-to-device handoffs, shard network partitions and heals, slow
devices — scheduled against positions on the global event timeline, so
the same scenario replays bit-identically at any ``--shards`` count and
on either execution backend.

The pieces:

* :mod:`repro.fleet.scenario` — the frozen event types, the
  :class:`Scenario` container (JSON/YAML round-trip, content hash), and
  the built-in churn/lossy-crash generators;
* :mod:`repro.fleet.runtime` — the per-shard engine that compiles a
  scenario into per-user fault timelines and applies crash / restore /
  handoff / slow-device effects around actor event handling;
* :mod:`repro.fleet.checkpoint` — the snapshot store actors park their
  state in across crashes (a flow-lint sink: snapshots carry true
  check-ins);
* :mod:`repro.fleet.audit` — the fleet-wide privacy-ledger
  reconciliation (gauges == audit bitwise; lost budget surfaced, never
  silent);
* :mod:`repro.fleet.harness` — ``run_fleet`` / ``BENCH_fleet`` glue for
  the CLI, CI, and benchmarks.

See ``docs/fleet.md`` for the model and the replay guarantees.
"""

from repro.fleet.audit import FleetAudit, audit_fleet
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.harness import bench_fleet_payload, resolve_scenario, run_fleet
from repro.fleet.runtime import EventDisposition, FleetShardRuntime
from repro.fleet.scenario import (
    BUILTIN_SCENARIOS,
    DeviceCrash,
    DeviceRestart,
    NetworkHeal,
    NetworkPartition,
    Scenario,
    SlowShard,
    UserHandoff,
    builtin_scenario,
    churn_scenario,
    device_of,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "CheckpointStore",
    "DeviceCrash",
    "DeviceRestart",
    "EventDisposition",
    "FleetAudit",
    "FleetShardRuntime",
    "NetworkHeal",
    "NetworkPartition",
    "Scenario",
    "SlowShard",
    "UserHandoff",
    "audit_fleet",
    "bench_fleet_payload",
    "builtin_scenario",
    "churn_scenario",
    "device_of",
    "resolve_scenario",
    "run_fleet",
]
