"""Fleet-wide replicated privacy-ledger audit.

Two independent accountings of the run's privacy spend must agree after
any amount of churn:

* the **gauges** (``privacy.epsilon_spent``/``privacy.delta_spent``),
  accumulated event by event inside the shard workers and merged
  parent-side in canonical order; and
* the **audit sums**, folded from the raw per-event ledger charges the
  shards shipped alongside their responses, through the *same* float
  operation sequence.

These two must be **bitwise equal** — crash, restore, and handoff all
preserve the property because a restore never re-emits a gauge and a
snapshot never drops a recorded charge.  The third accounting, the sum
over the *surviving* per-actor ledgers, is allowed to fall short of the
audit by exactly the budget that unpersisted crashes destroyed: that
loss is surfaced on the ``ledger.lost_*`` gauges, and the conservation
check here verifies ``surviving + lost ≈ audited`` (approximately —
the three sums associate their floats differently).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict

from repro.obs.fleet import (
    LEDGER_LOST_DELTA,
    LEDGER_LOST_ENTRIES,
    LEDGER_LOST_EPSILON,
)

if TYPE_CHECKING:
    from repro.serve.service import ServeResult

__all__ = ["FleetAudit", "audit_fleet"]

#: Relative tolerance for the (re-associated) conservation sum.
CONSERVATION_REL_TOL = 1e-9


@dataclass(frozen=True)
class FleetAudit:
    """The three-way budget reconciliation for one service run."""

    #: Metered spend: the merged ``privacy.*_spent`` gauges.
    gauge_epsilon: float
    gauge_delta: float
    #: Audited spend: ledger charges folded in gauge operation order.
    audit_epsilon: float
    audit_delta: float
    #: Spend still on the books of actors alive at drain time.
    surviving_epsilon: float
    surviving_delta: float
    #: Spend destroyed by unpersisted crashes (explicit, never silent).
    lost_epsilon: float
    lost_delta: float
    lost_entries: int
    #: The hard invariant: gauges equal the audit *bitwise*.
    gauge_matches_audit: bool
    #: surviving + lost ≈ audited (re-associated float sums).
    conservation_ok: bool
    conservation_residual_epsilon: float

    @property
    def ok(self) -> bool:
        """Both checks passed."""
        return self.gauge_matches_audit and self.conservation_ok

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for reports and the CLI."""
        return asdict(self)


def audit_fleet(result: "ServeResult") -> FleetAudit:
    """Reconcile one run's gauges, audit sums, and surviving ledgers."""
    gauges = result.metrics.get("gauges", {})
    gauge_eps = float(gauges.get("privacy.epsilon_spent", 0.0))
    gauge_delta = float(gauges.get("privacy.delta_spent", 0.0))
    lost_eps = float(gauges.get(LEDGER_LOST_EPSILON, 0.0))
    lost_delta = float(gauges.get(LEDGER_LOST_DELTA, 0.0))
    counters = result.metrics.get("counters", {})
    lost_entries = int(counters.get(LEDGER_LOST_ENTRIES, 0))
    residual = (result.ledger_epsilon + lost_eps) - result.audit_epsilon
    tolerance = CONSERVATION_REL_TOL * max(1.0, abs(result.audit_epsilon))
    return FleetAudit(
        gauge_epsilon=gauge_eps,
        gauge_delta=gauge_delta,
        audit_epsilon=result.audit_epsilon,
        audit_delta=result.audit_delta,
        surviving_epsilon=result.ledger_epsilon,
        surviving_delta=result.ledger_delta,
        lost_epsilon=lost_eps,
        lost_delta=lost_delta,
        lost_entries=lost_entries,
        gauge_matches_audit=(
            gauge_eps == result.audit_epsilon
            and gauge_delta == result.audit_delta
        ),
        conservation_ok=abs(residual) <= tolerance,
        conservation_residual_epsilon=residual,
    )
