"""The per-shard fleet runtime: scenario events applied deterministically.

The runtime compiles a :class:`~repro.fleet.scenario.Scenario` into one
*personal timeline* per user: a list of (``at``, action) entries produced
by walking the scenario's device-level events in stable ``(at,
position)`` order while tracking which users live on which device and
each device's health.  At serve time, a user's pending entries are
applied lazily — inside the user's own next event (or their finalize
slot), within that event's metrics-collection window — so every fault's
side effects (snapshot round trips, lost-budget gauges, recovery
histograms) land at a position on the global timeline that is a pure
function of the scenario and the workload, never of the shard count.
That lazy application is what keeps the replayed metrics digest
bit-identical across ``--shards 1/2/4`` while faults are firing.

The runtime is deliberately collaborator-agnostic: the shard hands it
the actor table and a revive callback, so this module never imports the
serve orchestration (only the actor type, for annotations).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set

from repro.edge.clock import TimeSource, VirtualTimeSource
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.scenario import (
    DeviceCrash,
    DeviceRestart,
    Scenario,
    SlowShard,
    UserHandoff,
    device_of,
)
from repro.obs import trace
from repro.obs.fleet import (
    FLEET_CRASHES,
    FLEET_CRASHES_LOSSY,
    FLEET_DRAIN_RESTORES,
    FLEET_FRESH_STARTS,
    FLEET_HANDOFFS,
    FLEET_RECOVERY_SECONDS,
    FLEET_RESTORES,
    FLEET_SLOW_EVENTS,
    FLEET_UNSERVED,
    LEDGER_LOST_DELTA,
    LEDGER_LOST_ENTRIES,
    LEDGER_LOST_EPSILON,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS

if TYPE_CHECKING:
    from repro.serve.actor import UserActor

__all__ = ["EventDisposition", "FleetShardRuntime"]

#: Rebuild an actor from a snapshot (the shard supplies construction
#: context: edge config, time source, ledger cap).
ReviveFn = Callable[[Dict[str, Any]], "UserActor"]

_END_OF_TIME = sys.maxsize


@dataclass(frozen=True)
class EventDisposition:
    """What the fleet decided about one schedule event."""

    #: False means the user's device is down: skip the event entirely
    #: (no response, no charge) and count it as unserved.
    served: bool
    #: Slow-device latency injected before serving (0.0 when healthy).
    latency_s: float = 0.0


@dataclass
class _Entry:
    """One compiled personal-timeline entry for one user."""

    at: int
    kind: str  # "crash" | "restart" | "handoff" | "slow"
    persist: bool = True
    #: Handoff: health inherited from the target device at that instant.
    down: bool = False
    latency_s: Optional[float] = None


@dataclass
class _Seat:
    """One user's fleet-side state (beside, not inside, the actor)."""

    cursor: int = 0
    down: bool = False
    latency_s: Optional[float] = None
    #: Bumped whenever the seat's durable state is destroyed; actors
    #: created at epoch > 0 reseed with an epoch-suffixed spawn key.
    epoch: int = 0


def _compile(
    scenario: Scenario, user_ids: Sequence[str]
) -> Dict[int, List[_Entry]]:
    """Walk the scenario once, emitting each user's personal timeline."""
    n_devices = scenario.n_devices
    index_of = {uid: i for i, uid in enumerate(user_ids)}
    membership = {
        i: device_of(uid, n_devices) for i, uid in enumerate(user_ids)
    }
    users_on: Dict[int, Set[int]] = {d: set() for d in range(n_devices)}
    for i, device in membership.items():
        users_on[device].add(i)
    # (down, slow latency) per device, tracked through the walk so
    # handoff entries can inherit the exact target health.
    status: Dict[int, List[object]] = {
        d: [False, None] for d in range(n_devices)
    }
    entries: Dict[int, List[_Entry]] = {i: [] for i in range(len(user_ids))}

    for event in scenario.shard_events():
        if isinstance(event, DeviceCrash):
            for i in sorted(users_on[event.device]):
                entries[i].append(
                    _Entry(at=event.at, kind="crash", persist=event.persist_tables)
                )
            status[event.device][0] = True
            status[event.device][1] = None
        elif isinstance(event, DeviceRestart):
            for i in sorted(users_on[event.device]):
                entries[i].append(_Entry(at=event.at, kind="restart"))
            status[event.device][0] = False
            status[event.device][1] = None
        elif isinstance(event, SlowShard):
            for i in sorted(users_on[event.device]):
                entries[i].append(
                    _Entry(at=event.at, kind="slow", latency_s=event.latency_s)
                )
            status[event.device][1] = event.latency_s
        elif isinstance(event, UserHandoff):
            i = index_of.get(event.user)
            if i is None:
                raise ValueError(
                    f"scenario hands off unknown user {event.user!r}"
                )
            old = membership[i]
            if event.from_device is not None and event.from_device != old:
                raise ValueError(
                    f"handoff at={event.at}: user {event.user!r} is on "
                    f"device {old}, not {event.from_device}"
                )
            users_on[old].discard(i)
            users_on[event.to_device].add(i)
            membership[i] = event.to_device
            down, latency = status[event.to_device]
            entries[i].append(
                _Entry(
                    at=event.at,
                    kind="handoff",
                    down=bool(down),
                    latency_s=latency,  # type: ignore[arg-type]
                )
            )
    return entries


class FleetShardRuntime:
    """Apply one scenario's device-level faults inside one shard.

    Each shard builds its own runtime from the same scenario and the
    same global user list; since a user's events and finalize slot
    always live on exactly one shard, the store round trips and metric
    emissions below happen exactly once per user, in the same global
    order, at any shard count.
    """

    def __init__(
        self,
        scenario: Scenario,
        user_ids: Sequence[str],
        time_source: TimeSource,
        checkpoint_dir: Optional[str] = None,
        owned: Optional[Sequence[int]] = None,
    ) -> None:
        self.scenario = scenario
        self.user_ids = list(user_ids)
        self.time_source = time_source
        self.store = CheckpointStore(checkpoint_dir)
        self._entries = _compile(scenario, self.user_ids)
        self._seats = {i: _Seat() for i in range(len(self.user_ids))}
        #: User indexes routed to this shard.  Timelines are compiled for
        #: everyone (membership is global), but only owned seats are ever
        #: applied or drained — otherwise every shard would re-apply every
        #: fault at finalize and the fleet counters would scale with the
        #: shard count.
        self._owned: Optional[Set[int]] = (
            None if owned is None else set(owned)
        )

    # -- serve-time hooks -------------------------------------------------

    def before_event(
        self,
        seq: int,
        user_index: int,
        actors: Dict[int, "UserActor"],
        revive: ReviveFn,
    ) -> EventDisposition:
        """Apply the user's pending faults, then rule on the event.

        Must run inside the event's metrics-collection window: every
        counter/gauge emitted here merges at this event's seq position.
        """
        seat = self._seats[user_index]
        self._apply_until(seq, user_index, seat, actors, revive)
        registry = trace.get_registry()
        if seat.down:
            registry.counter(FLEET_UNSERVED).inc()
            return EventDisposition(served=False)
        if seat.latency_s:
            registry.counter(FLEET_SLOW_EVENTS).inc()
            self._inject_latency(seat.latency_s)
            return EventDisposition(served=True, latency_s=seat.latency_s)
        return EventDisposition(served=True)

    def spawn_epoch(self, user_index: int) -> int:
        """The epoch a freshly created actor should reseed with."""
        seat = self._seats.get(user_index)
        if seat is None:
            return 0
        if seat.epoch > 0:
            trace.get_registry().counter(FLEET_FRESH_STARTS).inc()
        return seat.epoch

    # -- drain-time hooks -------------------------------------------------

    def finalize_seats(self, actors: Dict[int, "UserActor"]) -> List[int]:
        """Every seat the drain must visit, in user-index order.

        Live actors, parked snapshots, and seats with faults still
        pending (e.g. a lossy crash scheduled past the user's last
        event) all get a finalize slot, so no side effect is dropped.
        """
        pending = {
            i
            for i, entries in self._entries.items()
            if self._seats[i].cursor < len(entries)
            and (self._owned is None or i in self._owned)
        }
        return sorted(set(actors) | set(self.store.keys()) | pending)

    def before_finalize(
        self,
        user_index: int,
        actors: Dict[int, "UserActor"],
        revive: ReviveFn,
    ) -> None:
        """Drain-time catch-up for one seat (inside its collect window).

        Applies every remaining timeline entry, then revives a parked
        snapshot so the user's trailing window is flushed and their
        surviving ledger is counted.
        """
        seat = self._seats[user_index]
        self._apply_until(_END_OF_TIME, user_index, seat, actors, revive)
        if user_index not in actors:
            state = self.store.pop(user_index)
            if state is not None:
                self._revive(user_index, state, actors, revive, FLEET_DRAIN_RESTORES)

    # -- shard checkpoint (network partition support) ---------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        """The runtime's durable state, for shard checkpoint/restore."""
        return {
            "seats": {
                str(i): [seat.cursor, seat.down, seat.latency_s, seat.epoch]
                for i, seat in self._seats.items()
            },
            "store": {str(k): v for k, v in self.store.contents().items()},
            "puts": self.store.puts,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt :meth:`checkpoint_state` output (same scenario/users)."""
        seats = state["seats"]
        assert isinstance(seats, dict)
        for key, packed in seats.items():
            cursor, down, latency, epoch = packed
            seat = self._seats[int(key)]
            seat.cursor = int(cursor)
            seat.down = bool(down)
            seat.latency_s = None if latency is None else float(latency)
            seat.epoch = int(epoch)
        contents = state["store"]
        assert isinstance(contents, dict)
        self.store.restore_contents(
            {int(k): v for k, v in contents.items()}
        )
        self.store.puts = int(state.get("puts", 0))

    # -- internals --------------------------------------------------------

    def _apply_until(
        self,
        seq: int,
        user_index: int,
        seat: _Seat,
        actors: Dict[int, "UserActor"],
        revive: ReviveFn,
    ) -> None:
        entries = self._entries.get(user_index, [])
        while seat.cursor < len(entries) and entries[seat.cursor].at <= seq:
            self._apply(entries[seat.cursor], user_index, seat, actors, revive)
            seat.cursor += 1

    def _apply(
        self,
        entry: _Entry,
        user_index: int,
        seat: _Seat,
        actors: Dict[int, "UserActor"],
        revive: ReviveFn,
    ) -> None:
        registry = trace.get_registry()
        if entry.kind == "crash":
            registry.counter(FLEET_CRASHES).inc()
            actor = actors.pop(user_index, None)
            if entry.persist:
                if actor is not None:
                    self.store.put(user_index, actor.snapshot())
            else:
                destroyed = False
                if actor is not None:
                    destroyed = True
                    registry.gauge(LEDGER_LOST_EPSILON).add(
                        actor.ledger.total_epsilon
                    )
                    registry.gauge(LEDGER_LOST_DELTA).add(
                        actor.ledger.total_delta
                    )
                    registry.counter(LEDGER_LOST_ENTRIES).inc(
                        actor.ledger.spends
                    )
                parked = self.store.pop(user_index)
                if parked is not None:
                    # A snapshot parked from an earlier fault is state
                    # too: its ledger is destroyed with the device, and
                    # the loss is surfaced identically.
                    destroyed = True
                    ledger = parked["ledger"]
                    assert isinstance(ledger, dict)
                    rows = ledger["entries"]
                    registry.gauge(LEDGER_LOST_EPSILON).add(
                        float(sum(row[1] for row in rows))
                    )
                    registry.gauge(LEDGER_LOST_DELTA).add(
                        float(sum(row[2] for row in rows))
                    )
                    registry.counter(LEDGER_LOST_ENTRIES).inc(len(rows))
                if destroyed:
                    seat.epoch += 1
                    registry.counter(FLEET_CRASHES_LOSSY).inc()
            seat.down = True
            seat.latency_s = None
        elif entry.kind == "restart":
            seat.down = False
            seat.latency_s = None
            state = self.store.pop(user_index)
            if state is not None:
                self._revive(user_index, state, actors, revive, FLEET_RESTORES)
        elif entry.kind == "handoff":
            registry.counter(FLEET_HANDOFFS).inc()
            actor = actors.pop(user_index, None)
            if actor is not None:
                self.store.put(user_index, actor.snapshot())
            seat.down = entry.down
            seat.latency_s = entry.latency_s
            if not seat.down:
                state = self.store.pop(user_index)
                if state is not None:
                    self._revive(
                        user_index, state, actors, revive, FLEET_RESTORES
                    )
        elif entry.kind == "slow":
            seat.latency_s = entry.latency_s
        else:  # pragma: no cover - compile emits only the kinds above
            raise RuntimeError(f"unknown fleet entry kind: {entry.kind!r}")

    def _revive(
        self,
        user_index: int,
        state: Dict[str, Any],
        actors: Dict[int, "UserActor"],
        revive: ReviveFn,
        counter_name: str,
    ) -> None:
        registry = trace.get_registry()
        t0 = self.time_source.monotonic()
        actors[user_index] = revive(state)
        registry.counter(counter_name).inc()
        registry.histogram(FLEET_RECOVERY_SECONDS, DEFAULT_TIME_BUCKETS).observe(
            self.time_source.monotonic() - t0
        )

    def _inject_latency(self, latency_s: float) -> None:
        """Deterministic slow-device delay: virtual ticks or a real sleep."""
        if isinstance(self.time_source, VirtualTimeSource):
            if self.time_source.tick > 0:
                self.time_source.advance(
                    int(round(latency_s / self.time_source.tick))
                )
        else:
            time.sleep(latency_s)
