"""SARIF 2.1.0 emission for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests: uploading a ``.sarif`` file from
CI turns each finding into an inline annotation on the pull request.
Only the small subset of the spec that code scanning actually reads is
emitted — tool driver with a rule catalogue, one result per finding
with a physical location, and a stable ``partialFingerprints`` entry
matching the baseline fingerprint so re-uploads deduplicate.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

from repro.analysis.baseline import fingerprint
from repro.analysis.engine import Finding

__all__ = ["SARIF_VERSION", "sarif_report"]

#: SARIF schema version emitted.
SARIF_VERSION = "2.1.0"

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


class RuleLike(Protocol):
    """Anything with an id, a name, and a rationale (Rule, FlowRuleInfo)."""

    id: str
    name: str
    rationale: str


def _rule_descriptor(rule: RuleLike) -> Dict[str, object]:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {"reprolint/v1": fingerprint(finding)},
    }


def sarif_report(
    findings: Sequence[Finding],
    rules: Sequence[RuleLike],
    tool_version: str = "1.0.0",
) -> Dict[str, object]:
    """Build a SARIF 2.1.0 document for ``findings``.

    ``rules`` is the catalogue that *ran* (not just the rules that
    fired), so code scanning can show rule help for clean runs too.
    """
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = [
        _result(finding, rule_index) for finding in findings
    ]
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/reprolint",
                        "version": tool_version,
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///", "description": {"text": "repo root"}}
                },
                "results": results,
            }
        ],
    }
