"""The reprolint engine: file contexts, the rule protocol, suppressions.

A :class:`Rule` walks one file's AST via a :class:`FileContext` (parsed
tree, resolved imports, parent links, module role) and yields
:class:`Finding` records.  The engine owns everything rule-independent:
discovering files, parsing, building the context, and honouring
``# reprolint: disable=...`` suppression comments.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ImportMap",
    "FileContext",
    "Rule",
    "SuppressionIndex",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
]

#: Rule id reported for files the engine cannot parse.
PARSE_ERROR_RULE = "E999"

#: Path components that mark a file as test/bench/example code, where the
#: stochastic-discipline rules are deliberately relaxed.
TEST_PART_NAMES = frozenset({"tests", "test", "benchmarks", "examples", "conftest.py"})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation used by the ``--format json`` report."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class ImportMap:
    """Maps the names a module binds via imports to dotted origin paths.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy.random
    import default_rng as drg`` binds ``drg -> numpy.random.default_rng``.
    Rules use this to recognise e.g. ``np.random.normal`` regardless of
    the alias chosen by the file under analysis.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        """Collect every import binding in ``tree``."""
        m = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        m.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        m.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative imports never target numpy/stdlib
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    m.aliases[bound] = f"{base}.{alias.name}" if base else alias.name
        return m

    def resolve(self, chain: Sequence[str]) -> Optional[str]:
        """Dotted origin of an attribute chain, or None if not import-derived."""
        if not chain:
            return None
        origin = self.aliases.get(chain[0])
        if origin is None:
            return None
        return ".".join([origin, *chain[1:]])


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """The raw name chain of a Name/Attribute expression (``a.b.c``)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return list(reversed(parts))
    return None


class SuppressionIndex:
    """Per-file record of ``# reprolint: disable`` directives.

    Inline directives suppress matching findings on their own physical
    line; a directive on a standalone comment line suppresses the next
    line (useful before long statements); ``disable-file`` suppresses the
    rule for the whole file.  ``disable=all`` matches every rule.

    When the parsed ``tree`` is supplied, directives are associated with
    whole statements instead of single physical lines: an inline
    directive anywhere in a multi-line statement covers the statement's
    full span, a directive on a decorator line covers the decorated
    ``def``/``class`` header, and a standalone comment above a statement
    covers that statement's span.  Compound-statement headers (``if``,
    ``for``, ``with``, ``def``) never swallow findings in their bodies.
    """

    #: Safety cap on how many lines one directive may cover.
    MAX_SPAN = 200

    def __init__(self) -> None:
        self.inline: Dict[int, Set[str]] = {}
        self.standalone: Dict[int, Set[str]] = {}
        self.file_level: Set[str] = set()

    @classmethod
    def from_source(
        cls, source: str, tree: Optional[ast.AST] = None
    ) -> "SuppressionIndex":
        """Tokenize ``source`` and index every suppression comment."""
        idx = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return idx
        lines = source.splitlines()
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            line = tok.start[0]
            if match.group("kind") == "disable-file":
                idx.file_level |= rules
            elif line - 1 < len(lines) and lines[line - 1].lstrip().startswith("#"):
                idx.standalone.setdefault(line, set()).update(rules)
            else:
                idx.inline.setdefault(line, set()).update(rules)
        if tree is not None:
            idx._bind_tree(tree)
        return idx

    def _bind_tree(self, tree: ast.AST) -> None:
        """Expand line directives over the statement spans they touch."""
        spans = statement_spans(tree)
        expanded: Dict[int, Set[str]] = {}
        for line, rules in self.inline.items():
            for span_line in _span_lines(spans, line, self.MAX_SPAN):
                expanded.setdefault(span_line, set()).update(rules)
        self.inline = expanded
        # A standalone comment above a statement covers the whole span:
        # re-anchor the directive so the existing line-1 lookup finds it
        # from any line of the statement.
        extra: Dict[int, Set[str]] = {}
        for line, rules in self.standalone.items():
            for span_line in _span_lines(spans, line + 1, self.MAX_SPAN):
                extra.setdefault(span_line - 1, set()).update(rules)
        for line, rules in extra.items():
            self.standalone.setdefault(line, set()).update(rules)

    def _matches(self, rules: Set[str], rule: str) -> bool:
        return "all" in rules or rule in rules

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a directive in this file."""
        if self._matches(self.file_level, finding.rule):
            return True
        inline = self.inline.get(finding.line)
        if inline is not None and self._matches(inline, finding.rule):
            return True
        above = self.standalone.get(finding.line - 1)
        return above is not None and self._matches(above, finding.rule)


def statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Header spans of every statement, innermost-last.

    Simple statements span their full physical extent; compound
    statements (and decorated ``def``/``class``) span only their header —
    first decorator through the line before the body starts — so a
    directive on the header never silences findings inside the body.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        if isinstance(
            node,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.If,
                ast.For,
                ast.AsyncFor,
                ast.While,
                ast.With,
                ast.AsyncWith,
                ast.Try,
            ),
        ):
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, min(d.lineno for d in decorators))
            body = getattr(node, "body", [])
            if body:
                end = max(start, body[0].lineno - 1)
        spans.append((start, end))
    return spans


def _span_lines(
    spans: List[Tuple[int, int]], line: int, max_span: int
) -> List[int]:
    """Every line of the innermost statement span containing ``line``."""
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end and end - start < max_span:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
    if best is None:
        return [line]
    return list(range(best[0], best[1] + 1))


@dataclass
class FileContext:
    """Everything a rule needs to inspect one parsed Python file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    module: Optional[str] = None
    role: str = "src"
    imports: ImportMap = field(default_factory=ImportMap)
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        source: str,
        path: Path,
        root: Optional[Path] = None,
        role: Optional[str] = None,
    ) -> "FileContext":
        """Parse ``source`` and assemble the full analysis context."""
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            relpath=relative_to_root(path, root),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module=module_name_of(path),
            role=role if role is not None else detect_role(path),
            imports=ImportMap.from_tree(tree),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[id(child)] = parent
        return ctx

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The direct AST parent of ``node`` (None at the module root)."""
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """All AST ancestors of ``node``, innermost first."""
        cur = self.parent_of(node)
        while cur is not None:
            yield cur
            cur = self.parent_of(cur)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Import-resolved dotted path of a Name/Attribute expression."""
        chain = dotted_chain(node)
        if chain is None:
            return None
        return self.imports.resolve(chain)


class Rule(abc.ABC):
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one file context.  The engine applies
    suppressions and role filtering afterwards, but rules that only make
    sense outside test code should also consult ``ctx.role`` so their
    behaviour is self-contained.
    """

    #: Stable short identifier, e.g. ``RNG001``; used in suppressions.
    id: str = "X000"
    #: Human-readable one-line name.
    name: str = ""
    #: Which paper/system invariant the rule protects.
    rationale: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at ``node``."""
        return Finding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def detect_role(path: Path) -> str:
    """``"test"`` for test/bench/example files, ``"src"`` otherwise."""
    parts = set(path.parts)
    if parts & TEST_PART_NAMES:
        return "test"
    if path.name.startswith("test_") or path.name == "conftest.py":
        return "test"
    return "src"


def module_name_of(path: Path) -> Optional[str]:
    """Dotted module name, derived from an ``src`` layout or package dirs."""
    parts = list(path.parts)
    if "src" in parts:
        sub = parts[parts.index("src") + 1 :]
    else:
        sub = [path.name]
        parent = path.parent
        while (parent / "__init__.py").exists():
            sub.insert(0, parent.name)
            parent = parent.parent
        if len(sub) == 1:
            return None
    if not sub:
        return None
    if sub[-1].endswith(".py"):
        sub[-1] = sub[-1][: -len(".py")]
    if sub[-1] == "__init__":
        sub = sub[:-1]
    return ".".join(sub) if sub else None


def relative_to_root(path: Path, root: Optional[Path]) -> str:
    """POSIX-style path relative to ``root`` (falls back to the input)."""
    try:
        base = root if root is not None else Path.cwd()
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for p in paths:
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p


def analyze_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
    role: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Run ``rules`` over one file's source.

    Returns ``(findings, n_suppressed)``; a syntax error yields a single
    :data:`PARSE_ERROR_RULE` finding so broken files fail the lint run
    rather than being skipped silently.
    """
    try:
        ctx = FileContext.build(source, path, root=root, role=role)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=relative_to_root(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            ],
            0,
        )
    suppressions = SuppressionIndex.from_source(source, tree=ctx.tree)
    kept: List[Finding] = []
    n_suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding):
                n_suppressed += 1
            else:
                kept.append(finding)
    return sorted(kept), n_suppressed


def analyze_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
    role: Optional[str] = None,
) -> Tuple[List[Finding], int, int]:
    """Run ``rules`` over every python file under ``paths``.

    Returns ``(findings, files_scanned, n_suppressed)``.
    """
    findings: List[Finding] = []
    n_files = 0
    n_suppressed = 0
    for path in iter_python_files(paths):
        n_files += 1
        file_findings, suppressed = analyze_source(
            path.read_text(encoding="utf-8"), path, rules, root=root, role=role
        )
        findings.extend(file_findings)
        n_suppressed += suppressed
    return sorted(findings), n_files, n_suppressed
