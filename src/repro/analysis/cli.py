"""Command-line front end for reprolint.

Exit codes: ``0`` clean (after suppressions and baseline), ``1`` new
findings, ``2`` usage errors.  The JSON format is stable and intended
for tooling::

    python -m repro.analysis src/repro --format json | jq .counts
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.dataflow.flowrules import analyze_flow, flow_rule_catalogue
from repro.analysis.engine import Finding, analyze_paths
from repro.analysis.rules import all_rules
from repro.analysis.sarif import RuleLike, sarif_report

__all__ = ["build_parser", "main"]

#: Version of the JSON report schema.
REPORT_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` / ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: privacy/determinism static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the flow-sensitive dataflow analysis (PRIV/BUD/DET rules)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline; findings it covers do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite --baseline dropping entries no current finding needs",
    )
    parser.add_argument(
        "--fail-on-stale",
        action="store_true",
        help="exit 1 when --baseline carries allowance no finding consumes",
    )
    parser.add_argument(
        "--role",
        choices=["auto", "src", "test"],
        default="auto",
        help="treat analyzed files as src or test code (default: by path)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _selected_ids(
    catalogue: Sequence[RuleLike],
    select: Optional[str],
    ignore: Optional[str],
    parser: argparse.ArgumentParser,
) -> List[str]:
    """Rule ids that survive --select/--ignore, in catalogue order."""
    known = {r.id for r in catalogue}
    kept = [r.id for r in catalogue]
    if select is not None:
        wanted = {s.strip() for s in select.split(",") if s.strip()}
        unknown = wanted - known
        if unknown:
            parser.error(f"unknown rule id(s) in --select: {sorted(unknown)}")
        kept = [rid for rid in kept if rid in wanted]
    if ignore is not None:
        dropped = {s.strip() for s in ignore.split(",") if s.strip()}
        unknown = dropped - known
        if unknown:
            parser.error(f"unknown rule id(s) in --ignore: {sorted(unknown)}")
        kept = [rid for rid in kept if rid not in dropped]
    return kept


def _print_rules(rules: Sequence[RuleLike]) -> None:
    for rule in rules:
        print(f"{rule.id}  {rule.name}")
        print(f"       {rule.rationale}")


def _json_report(
    findings: Sequence[Finding],
    files_scanned: int,
    n_suppressed: int,
    n_baselined: int,
    rules: Sequence[RuleLike],
) -> Dict[str, object]:
    counts: Dict[str, int] = dict(
        sorted(Counter(f.rule for f in findings).items())
    )
    return {
        "version": REPORT_VERSION,
        "tool": "reprolint",
        "files_scanned": files_scanned,
        "rules": [r.id for r in rules],
        "findings": [f.to_dict() for f in findings],
        "counts": counts,
        "suppressed": n_suppressed,
        "baselined": n_baselined,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    catalogue: List[RuleLike] = (
        list(flow_rule_catalogue()) if args.flow else list(all_rules())
    )
    selected = _selected_ids(catalogue, args.select, args.ignore, parser)
    rules = [r for r in catalogue if r.id in selected]

    if args.list_rules:
        _print_rules(rules)
        return 0
    if (args.prune_baseline or args.fail_on_stale) and args.baseline is None:
        parser.error("--prune-baseline/--fail-on-stale require --baseline")

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {[str(p) for p in missing]}")

    if args.flow:
        flow = analyze_flow(paths, root=Path.cwd())
        findings = [f for f in flow.findings if f.rule in set(selected)]
        files_scanned = flow.stats["modules"]
        n_suppressed = flow.n_suppressed
    else:
        role = None if args.role == "auto" else args.role
        classic_rules = [r for r in all_rules() if r.id in set(selected)]
        findings, files_scanned, n_suppressed = analyze_paths(
            paths, classic_rules, root=Path.cwd(), role=role
        )

    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.prune_baseline:
        try:
            stale, remaining = prune_baseline(Path(args.baseline), findings)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        for key, excess in sorted(stale.items()):
            print(f"reprolint: pruned {key} (-{excess})")
        print(
            f"reprolint: baseline {args.baseline} pruned "
            f"({len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'}, "
            f"{remaining} remaining)"
        )
        return 0

    n_baselined = 0
    stale_failure = False
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        if args.fail_on_stale:
            stale = stale_entries(baseline, findings)
            if stale:
                for key, excess in sorted(stale.items()):
                    print(
                        f"reprolint: stale baseline entry {key} "
                        f"(allows {excess} more than the tree carries)",
                        file=sys.stderr,
                    )
                print(
                    f"reprolint: run with --prune-baseline to drop "
                    f"{len(stale)} stale entr"
                    f"{'y' if len(stale) == 1 else 'ies'}",
                    file=sys.stderr,
                )
                stale_failure = True
        findings, n_baselined = filter_baselined(findings, baseline)

    if args.format == "json":
        report = _json_report(
            findings, files_scanned, n_suppressed, n_baselined, rules
        )
        print(json.dumps(report, indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_report(findings, rules), indent=2))
    else:
        for finding in findings:
            print(finding.format())
        summary = (
            f"reprolint: {len(findings)} finding(s) in {files_scanned} file(s)"
            f" ({n_suppressed} suppressed, {n_baselined} baselined)"
        )
        print(summary)
    return 1 if findings or stale_failure else 0


if __name__ == "__main__":
    sys.exit(main())
