"""reprolint: AST-based privacy/determinism static analysis for this repo.

The reproduction's guarantees rest on invariants the type system cannot
see: permanent noise must be drawn once per ``(r, eps, delta, n)`` budget
(paper Section V-C), and every stochastic path must thread an explicit
:class:`numpy.random.Generator` so the worker-count-invariant
``parallel_map`` stays bit-identical.  This package checks those
invariants at lint time instead of discovering them in a figure
regression.

Usage::

    python -m repro.analysis src/repro            # text report, exit 1 on findings
    python -m repro.analysis src/repro --format json
    repro lint src/repro --baseline reprolint-baseline.json

Findings can be suppressed per line with ``# reprolint: disable=RULE`` or
per file with ``# reprolint: disable-file=RULE``; see
``docs/static_analysis.md`` for the rule catalogue.
"""

from repro.analysis.baseline import (
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    FileContext,
    Finding,
    ImportMap,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.rules import all_rules, rules_by_id

__all__ = [
    "FileContext",
    "Finding",
    "ImportMap",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "filter_baselined",
    "fingerprint",
    "iter_python_files",
    "load_baseline",
    "rules_by_id",
    "write_baseline",
]
