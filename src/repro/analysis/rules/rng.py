"""RNG-discipline rules (``RNG001``–``RNG004``).

Every stochastic path in this repo must thread an explicit
:class:`numpy.random.Generator` (or a seed that constructs one) so that
``repro.parallel.parallel_map`` stays bit-identical for any worker
count.  Global/legacy RNG state breaks that contract silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import FileContext, Finding, Rule, dotted_chain

__all__ = [
    "LegacyNumpyRandomCall",
    "StdlibRandomCall",
    "UnseededDefaultRng",
    "NonLocalRngSampling",
]

#: Samplers/state mutators on numpy's *legacy* global RandomState.
LEGACY_NP_SAMPLERS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "rayleigh",
        "laplace",
        "lognormal",
        "gumbel",
        "beta",
        "gamma",
        "multivariate_normal",
    }
)

#: Stochastic entry points of the stdlib ``random`` module.
STDLIB_RANDOM_FUNCS = frozenset(
    {
        "seed",
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
    }
)

#: Instance methods that draw from a Generator-like object.
GENERATOR_SAMPLER_METHODS = frozenset(
    {
        "random",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "rayleigh",
        "laplace",
        "lognormal",
        "gumbel",
        "beta",
        "gamma",
    }
)


def _iter_calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


class LegacyNumpyRandomCall(Rule):
    """``RNG001``: sampling via numpy's legacy module-level RandomState."""

    id = "RNG001"
    name = "legacy numpy.random module-level sampler"
    rationale = (
        "Module-level numpy.random.* samplers share hidden global state, so "
        "results depend on call order across the whole process; parallel_map's "
        "worker-count invariance requires explicit Generators."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag every resolved ``numpy.random.<sampler>()`` call."""
        for call in _iter_calls(ctx):
            origin = ctx.resolve(call.func)
            if origin is None or not origin.startswith("numpy.random."):
                continue
            tail = origin.rsplit(".", 1)[-1]
            if tail in LEGACY_NP_SAMPLERS:
                yield self.finding(
                    ctx,
                    call,
                    f"call to legacy global sampler '{origin}'; draw from an "
                    "explicit np.random.Generator threaded through the caller",
                )


class StdlibRandomCall(Rule):
    """``RNG002``: use of the stdlib ``random`` module's global state."""

    id = "RNG002"
    name = "stdlib random.* call"
    rationale = (
        "The stdlib random module is process-global and unseedable per task, "
        "so it cannot reproduce results across worker counts or reruns."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag every resolved stdlib ``random.<func>()`` call."""
        for call in _iter_calls(ctx):
            origin = ctx.resolve(call.func)
            if origin is None:
                continue
            if origin.startswith("random.") and origin.split(".")[1] in STDLIB_RANDOM_FUNCS:
                yield self.finding(
                    ctx,
                    call,
                    f"call to stdlib '{origin}'; use an explicit "
                    "np.random.Generator instead",
                )


class UnseededDefaultRng(Rule):
    """``RNG003``: ``default_rng()`` with no seed outside test code."""

    id = "RNG003"
    name = "unseeded default_rng()"
    rationale = (
        "An unseeded Generator draws OS entropy, so two runs of the same "
        "experiment diverge; library code must accept a seeded fallback."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag argument-less ``default_rng()`` calls in src-role files."""
        if ctx.role != "src":
            return
        for call in _iter_calls(ctx):
            if call.args or call.keywords:
                continue
            origin = ctx.resolve(call.func)
            is_hit = origin is not None and origin.endswith(".default_rng")
            if not is_hit and isinstance(call.func, ast.Name):
                is_hit = call.func.id == "default_rng"
            if is_hit:
                yield self.finding(
                    ctx,
                    call,
                    "default_rng() without a seed draws nondeterministic OS "
                    "entropy; pass a seed or an explicit Generator",
                )


class NonLocalRngSampling(Rule):
    """``RNG004``: sampling from an RNG that was not threaded in explicitly.

    A ``<receiver>.uniform(...)``-style draw is fine when the receiver is
    a parameter, ``self``/``cls`` state, or a Generator constructed in the
    same function; drawing from a module-global or closure RNG hides the
    stochastic dependency from callers and from ``parallel_map``.
    """

    id = "RNG004"
    name = "sampling from a non-local RNG"
    rationale = (
        "Public sampling paths must accept an explicit rng/seed parameter; "
        "module-global Generators make the call graph's randomness invisible."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag sampler-method calls whose receiver is not locally bound."""
        if ctx.role != "src":
            return
        for call in _iter_calls(ctx):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in GENERATOR_SAMPLER_METHODS:
                continue
            chain = dotted_chain(func)
            if chain is None:
                continue
            root = chain[0]
            if root in ("self", "cls"):
                continue
            if ctx.imports.resolve(chain) is not None:
                continue  # module attribute access; RNG001/RNG002 territory
            if self._bound_in_enclosing_scope(ctx, call, root):
                continue
            yield self.finding(
                ctx,
                call,
                f"'{'.'.join(chain)}' samples from an RNG that is neither a "
                "parameter nor constructed locally; thread an explicit "
                "np.random.Generator through this function",
            )

    @staticmethod
    def _bound_in_enclosing_scope(
        ctx: FileContext, node: ast.AST, root: str
    ) -> bool:
        """Is ``root`` a parameter or local binding of any enclosing function?"""
        for anc in ctx.ancestors(node):
            if not isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if root in _parameter_names(anc.args):
                return True
            if not isinstance(anc, ast.Lambda) and root in _local_bindings(anc):
                return True
        return False


def _parameter_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names assigned anywhere inside ``func`` (approximate local scope)."""
    bound: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets = [node.optional_vars]
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound
