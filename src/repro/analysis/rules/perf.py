"""Performance rules (``PERF001``).

The columnar data plane gives every hot primitive a vectorised batch
entry point (``obfuscate_batch``, ``select_index_batch``,
``posterior_weights_array``).  Driving those
primitives one element at a time from a Python loop forfeits the batch
speedup and is almost always an accident — the loop body pays Point
boxing and numpy dispatch per element.  Justified scalar loops (RNG
call-order contracts, batch-API fallback paths) belong in the baseline
or under a suppression comment with the reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["ScalarCallInLoop"]

#: Per-element entry point -> the batch API that replaces it in a loop.
BATCH_ALTERNATIVES: Dict[str, str] = {
    "obfuscate": "obfuscate_batch",
    "select_index": "select_index_batch",
    "posterior_weights": "posterior_weights_array",
}

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class ScalarCallInLoop(Rule):
    """``PERF001``: per-element hot-path call in a loop with a batch API.

    Flags ``.obfuscate()``, ``.select_index()`` and ``posterior_weights``
    calls under a loop: each has a vectorised batch twin that amortises
    dispatch over the whole array.  Loops that *must* stay scalar (to
    preserve an RNG call order, or as the fallback when the duck-typed
    batch API is absent) are justified sites — baseline them or suppress
    with a reason.
    """

    id = "PERF001"
    name = "per-element hot-path call inside a loop"
    rationale = (
        "obfuscate/select_index/posterior_weights all have vectorised "
        "batch APIs; calling them per element from a Python loop pays "
        "boxing and numpy dispatch per item and dominates the experiment "
        "pipelines' wall clock."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag batched-API candidates called per element under a loop."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                tail = func.attr
            elif isinstance(func, ast.Name):
                tail = func.id
            else:
                continue
            if tail not in BATCH_ALTERNATIVES:
                continue
            # Only Name calls to the module-level posterior_weights count;
            # .obfuscate/.select_index are method calls on a mechanism or
            # selector, so a bare Name of those is some unrelated local.
            if isinstance(func, ast.Name) and tail != "posterior_weights":
                continue
            if not any(isinstance(anc, _LOOP_NODES) for anc in ctx.ancestors(node)):
                continue
            yield self.finding(
                ctx,
                node,
                f"'{tail}' called per element inside a loop; use "
                f"{BATCH_ALTERNATIVES[tail]} over the whole array (or "
                "baseline/suppress with the reason the loop must stay "
                "scalar)",
            )
