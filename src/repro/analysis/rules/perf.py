"""Performance rules (``PERF001``–``PERF003``).

The columnar data plane gives every hot primitive a vectorised batch
entry point (``obfuscate_batch``, ``select_index_batch``,
``posterior_weights_array``).  Driving those
primitives one element at a time from a Python loop forfeits the batch
speedup and is almost always an accident — the loop body pays Point
boxing and numpy dispatch per element.  One level up, the population
kernels in :mod:`repro.kernels` subsume whole per-user loops over CSR
shards, so experiment workers that still slice user ranges one at a
time are leaving the same speedup on the table.  Justified scalar loops
(RNG call-order contracts, batch-API fallback paths, deliberately kept
per-user reference modes) belong in the baseline or under a suppression
comment with the reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["ScalarCallInLoop", "PerUserCsrLoop", "ShardMaterialization"]

#: Per-element entry point -> the batch API that replaces it in a loop.
BATCH_ALTERNATIVES: Dict[str, str] = {
    "obfuscate": "obfuscate_batch",
    "select_index": "select_index_batch",
    "posterior_weights": "posterior_weights_array",
}

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class ScalarCallInLoop(Rule):
    """``PERF001``: per-element hot-path call in a loop with a batch API.

    Flags ``.obfuscate()``, ``.select_index()`` and ``posterior_weights``
    calls under a loop: each has a vectorised batch twin that amortises
    dispatch over the whole array.  Loops that *must* stay scalar (to
    preserve an RNG call order, or as the fallback when the duck-typed
    batch API is absent) are justified sites — baseline them or suppress
    with a reason.
    """

    id = "PERF001"
    name = "per-element hot-path call inside a loop"
    rationale = (
        "obfuscate/select_index/posterior_weights all have vectorised "
        "batch APIs; calling them per element from a Python loop pays "
        "boxing and numpy dispatch per item and dominates the experiment "
        "pipelines' wall clock."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag batched-API candidates called per element under a loop."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                tail = func.attr
            elif isinstance(func, ast.Name):
                tail = func.id
            else:
                continue
            if tail not in BATCH_ALTERNATIVES:
                continue
            # Only Name calls to the module-level posterior_weights count;
            # .obfuscate/.select_index are method calls on a mechanism or
            # selector, so a bare Name of those is some unrelated local.
            if isinstance(func, ast.Name) and tail != "posterior_weights":
                continue
            if not any(isinstance(anc, _LOOP_NODES) for anc in ctx.ancestors(node)):
                continue
            yield self.finding(
                ctx,
                node,
                f"'{tail}' called per element inside a loop; use "
                f"{BATCH_ALTERNATIVES[tail]} over the whole array (or "
                "baseline/suppress with the reason the loop must stay "
                "scalar)",
            )


#: Per-user CSR accessors whose presence under a loop marks user-at-a-time
#: iteration over a columnar shard.
CSR_USER_ACCESSORS = frozenset(
    {"user_coords", "user_slice", "user_true_tops", "user_timestamps"}
)


class PerUserCsrLoop(Rule):
    """``PERF002``: per-user loop over a CSR shard in an experiment driver.

    Flags loops in ``repro.experiments`` that touch CSR rows one user at
    a time — per-user accessor calls (``user_coords``/``user_slice``/...)
    or ``*offsets[...]`` subscripts under a loop.  The population kernels
    in :mod:`repro.kernels` process whole shards in single array passes;
    a per-user python loop in a chunk worker re-introduces the scaling
    wall Table II measures.  Deliberate per-user paths (the table2
    ``mode="loop"`` reference, attacks that are inherently per-user)
    are justified sites — baseline them or suppress with the reason.
    """

    id = "PERF002"
    name = "per-user CSR loop in an experiment driver"
    rationale = (
        "Experiment chunk workers should hand whole CSR shards to the "
        "population kernels (repro.kernels); slicing one user per loop "
        "iteration pays python dispatch per user and dominates wall "
        "clock beyond ~10k users."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag per-user CSR row access under a loop in experiments."""
        if ctx.role != "src":
            return
        if ctx.module is None or not ctx.module.startswith("repro.experiments"):
            return
        for node in ast.walk(ctx.tree):
            accessor = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CSR_USER_ACCESSORS
            ):
                accessor = f".{node.func.attr}()"
            elif isinstance(node, ast.Subscript):
                value = node.value
                base = None
                if isinstance(value, ast.Name):
                    base = value.id
                elif isinstance(value, ast.Attribute):
                    base = value.attr
                if base is not None and base.endswith("offsets"):
                    accessor = f"{base}[...]"
            if accessor is None:
                continue
            if not any(isinstance(anc, _LOOP_NODES) for anc in ctx.ancestors(node)):
                continue
            yield self.finding(
                ctx,
                node,
                f"per-user CSR access '{accessor}' inside a loop; process "
                "the whole shard with a population kernel from "
                "repro.kernels (or baseline/suppress with the reason this "
                "path must stay per-user)",
            )


#: CSR shard column names: materializing a whole one onto the heap in a
#: driver defeats the out-of-core serving path at exactly the tier sizes
#: it exists for.
SHARD_COLUMN_NAMES = frozenset(
    {"xs", "ys", "timestamps", "offsets", "top_xs", "top_ys", "top_offsets"}
)

#: ``np.<name>(column)`` calls that copy their argument onto the heap.
NUMPY_MATERIALIZERS = frozenset({"array", "asarray", "ascontiguousarray", "copy"})


def _terminal_name(node: ast.AST) -> "str | None":
    """The trailing identifier of ``xs`` / ``ck.xs`` / ``pop.checkins.xs``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ShardMaterialization(Rule):
    """``PERF003``: whole-shard heap materialization in an experiment driver.

    Flags ``np.asarray``/``np.array``/``np.ascontiguousarray``/``np.copy``
    calls (and ``.copy()`` method calls) whose argument is a CSR shard
    column (``xs``/``ys``/``timestamps``/``offsets``/``top_*``) inside
    ``repro.experiments``.  Columns may be memmap-backed views served out
    of core; copying one materializes the entire shard on the heap, which
    re-introduces the peak-RSS wall the mmap plane removes and silently
    breaks the flat-memory contract at metro-1M scale.  Kernels should
    consume the views in place.  Sites that genuinely need a heap copy
    (e.g. digesting a small derived array) are justified — baseline them
    or suppress with the reason.
    """

    id = "PERF003"
    name = "whole-shard materialization of a CSR column"
    rationale = (
        "Experiment drivers receive CSR columns that may be memmap-backed "
        "views; np.asarray/.copy() on one copies the whole shard onto the "
        "heap, defeating the out-of-core plane's flat peak-RSS contract "
        "at large tiers."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag heap copies of CSR shard columns in experiment modules."""
        if ctx.role != "src":
            return
        if ctx.module is None or not ctx.module.startswith("repro.experiments"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            column = None
            how = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in NUMPY_MATERIALIZERS
                and isinstance(func.value, ast.Name)
                and func.value.id == "np"
                and node.args
            ):
                column = _terminal_name(node.args[0])
                how = f"np.{func.attr}"
            elif isinstance(func, ast.Attribute) and func.attr == "copy":
                column = _terminal_name(func.value)
                how = ".copy()"
            if column not in SHARD_COLUMN_NAMES:
                continue
            yield self.finding(
                ctx,
                node,
                f"{how} materializes shard column '{column}' on the heap; "
                "consume the (possibly memmap-backed) view in place, or "
                "baseline/suppress with the reason a copy is required",
            )
