"""Budget-hygiene rules (``BUD001``–``BUD002``).

The paper's longitudinal guarantee (Section V-C, Theorem 2) holds only
because each eta-frequent location's ``n`` obfuscated outputs are drawn
*once* per ``(r, eps, delta, n)`` budget and pinned; re-drawing noise per
ad release degrades the effective budget with every exposure, exactly
the longitudinal averaging attack the system defends against.  These
rules fence noise generation into the sanctioned modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["NoisePrimitiveOutsideCore", "RedrawInLoop"]

#: Modules allowed to draw planar noise directly.  The population
#: kernels are sanctioned as a package: they consume the calibrated
#: sigmas/epsilons and per-user spawned streams, feeding the same
#: sampling primitives as the mechanisms, just batched per shard.
SANCTIONED_PREFIXES: Tuple[str, ...] = ("repro.core", "repro.kernels")
SANCTIONED_MODULES: Tuple[str, ...] = ("repro.datagen.obfuscate",)

#: The low-level noise primitives of ``repro.core.sampling``, including
#: the uniform-inversion halves the population kernels batch directly.
NOISE_PRIMITIVES = frozenset(
    {
        "sample_gaussian_noise",
        "sample_planar_laplace_noise",
        "rayleigh_radius_from_uniform",
        "planar_laplace_radius_from_uniform",
    }
)

#: Mechanism entry points that draw fresh noise on every call.
FRESH_DRAW_METHODS = frozenset({"obfuscate", "obfuscate_one"})

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _is_sanctioned(module: str) -> bool:
    if module in SANCTIONED_MODULES:
        return True
    return any(
        module == p or module.startswith(p + ".") for p in SANCTIONED_PREFIXES
    )


class NoisePrimitiveOutsideCore(Rule):
    """``BUD001``: raw noise primitives called outside the sanctioned APIs."""

    id = "BUD001"
    name = "noise primitive outside repro.core / repro.datagen.obfuscate"
    rationale = (
        "Only the calibrated mechanisms may turn budget parameters into "
        "noise; ad-hoc sampler calls bypass Theorem 2's sigma calibration "
        "and the budget ledger."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag direct noise-sampler calls from unsanctioned src modules."""
        if ctx.role != "src":
            return
        if ctx.module is not None and _is_sanctioned(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            tail = None
            if isinstance(func, ast.Name):
                tail = func.id
            elif isinstance(func, ast.Attribute):
                tail = func.attr
            if tail in NOISE_PRIMITIVES:
                yield self.finding(
                    ctx,
                    node,
                    f"'{tail}' drawn outside repro.core/repro.datagen.obfuscate; "
                    "go through a calibrated mechanism so the budget ledger "
                    "sees the draw",
                )


class RedrawInLoop(Rule):
    """``BUD002``: fresh mechanism draws inside a loop outside the core.

    ``mechanism.obfuscate(...)`` draws fresh noise; calling it per
    iteration outside the sanctioned modules is the re-draw-per-release
    pattern that voids permanent noise.  Legitimate per-trial measurement
    loops should suppress with a justification comment.
    """

    id = "BUD002"
    name = "fresh-noise draw inside a loop"
    rationale = (
        "Permanent noise means one draw per budget per location; a draw "
        "per loop iteration re-exposes the true location longitudinally "
        "(the Fig. 4 averaging attack)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``.obfuscate()``/``.obfuscate_one()`` calls under a loop."""
        if ctx.role != "src":
            return
        if ctx.module is not None and _is_sanctioned(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in FRESH_DRAW_METHODS:
                continue
            if any(isinstance(anc, _LOOP_NODES) for anc in ctx.ancestors(node)):
                yield self.finding(
                    ctx,
                    node,
                    f"'.{func.attr}()' inside a loop re-draws noise per "
                    "iteration; pin one draw per budget (permanent noise) or "
                    "suppress with a justification if this is a measurement "
                    "loop",
                )
