"""Public-API coverage rules (``DOC001``–``DOC002``).

The reproduction is consumed as a library (experiments, benchmarks, the
CLI); its public surface must be documented and fully annotated so the
mypy strict gate on ``repro.core``/``repro.parallel``/``repro.analysis``
has signatures to check and downstream callers get completions instead
of ``Any``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["MissingDocstring", "MissingAnnotations"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _iter_public_defs(
    tree: ast.Module,
) -> Iterator[Tuple[Union[FunctionNode, ast.ClassDef], bool]]:
    """Yield ``(node, is_method)`` for public top-level defs and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(
            node.name
        ):
            yield node, False
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node, False
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(member.name) or member.name == "__init__":
                        yield member, True


class MissingDocstring(Rule):
    """``DOC001``: public module/class/function without a docstring."""

    id = "DOC001"
    name = "missing docstring on public API"
    rationale = (
        "The docstring gate in tests/test_docstrings.py covers imported "
        "modules; this rule catches the same debt statically, including "
        "files the test run never imports."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag missing docstrings on the file's public surface."""
        if ctx.role != "src":
            return
        if not (ast.get_docstring(ctx.tree) or "").strip():
            yield Finding(
                path=ctx.relpath,
                line=1,
                col=1,
                rule=self.id,
                message="module lacks a docstring",
            )
        for node, _ in _iter_public_defs(ctx.tree):
            if node.name == "__init__":
                continue
            if not (ast.get_docstring(node) or "").strip():
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.finding(
                    ctx, node, f"public {kind} '{node.name}' lacks a docstring"
                )


class MissingAnnotations(Rule):
    """``DOC002``: public function with incomplete type annotations."""

    id = "DOC002"
    name = "incomplete annotations on public API"
    rationale = (
        "Unannotated public signatures degrade to Any and escape the mypy "
        "strict gate; complete annotations are what make the typing gate "
        "meaningful."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag missing parameter/return annotations on public functions."""
        if ctx.role != "src":
            return
        for node, _ in _iter_public_defs(ctx.tree):
            if isinstance(node, ast.ClassDef):
                continue
            missing: List[str] = []
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"public function '{node.name}' missing annotations: "
                    + ", ".join(missing),
                )
