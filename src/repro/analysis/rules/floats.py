"""Float-comparison rule (``FLT001``).

Coordinates, radii, and probabilities flow through chains of planar
arithmetic; exact ``==``/``!=`` against float literals is almost always
a latent bug (use ``math.isclose`` or an epsilon).  Where an *exact*
sentinel comparison is intended — e.g. an underflow guard — suppress
with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["FloatEquality"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatEquality(Rule):
    """``FLT001``: ``==``/``!=`` against a float literal."""

    id = "FLT001"
    name = "exact equality against a float literal"
    rationale = (
        "Coordinates and probabilities accumulate rounding error, so exact "
        "float equality silently stops matching; compare with math.isclose "
        "or an explicit tolerance."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag Eq/NotEq comparisons with a float-literal operand."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(operands[i]) or _is_float_literal(
                    operands[i + 1]
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= against a float literal; use math.isclose "
                        "or an epsilon tolerance (suppress if an exact "
                        "sentinel is intended)",
                    )
                    break
