"""Mutable-default rule (``MUT001``).

A mutable default argument is evaluated once at definition time and
shared across calls — state leaks between experiment invocations, which
is exactly the cross-run contamination a reproduction cannot afford.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["MutableDefaultArgument"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultArgument(Rule):
    """``MUT001``: function defaults that are mutable objects."""

    id = "MUT001"
    name = "mutable default argument"
    rationale = (
        "Defaults are evaluated once and shared by every call, so state "
        "from one experiment run bleeds into the next; default to None and "
        "construct inside the function."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag mutable default values on any function definition."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: List[Optional[ast.expr]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if default is not None and _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in '{node.name}()' is shared across "
                        "calls; use None and build the value inside the body",
                    )
