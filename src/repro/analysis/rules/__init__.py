"""The reprolint rule catalogue.

Rules are grouped by the invariant they protect:

* ``RNG*`` — explicit-Generator discipline (worker-count-invariant
  determinism, PR 1's ``parallel_map`` contract);
* ``BUD*`` — permanent-noise budget hygiene (paper Section V-C);
* ``DET*`` — wall-clock and iteration-order determinism;
* ``FLT*`` — float-equality comparisons on coordinates/probabilities;
* ``MUT*`` — mutable default arguments;
* ``DOC*`` — docstring/annotation coverage of the public API;
* ``PERF*`` — per-element hot-path calls where a batch API exists.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.engine import Rule
from repro.analysis.rules.budget import NoisePrimitiveOutsideCore, RedrawInLoop
from repro.analysis.rules.determinism import (
    SetIterationOrder,
    UnsortedDirectoryListing,
    WallClockCall,
)
from repro.analysis.rules.docs import MissingAnnotations, MissingDocstring
from repro.analysis.rules.floats import FloatEquality
from repro.analysis.rules.mutables import MutableDefaultArgument
from repro.analysis.rules.perf import (
    PerUserCsrLoop,
    ScalarCallInLoop,
    ShardMaterialization,
)
from repro.analysis.rules.rng import (
    LegacyNumpyRandomCall,
    NonLocalRngSampling,
    StdlibRandomCall,
    UnseededDefaultRng,
)

__all__ = ["all_rules", "rules_by_id"]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    rules: List[Rule] = [
        LegacyNumpyRandomCall(),
        StdlibRandomCall(),
        UnseededDefaultRng(),
        NonLocalRngSampling(),
        NoisePrimitiveOutsideCore(),
        RedrawInLoop(),
        WallClockCall(),
        SetIterationOrder(),
        UnsortedDirectoryListing(),
        FloatEquality(),
        MutableDefaultArgument(),
        MissingDocstring(),
        MissingAnnotations(),
        ScalarCallInLoop(),
        PerUserCsrLoop(),
        ShardMaterialization(),
    ]
    return sorted(rules, key=lambda r: r.id)


def rules_by_id() -> Dict[str, Rule]:
    """Map of rule id to a fresh rule instance."""
    return {rule.id: rule for rule in all_rules()}
