"""Determinism rules (``DET001``–``DET003``).

Experiment outputs are archived and diffed bit-for-bit (worker-count
invariance, CI smoke runs), so any wall-clock read or unordered
iteration that feeds results breaks reproducibility.  Timing
*measurement* via ``time.perf_counter`` is deliberately allowed — it
measures, it does not feed data.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["WallClockCall", "SetIterationOrder", "UnsortedDirectoryListing"]

#: Wall-clock reads that leak the run's start time into results.
WALL_CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Order-sensitive consumers a set must not be fed into directly.
ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "sum", "enumerate"})

#: Directory-listing calls whose order is filesystem-dependent.
LISTING_ORIGINS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Path-object methods with filesystem-dependent order.
LISTING_METHODS = frozenset({"iterdir", "rglob"})


class WallClockCall(Rule):
    """``DET001``: wall-clock reads in result-producing code."""

    id = "DET001"
    name = "wall-clock read"
    rationale = (
        "time.time()/datetime.now() make output depend on when the run "
        "started, so archived results stop being comparable; simulations "
        "must take timestamps from their inputs (see repro.edge.clock)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag resolved wall-clock calls in src-role files."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin in WALL_CLOCK_ORIGINS:
                yield self.finding(
                    ctx,
                    node,
                    f"'{origin}()' reads the wall clock; thread simulated or "
                    "input-derived time instead (time.perf_counter is fine "
                    "for measuring durations)",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SetIterationOrder(Rule):
    """``DET002``: iterating a set where element order reaches results."""

    id = "DET002"
    name = "order-sensitive iteration over a set"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation of str keys; feeding it into lists, sums, or loops "
        "makes figure output irreproducible.  Wrap in sorted(...)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag set expressions consumed by order-sensitive constructs."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            target: Optional[ast.expr] = None
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                target = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        target = gen.iter
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ORDER_SENSITIVE_BUILTINS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                target = node.args[0]
            if target is not None:
                yield self.finding(
                    ctx,
                    target,
                    "iteration order over a set is not deterministic; wrap "
                    "the set in sorted(...) before it feeds results",
                )


class UnsortedDirectoryListing(Rule):
    """``DET003``: directory listings consumed without ``sorted(...)``."""

    id = "DET003"
    name = "unsorted directory listing"
    rationale = (
        "os.listdir/glob return entries in filesystem order, which differs "
        "across machines and runs; batch experiment loaders must sort."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag listing calls whose direct consumer is not ``sorted``."""
        if ctx.role != "src":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            is_listing = origin in LISTING_ORIGINS
            if (
                not is_listing
                and isinstance(node.func, ast.Attribute)
                and origin is None
                and node.func.attr in LISTING_METHODS
            ):
                is_listing = True
            if not is_listing:
                continue
            if any(
                isinstance(anc, ast.Call)
                and isinstance(anc.func, ast.Name)
                and anc.func.id == "sorted"
                for anc in ctx.ancestors(node)
            ):
                continue
            name = origin or f"<path>.{node.func.attr}"  # type: ignore[union-attr]
            yield self.finding(
                ctx,
                node,
                f"'{name}()' order is filesystem-dependent; wrap the call in "
                "sorted(...)",
            )
