"""Baseline files: make CI fail only on *new* reprolint violations.

A baseline records how many findings of each ``rule::path`` fingerprint
the tree is allowed to carry.  Fingerprints deliberately omit line
numbers so unrelated edits that shift code do not invalidate the
baseline; adding a new violation of an already-baselined rule to the
same file *does* fail, because the count is exceeded.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.engine import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline", "filter_baselined"]

#: Schema version of the baseline JSON document.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable, line-number-free identity of a finding: ``RULE::path``."""
    return f"{finding.rule}::{finding.path}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into its ``fingerprint -> allowed count`` map."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "counts" not in doc:
        raise ValueError(f"{path}: not a reprolint baseline (missing 'counts')")
    counts = doc["counts"]
    if not isinstance(counts, dict):
        raise ValueError(f"{path}: baseline 'counts' must be an object")
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist the current findings as the new accepted baseline."""
    counts = Counter(fingerprint(f) for f in findings)
    doc = {
        "version": BASELINE_VERSION,
        "counts": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def filter_baselined(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Drop findings covered by the baseline.

    Returns ``(new_findings, n_baselined)``.  For each fingerprint, up to
    the baselined count of findings is forgiven (earliest lines first, so
    the *new* occurrence in a file is the one reported).
    """
    budget = dict(baseline)
    kept: List[Finding] = []
    n_baselined = 0
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            n_baselined += 1
        else:
            kept.append(finding)
    return kept, n_baselined
