"""Baseline files: make CI fail only on *new* reprolint violations.

A baseline records how many findings of each ``rule::path`` fingerprint
the tree is allowed to carry.  Fingerprints deliberately omit line
numbers so unrelated edits that shift code do not invalidate the
baseline; adding a new violation of an already-baselined rule to the
same file *does* fail, because the count is exceeded.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.engine import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "filter_baselined",
    "stale_entries",
    "prune_baseline",
]

#: Schema version of the baseline JSON document.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable, line-number-free identity of a finding: ``RULE::path``."""
    return f"{finding.rule}::{finding.path}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into its ``fingerprint -> allowed count`` map."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "counts" not in doc:
        raise ValueError(f"{path}: not a reprolint baseline (missing 'counts')")
    counts = doc["counts"]
    if not isinstance(counts, dict):
        raise ValueError(f"{path}: baseline 'counts' must be an object")
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist the current findings as the new accepted baseline."""
    counts = Counter(fingerprint(f) for f in findings)
    doc = {
        "version": BASELINE_VERSION,
        "counts": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def filter_baselined(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Drop findings covered by the baseline.

    Returns ``(new_findings, n_baselined)``.  For each fingerprint, up to
    the baselined count of findings is forgiven (earliest lines first, so
    the *new* occurrence in a file is the one reported).
    """
    budget = dict(baseline)
    kept: List[Finding] = []
    n_baselined = 0
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            n_baselined += 1
        else:
            kept.append(finding)
    return kept, n_baselined


def stale_entries(
    baseline: Dict[str, int], findings: Sequence[Finding]
) -> Dict[str, int]:
    """Baseline allowance no current finding consumes.

    Returns ``fingerprint -> excess count`` for every entry whose
    allowed count exceeds the number of live findings with that
    fingerprint.  Stale allowance is debt: it lets a *future*
    regression of the same rule in the same file slip through CI, so
    the lint gate fails on it until the baseline is pruned.
    """
    live = Counter(fingerprint(f) for f in findings)
    stale: Dict[str, int] = {}
    for key, allowed in sorted(baseline.items()):
        excess = allowed - live.get(key, 0)
        if excess > 0:
            stale[key] = excess
    return stale


def prune_baseline(
    path: Path, findings: Sequence[Finding]
) -> Tuple[Dict[str, int], int]:
    """Rewrite ``path`` dropping allowance no current finding consumes.

    Each entry is clamped to the number of live findings with that
    fingerprint; entries that drop to zero are removed.  Returns the
    stale map that was garbage-collected and the number of entries
    remaining in the pruned baseline.
    """
    baseline = load_baseline(path)
    stale = stale_entries(baseline, findings)
    live = Counter(fingerprint(f) for f in findings)
    pruned = {
        key: min(allowed, live[key])
        for key, allowed in baseline.items()
        if min(allowed, live.get(key, 0)) > 0
    }
    doc = {
        "version": BASELINE_VERSION,
        "counts": {k: pruned[k] for k in sorted(pruned)},
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return stale, len(pruned)
