"""The PRIV/BUD/DET flow-rule families over converged taint results.

Unlike the syntactic rules, these consume the interprocedural
:class:`~repro.analysis.dataflow.taint.TaintAnalysis` — a finding here
means a *flow* exists, not just that a name was spelled somewhere.
Findings are ordinary :class:`~repro.analysis.engine.Finding` records,
so suppression comments and the committed baseline apply unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.lattice import RAW, RNG
from repro.analysis.dataflow.policy import FlowPolicy, default_policy
from repro.analysis.dataflow.project import FunctionInfo, Project
from repro.analysis.dataflow.taint import CallEvent, FunctionEvents, TaintAnalysis
from repro.analysis.engine import Finding, SuppressionIndex

__all__ = ["FlowRuleInfo", "FlowReport", "analyze_flow", "flow_rule_catalogue"]


@dataclass(frozen=True)
class FlowRuleInfo:
    """Catalogue entry for one flow rule (docs and ``--list-rules``)."""

    id: str
    name: str
    rationale: str


_CATALOGUE = [
    FlowRuleInfo(
        id="PRIV001",
        name="raw coordinates reach the ad provider",
        rationale=(
            "The ads package models the honest-but-curious provider; only "
            "mechanism outputs may cross that trust boundary."
        ),
    ),
    FlowRuleInfo(
        id="PRIV002",
        name="raw coordinates reach trace/metrics emission",
        rationale=(
            "Trace files and metric snapshots leave the trust boundary "
            "(artifacts, dashboards); raw check-ins must never be attached "
            "to spans, gauges, counters, or histograms."
        ),
    ),
    FlowRuleInfo(
        id="PRIV003",
        name="raw coordinates written to a cache artifact",
        rationale=(
            "StageCache artifacts persist on disk beyond the run; cached "
            "raw coordinates defeat the obfuscation mechanisms. Trusted "
            "client-side stage builders carry justified suppressions."
        ),
    ),
    FlowRuleInfo(
        id="PRIV004",
        name="raw coordinates written to stdout or a file",
        rationale=(
            "Experiment drivers publish their stdout and report rows as "
            "results; raw coordinates in them are a longitudinal leak."
        ),
    ),
    FlowRuleInfo(
        id="BUD101",
        name="obfuscation released without a ledger charge",
        rationale=(
            "Every mechanism invocation consumes geo-indistinguishability "
            "budget; a sanitizer call site whose function never charges "
            "PrivacyLedger.spend or LongitudinalExposureAccountant.observe "
            "is an unaccounted release."
        ),
    ),
    FlowRuleInfo(
        id="DET201",
        name="RNG object crosses a parallel_map chunk boundary",
        rationale=(
            "Generators shipped through items/payload break worker-count "
            "invariance; per-chunk streams must come from "
            "SeedSequence.spawn inside the worker."
        ),
    ),
    FlowRuleInfo(
        id="DET202",
        name="parallel worker mutates module state",
        rationale=(
            "A 'global' write reachable from a parallel_map worker is a "
            "silent race: it mutates a per-process copy, so results depend "
            "on chunk placement."
        ),
    ),
]

_SINK_RULE = {
    "ads": ("PRIV001", "the ad provider surface"),
    "obs": ("PRIV002", "trace/metrics emission"),
    "cache": ("PRIV003", "a cache artifact"),
    "io": ("PRIV004", "stdout/file output"),
    "report": ("PRIV004", "experiment report rows (rendered to stdout)"),
}


def flow_rule_catalogue() -> List[FlowRuleInfo]:
    """Every flow rule, in id order."""
    return list(_CATALOGUE)


@dataclass
class FlowReport:
    """Result of one flow analysis run."""

    findings: List[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    stats: Dict[str, int] = field(default_factory=dict)


def _call_desc(event: CallEvent) -> str:
    site = event.site
    if site.dotted is not None:
        return site.dotted
    if site.attr is not None:
        return f".{site.attr}"
    return site.callees[0] if site.callees else "<call>"


class _Collector:
    """Accumulates deduplicated findings per file."""

    def __init__(self) -> None:
        self.seen: Set[Finding] = set()
        self.by_path: Dict[str, List[Finding]] = {}

    def add(
        self, fn: FunctionInfo, node: ast.AST, rule: str, message: str
    ) -> None:
        finding = Finding(
            path=fn.ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )
        if finding in self.seen:
            return
        self.seen.add(finding)
        self.by_path.setdefault(finding.path, []).append(finding)

    def add_at_line(self, fn: FunctionInfo, line: int, rule: str, message: str) -> None:
        finding = Finding(
            path=fn.ctx.relpath, line=line, col=1, rule=rule, message=message
        )
        if finding in self.seen:
            return
        self.seen.add(finding)
        self.by_path.setdefault(finding.path, []).append(finding)


def _check_priv(
    fn: FunctionInfo, events: FunctionEvents, out: _Collector
) -> None:
    for event in events.calls:
        desc = _call_desc(event)
        if event.sink_kinds and RAW in event.arg_join and not event.is_sanitizer:
            for kind in sorted(event.sink_kinds):
                rule, sink_desc = _SINK_RULE[kind]
                out.add(
                    fn,
                    event.site.node,
                    rule,
                    f"raw check-in coordinates reach {sink_desc} via "
                    f"'{desc}(...)' without passing an obfuscation mechanism",
                )
        for callee, pname, kinds in event.transitive:
            for kind in sorted(kinds):
                rule, sink_desc = _SINK_RULE[kind]
                out.add(
                    fn,
                    event.site.node,
                    rule,
                    f"raw check-in coordinates flow into parameter "
                    f"'{pname}' of {callee}, which reaches {sink_desc}",
                )


def _check_bud(
    fn: FunctionInfo,
    events: FunctionEvents,
    analysis: TaintAnalysis,
    policy: FlowPolicy,
    out: _Collector,
) -> None:
    if policy.charge_exempt(fn.module):
        return
    if policy.is_sanitizer(fn.qname, None):
        return  # wrapper helpers are themselves part of the sanitizer layer
    sanitizer_events = [e for e in events.calls if e.is_sanitizer]
    if not sanitizer_events:
        return
    if analysis.summary(fn.qname).charges:
        return
    for event in sanitizer_events:
        out.add(
            fn,
            event.site.node,
            "BUD101",
            f"'{_call_desc(event)}(...)' releases obfuscated locations but "
            f"'{fn.qname}' never charges PrivacyLedger.spend or "
            "LongitudinalExposureAccountant.observe for them",
        )


def _check_det201(
    fn: FunctionInfo, events: FunctionEvents, out: _Collector
) -> None:
    for event in events.calls:
        if event.site.is_parallel_map and RNG in event.parallel_boundary:
            out.add(
                fn,
                event.site.node,
                "DET201",
                "a live RNG object crosses the parallel_map chunk boundary "
                "via items/payload; spawn per-chunk generators from the "
                "SeedSequence the pool hands each worker instead",
            )


def _check_det202(
    analysis: TaintAnalysis,
    graph: CallGraph,
    policy: FlowPolicy,
    out: _Collector,
) -> None:
    workers = graph.worker_functions()
    if not workers:
        return
    for qname in graph.reachable_from(workers):
        fn = analysis.project.functions.get(qname)
        if fn is None or fn.ctx.role != "src":
            continue
        if policy.det_exempt(fn.module):
            continue
        events = analysis.events.get(qname)
        if events is None:
            continue
        for line in sorted(set(events.global_lines)):
            out.add_at_line(
                fn,
                line,
                "DET202",
                f"'{qname}' is reachable from a parallel_map worker and "
                "mutates module state via 'global'; per-process copies make "
                "results depend on chunk placement",
            )


def analyze_flow(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    policy: Optional[FlowPolicy] = None,
    project: Optional[Project] = None,
) -> FlowReport:
    """Run the interprocedural flow rules over every file under ``paths``.

    Suppression comments and file roles behave exactly as in the
    syntactic engine: findings in test/bench code are dropped, and
    ``# reprolint: disable=PRIV003`` silences a finding with the usual
    inline/standalone/file-level forms.
    """
    policy = policy or default_policy()
    if project is None:
        project = Project.load(paths, root=root)
    graph = CallGraph.build(project, policy)
    analysis = TaintAnalysis(project, graph, policy)
    analysis.run()

    out = _Collector()
    for fn in project.functions.values():
        if fn.ctx.role != "src":
            continue
        events = analysis.events.get(fn.qname)
        if events is None:
            continue
        _check_priv(fn, events, out)
        _check_bud(fn, events, analysis, policy, out)
        _check_det201(fn, events, out)
    _check_det202(analysis, graph, policy, out)

    findings: List[Finding] = []
    n_suppressed = 0
    suppressions: Dict[str, SuppressionIndex] = {}
    for ctx in project.modules.values():
        suppressions[ctx.relpath] = SuppressionIndex.from_source(
            ctx.source, tree=ctx.tree
        )
    for path, file_findings in out.by_path.items():
        index = suppressions.get(path)
        for finding in file_findings:
            if index is not None and index.is_suppressed(finding):
                n_suppressed += 1
            else:
                findings.append(finding)

    stats = dict(analysis.project.stats())
    stats["fixpoint_iterations"] = analysis.iterations
    stats["call_sites"] = sum(len(s) for s in graph.sites.values())
    return FlowReport(
        findings=sorted(findings), n_suppressed=n_suppressed, stats=stats
    )
