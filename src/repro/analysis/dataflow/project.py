"""Project-wide module loader and symbol table.

A :class:`Project` parses every Python file under the analyzed roots
into the same :class:`~repro.analysis.engine.FileContext` the syntactic
rules use, then indexes the definitions: every module, class, method,
and (nested) function gets a stable dotted *qualified name* —
``repro.edge.device.EdgeDevice.choose_report_location`` or
``repro.experiments.fig6_attack.run.get_pop`` — and re-exports through
package ``__init__`` files resolve transparently, so
``repro.parallel.parallel_map`` and ``repro.parallel.pool.parallel_map``
name the same function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import FileContext, iter_python_files

__all__ = ["FunctionInfo", "ClassInfo", "Project", "FunctionNode"]

#: The AST node kinds that define a function.
FunctionNode = ast.FunctionDef  # sync + async share the shape we need

#: Annotations that certify an attribute carries no coordinate data.
#: Floats are excluded on purpose: ``x_m: float`` IS a coordinate.
_SCALAR_TYPES = frozenset({"int", "bool", "str"})


def _scalar_annotation(node: Optional[ast.AST]) -> bool:
    """Whether an annotation is a plain int/bool/str (or Optional of one).

    Deliberately strict: generics like ``Dict[str, np.ndarray]`` are NOT
    scalar even though ``str`` appears in the subscript.
    """
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.Subscript):
        outer = _dotted(node.value)
        if outer is not None and outer.split(".")[-1] == "Optional":
            return _scalar_annotation(node.slice)
        return False
    name = _dotted(node)
    return name is not None and name.split(".")[-1] in _SCALAR_TYPES


def _is_scalar_value(value: ast.AST, scalar_params: Set[str]) -> bool:
    """Whether an ``__init__`` assignment's RHS is certifiably scalar."""
    if isinstance(value, ast.Constant):
        return isinstance(value.value, (int, bool, str)) and not isinstance(
            value.value, float
        )
    if isinstance(value, ast.Name):
        return value.id in scalar_params
    return False


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: FileContext
    #: Qualified name of the owning class for methods, else None.
    class_qname: Optional[str] = None
    #: Positional-ish parameter names (posonly + args + kwonly), in order.
    params: List[str] = field(default_factory=list)
    #: Resolved decorator names (dotted where resolvable, else the raw id).
    decorators: List[str] = field(default_factory=list)
    #: Qualified names of functions defined directly inside this one.
    nested: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The bare function name."""
        return str(getattr(self.node, "name", "<lambda>"))

    @property
    def is_method(self) -> bool:
        """Whether this function is defined directly inside a class."""
        return self.class_qname is not None

    @property
    def is_classmethod(self) -> bool:
        """Whether the def carries a ``@classmethod`` decorator."""
        return "classmethod" in self.decorators

    @property
    def is_staticmethod(self) -> bool:
        """Whether the def carries a ``@staticmethod`` decorator."""
        return "staticmethod" in self.decorators

    def param_index(self, name: str) -> Optional[int]:
        """Index of parameter ``name``, or None if not a parameter."""
        try:
            return self.params.index(name)
        except ValueError:
            return None

    @property
    def returns_scalar(self) -> bool:
        """Whether the return annotation certifies an int/bool/str result."""
        return _scalar_annotation(getattr(self.node, "returns", None))


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qname: str
    module: str
    node: ast.ClassDef
    ctx: FileContext
    #: Resolved base-class qualified names (project classes only).
    bases: List[str] = field(default_factory=list)
    #: Method name -> qualified name of the def on *this* class.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Instance attribute name -> constructed class qname (from
    #: ``self.attr = SomeClass(...)`` / annotated ``__init__`` params).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Attributes whose declared type is int/bool/str — reads of these
    #: carry no coordinate information (floats are NOT scalar here:
    #: ``x_m`` is a coordinate).
    scalar_attrs: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        """The bare class name."""
        return self.node.name


def _param_names(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.posonlyargs] if hasattr(args, "posonlyargs") else []
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The core dotted name of an annotation, unwrapping Optional/quotes."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X] / "Optional[X]" — look inside.
        outer = _dotted(node.value)
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            # Union[X, None] style: take the first non-None element.
            for elt in inner.elts:
                name = _annotation_name(elt)
                if name is not None and name != "None":
                    return name
            return None
        if outer is not None and outer.split(".")[-1] in {"Optional", "Union"}:
            return _annotation_name(inner)
        return None
    return _dotted(node)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


#: Generic containers whose subscript names the element type.
_CONTAINER_NAMES = frozenset(
    {
        "List",
        "list",
        "Sequence",
        "Iterable",
        "Iterator",
        "Tuple",
        "tuple",
        "Set",
        "set",
        "FrozenSet",
        "frozenset",
    }
)


def _element_annotation(node: Optional[ast.AST]) -> Optional[ast.AST]:
    """The element annotation of a container annotation, if any.

    ``List[ProfileEntry]`` -> the ``ProfileEntry`` node; unwraps
    ``Optional``/``Union`` and string annotations; homogeneous
    ``Tuple[X, ...]`` yields its first element.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if not isinstance(node, ast.Subscript):
        return None
    outer = _dotted(node.value)
    if outer is None:
        return None
    tail = outer.split(".")[-1]
    inner: Optional[ast.AST] = node.slice
    if tail in {"Optional", "Union"}:
        if isinstance(inner, ast.Tuple):
            for elt in inner.elts:
                found = _element_annotation(elt)
                if found is not None:
                    return found
            return None
        return _element_annotation(inner)
    if tail not in _CONTAINER_NAMES:
        return None
    if isinstance(inner, ast.Tuple):
        inner = inner.elts[0] if inner.elts else None
    return inner


class Project:
    """Every parsed module under the analyzed roots, fully indexed."""

    def __init__(self) -> None:
        self.modules: Dict[str, FileContext] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Method name -> qualified names of every def with that name.
        self.method_index: Dict[str, List[str]] = {}
        #: Class qname -> direct subclass qnames.
        self.subclasses: Dict[str, List[str]] = {}
        #: Files that failed to parse (path -> error message).
        self.parse_errors: Dict[str, str] = {}

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, paths: Iterable[Path], root: Optional[Path] = None) -> "Project":
        """Parse and index every python file under ``paths``."""
        project = cls()
        for path in iter_python_files(paths):
            source = path.read_text(encoding="utf-8")
            try:
                ctx = FileContext.build(source, path, root=root)
            except SyntaxError as exc:  # recorded, not fatal
                project.parse_errors[str(path)] = str(exc.msg)
                continue
            if ctx.module is None:
                continue
            project.modules[ctx.module] = ctx
            project._index_module(ctx)
        project._link_classes()
        return project

    def _index_module(self, ctx: FileContext) -> None:
        assert ctx.module is not None
        for stmt in ctx.tree.body:
            self._index_statement(stmt, ctx, ctx.module, None)

    def _index_statement(
        self,
        stmt: ast.stmt,
        ctx: FileContext,
        scope_qname: str,
        class_qname: Optional[str],
        parent_fn: Optional[FunctionInfo] = None,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{scope_qname}.{stmt.name}"
            info = FunctionInfo(
                qname=qname,
                module=ctx.module or "",
                node=stmt,
                ctx=ctx,
                class_qname=class_qname,
                params=_param_names(stmt),
                decorators=[
                    d for d in (_dotted(dec) for dec in stmt.decorator_list)
                    if d is not None
                ],
            )
            self.functions[qname] = info
            self.method_index.setdefault(stmt.name, []).append(qname)
            if parent_fn is not None:
                parent_fn.nested.append(qname)
            if class_qname is not None:
                owner = self.classes.get(class_qname)
                if owner is not None:
                    owner.methods[stmt.name] = qname
            for inner in stmt.body:
                # Nested defs are their own functions; nested classes keep
                # the enclosing function's dotted scope.
                self._index_statement(inner, ctx, qname, None, parent_fn=info)
        elif isinstance(stmt, ast.ClassDef):
            qname = f"{scope_qname}.{stmt.name}"
            cinfo = ClassInfo(qname=qname, module=ctx.module or "", node=stmt, ctx=ctx)
            self.classes[qname] = cinfo
            for inner in stmt.body:
                self._index_statement(inner, ctx, qname, qname)
            self._collect_attr_types(cinfo)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Definitions guarded by TYPE_CHECKING / version checks.
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    self._index_statement(
                        inner, ctx, scope_qname, class_qname, parent_fn
                    )

    def _collect_attr_types(self, cinfo: ClassInfo) -> None:
        """Record ``self.attr`` types visible from ``__init__``.

        Two patterns feed the map: ``self.attr = SomeClass(...)`` and
        ``self.attr = param`` where the parameter is annotated with a
        project class; dataclass field annotations on the class body are
        picked up as well.
        """
        ctx = cinfo.ctx
        for stmt in cinfo.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                resolved = self._resolve_annotation(stmt.annotation, ctx)
                if resolved is not None:
                    cinfo.attr_types[stmt.target.id] = resolved
                elif _scalar_annotation(stmt.annotation):
                    cinfo.scalar_attrs.add(stmt.target.id)
        init_q = f"{cinfo.qname}.__init__"
        init = self.functions.get(init_q)
        if init is None:
            return
        node = init.node
        param_types: Dict[str, str] = {}
        param_scalars: Set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                resolved = self._resolve_annotation(a.annotation, ctx)
                if resolved is not None:
                    param_types[a.arg] = resolved
                elif _scalar_annotation(a.annotation):
                    param_scalars.add(a.arg)
        for sub in ast.walk(node if isinstance(node, ast.AST) else ast.Module()):
            if isinstance(sub, ast.AnnAssign):
                # Annotated assignment: ``self.attr: SomeClass = ...``
                # declares the type directly.
                target = sub.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    resolved = self._resolve_annotation(sub.annotation, ctx)
                    if resolved is not None:
                        cinfo.attr_types.setdefault(target.attr, resolved)
                    elif _scalar_annotation(sub.annotation):
                        cinfo.scalar_attrs.add(target.attr)
                continue
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    typ = self._value_type(sub.value, ctx, param_types)
                    if typ is not None:
                        cinfo.attr_types.setdefault(target.attr, typ)
                    elif _is_scalar_value(sub.value, param_scalars):
                        cinfo.scalar_attrs.add(target.attr)

    def _value_type(
        self, value: ast.AST, ctx: FileContext, param_types: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                resolved = self.resolve_name(name, ctx)
                if resolved is not None and resolved in self.classes:
                    return resolved
        elif isinstance(value, ast.Name):
            return param_types.get(value.id)
        elif isinstance(value, ast.IfExp):
            return self._value_type(value.body, ctx, param_types)
        return None

    def _resolve_annotation(
        self, annotation: Optional[ast.AST], ctx: FileContext
    ) -> Optional[str]:
        name = _annotation_name(annotation)
        if name is None:
            return None
        resolved = self.resolve_name(name, ctx)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    def _element_class(
        self, annotation: Optional[ast.AST], ctx: FileContext
    ) -> Optional[str]:
        """Project class of a container annotation's elements, if any."""
        return self._resolve_annotation(_element_annotation(annotation), ctx)

    def _link_classes(self) -> None:
        for cinfo in self.classes.values():
            for base in cinfo.node.bases:
                name = _dotted(base)
                if name is None:
                    continue
                resolved = self.resolve_name(name, cinfo.ctx)
                if resolved is not None and resolved in self.classes:
                    cinfo.bases.append(resolved)
                    self.subclasses.setdefault(resolved, []).append(cinfo.qname)

    # -- resolution --------------------------------------------------------

    def resolve_name(self, dotted: str, ctx: FileContext) -> Optional[str]:
        """Resolve a dotted name used in ``ctx`` to a project qname.

        Tries, in order: a definition in the same module, an import
        binding (followed through package re-exports), and the name as an
        already-qualified path.
        """
        module = ctx.module or ""
        local = f"{module}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        head = dotted.split(".", 1)
        origin = ctx.imports.resolve(dotted.split("."))
        if origin is not None:
            resolved = self.resolve_qname(origin)
            if resolved is not None:
                return resolved
        if head[0] != dotted:
            # a.b.c where a is module-local class: Class.attr chains.
            base = f"{module}.{head[0]}"
            if base in self.classes:
                return self.resolve_qname(f"{base}.{head[1]}")
        return self.resolve_qname(dotted)

    def resolve_qname(
        self, qname: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Canonicalize a dotted path, following package re-exports."""
        if qname in self.functions or qname in self.classes:
            return qname
        if _seen is None:
            _seen = set()
        if qname in _seen:
            return None
        _seen.add(qname)
        if "." not in qname:
            return None
        prefix, name = qname.rsplit(".", 1)
        # Class attribute (method) lookup through a re-exported class.
        resolved_prefix = (
            prefix
            if prefix in self.modules or prefix in self.classes
            else self.resolve_qname(prefix, _seen)
        )
        if resolved_prefix is not None and resolved_prefix in self.classes:
            method = self.find_method(resolved_prefix, name)
            if method is not None:
                return method
        mod_ctx = self.modules.get(resolved_prefix or prefix)
        if mod_ctx is not None:
            direct = f"{resolved_prefix or prefix}.{name}"
            if direct in self.functions or direct in self.classes:
                return direct
            origin = mod_ctx.imports.resolve([name])
            if origin is not None:
                return self.resolve_qname(origin, _seen)
        return None

    def find_method(self, class_qname: str, method: str) -> Optional[str]:
        """The qname of ``method`` on ``class_qname`` or its project bases."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cinfo = self.classes.get(current)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return cinfo.methods[method]
            queue.extend(cinfo.bases)
        return None

    def methods_with_overrides(self, class_qname: str, method: str) -> List[str]:
        """Defs of ``method`` on the class, its bases, and all subclasses.

        This is the dispatch set for a call through a variable of declared
        type ``class_qname`` — e.g. a parameter annotated ``LPPM`` calls
        into every mechanism's ``obfuscate``.
        """
        out: List[str] = []
        base = self.find_method(class_qname, method)
        if base is not None:
            out.append(base)
        stack = list(self.subclasses.get(class_qname, []))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            cinfo = self.classes.get(sub)
            if cinfo is not None and method in cinfo.methods:
                out.append(cinfo.methods[method])
            stack.extend(self.subclasses.get(sub, []))
        return sorted(set(out))

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        """All functions defined in ``module``, sorted by qname."""
        return sorted(
            (f for f in self.functions.values() if f.module == module),
            key=lambda f: f.qname,
        )

    def stats(self) -> Dict[str, int]:
        """Size of the loaded project, for reports."""
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "classes": len(self.classes),
            "parse_errors": len(self.parse_errors),
        }


def project_and_roles(
    paths: Iterable[Path], root: Optional[Path] = None
) -> Tuple[Project, Dict[str, str]]:
    """Load a project plus a module -> role map (src/test)."""
    project = Project.load(paths, root=root)
    roles = {name: ctx.role for name, ctx in project.modules.items()}
    return project, roles
