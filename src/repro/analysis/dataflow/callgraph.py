"""Call-graph construction over a loaded :class:`Project`.

Resolution covers the shapes the repo actually uses:

* direct calls to module-level functions, followed through import
  aliases and package ``__init__`` re-exports;
* constructor calls (``EdgeDevice(...)`` resolves to ``__init__`` and
  records the constructed class);
* method calls where the receiver type is inferable — from a local
  ``x = ClassName(...)`` assignment, a parameter annotation (protocol /
  ABC dispatch expands to every override, so ``mechanism.obfuscate``
  with ``mechanism: LPPM`` reaches every mechanism), or a
  ``self.attr`` whose type ``__init__`` pinned;
* the ``parallel_map(worker_fn, items, payload=...)`` indirection: the
  first argument becomes a call edge and the site is marked so the
  taint engine can map ``items``/``payload`` onto worker parameters.

Every :class:`ast.Call` in every function body gets a :class:`CallSite`
(possibly with no resolved callees); the taint engine looks sites up by
node identity while walking statements.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dataflow.policy import FlowPolicy, default_policy
from repro.analysis.dataflow.project import ClassInfo, FunctionInfo, Project

__all__ = ["CallSite", "CallGraph"]


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body, resolved as far as possible."""

    caller: str
    node: ast.Call
    #: Dotted source text of the callee (``np.save``, ``cache.store``)
    #: when the callee is a name/attribute chain, else None.
    dotted: Optional[str]
    #: Attribute name for method-style calls (``store`` in ``c.store()``).
    attr: Optional[str]
    #: Resolved project function qnames this call may dispatch to.
    callees: List[str] = field(default_factory=list)
    #: Class qname when the call constructs a project class.
    constructed: Optional[str] = None
    #: Inferred receiver class qname for method calls, when known.
    receiver_type: Optional[str] = None
    #: Whether this is a ``parallel_map``-family fan-out call.
    is_parallel_map: bool = False
    #: Worker-function qnames for fan-out calls.
    workers: List[str] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line of the call."""
        return self.node.lineno


def _dotted_of(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class _BodyWalker(ast.NodeVisitor):
    """Collects every Call in a function body without entering nested defs."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []
        self._depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth == 0:
            self._depth += 1
            self.generic_visit(node)
            self._depth -= 1
        # nested defs are separate functions; their decorators/defaults
        # still belong to this scope
        else:
            for dec in node.decorator_list:
                self.visit(dec)
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self.visit(default)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for dec in node.decorator_list:
            self.visit(dec)
        for base in node.bases:
            self.visit(base)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def body_calls(fn: FunctionInfo) -> List[ast.Call]:
    """Every call expression in ``fn``'s own body (nested defs excluded)."""
    walker = _BodyWalker()
    walker.visit(fn.node)  # type: ignore[arg-type]
    return walker.calls


def local_types(project: Project, fn: FunctionInfo) -> Dict[str, str]:
    """Variable name -> class qname, inferred inside one function.

    Sources of type facts: parameter annotations, ``x = ClassName(...)``
    assignments, ``x = self.attr`` where ``__init__`` pinned the
    attribute's type, and ``x = call()`` where the callee's return
    annotation resolves to a project class.  Two passes let simple
    chains (``client = self.client_for(uid); r = client.request_ad(c)``)
    resolve regardless of AST walk order.
    """
    env: Dict[str, str] = {}
    ctx = fn.ctx
    args = getattr(fn.node, "args", None)
    if args is not None:
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            resolved = project._resolve_annotation(a.annotation, ctx)
            if resolved is not None:
                env[a.arg] = resolved
    owner = project.classes.get(fn.class_qname) if fn.class_qname else None
    assigns = [
        node
        for node in ast.walk(fn.node)  # type: ignore[arg-type]
        if isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ]
    loops = [
        node
        for node in ast.walk(fn.node)  # type: ignore[arg-type]
        if isinstance(node, (ast.For, ast.AsyncFor))
    ]
    for _ in range(2):
        for node in assigns:
            target = node.targets[0]
            assert isinstance(target, ast.Name)
            typ = _value_type(project, fn, owner, node.value, env)
            if typ is not None:
                env[target.id] = typ
        for loop in loops:
            _loop_target_type(project, fn, owner, loop, env)
    return env


def _loop_target_type(
    project: Project,
    fn: FunctionInfo,
    owner: Optional["ClassInfo"],
    loop: ast.stmt,
    env: Dict[str, str],
) -> None:
    """Bind a loop variable's type from the iterable's element annotation.

    ``for entry in profile.top(5)`` types ``entry`` when ``top``'s return
    annotation is a recognised container; ``enumerate(...)`` unwraps to
    the second tuple element.
    """
    target = getattr(loop, "target", None)
    it = getattr(loop, "iter", None)
    if (
        isinstance(it, ast.Call)
        and _dotted_of(it.func) == "enumerate"
        and it.args
    ):
        it = it.args[0]
        if isinstance(target, ast.Tuple) and len(target.elts) == 2:
            target = target.elts[1]
        else:
            return
    if not isinstance(target, ast.Name) or not isinstance(it, ast.Call):
        return
    callee = _call_callee(project, fn, owner, it, env)
    if callee is None:
        return
    elem = project._element_class(getattr(callee.node, "returns", None), callee.ctx)
    if elem is not None:
        env[target.id] = elem


def _value_type(
    project: Project,
    fn: FunctionInfo,
    owner: Optional["ClassInfo"],
    value: ast.AST,
    env: Dict[str, str],
) -> Optional[str]:
    """The project-class type of an assigned value, when inferable."""
    ctx = fn.ctx
    if isinstance(value, ast.Name):
        return env.get(value.id)
    if isinstance(value, ast.IfExp):
        return _value_type(project, fn, owner, value.body, env)
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
        and owner is not None
    ):
        return owner.attr_types.get(value.attr)
    if not isinstance(value, ast.Call):
        return None
    name = _dotted_of(value.func)
    if name is not None:
        resolved = project.resolve_name(name, ctx)
        if resolved is not None and resolved in project.classes:
            return resolved
    callee = _call_callee(project, fn, owner, value, env)
    if callee is None:
        return None
    returns = getattr(callee.node, "returns", None)
    return project._resolve_annotation(returns, callee.ctx)


def _call_callee(
    project: Project,
    fn: FunctionInfo,
    owner: Optional["ClassInfo"],
    value: ast.Call,
    env: Dict[str, str],
) -> Optional[FunctionInfo]:
    """The project function a call expression dispatches to, when inferable."""
    ctx = fn.ctx
    name = _dotted_of(value.func)
    if name is not None:
        resolved = project.resolve_name(name, ctx)
        if resolved is not None and resolved in project.functions:
            return project.functions[resolved]
    if isinstance(value.func, ast.Attribute):
        recv: Optional[str] = None
        base = value.func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and fn.class_qname is not None:
                recv = fn.class_qname
            else:
                recv = env.get(base.id)
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and owner is not None
        ):
            recv = owner.attr_types.get(base.attr)
        elif isinstance(base, ast.Call):
            # Constructor-chained receiver: ProfilingAttack().build_profile().
            base_name = _dotted_of(base.func)
            if base_name is not None:
                resolved_base = project.resolve_name(base_name, ctx)
                if resolved_base is not None and resolved_base in project.classes:
                    recv = resolved_base
        if recv is not None:
            method = project.find_method(recv, value.func.attr)
            if method is not None:
                return project.functions.get(method)
    return None


class CallGraph:
    """Call sites and edges for every function in a project."""

    def __init__(self, project: Project, policy: Optional[FlowPolicy] = None) -> None:
        self.project = project
        self.policy = policy or default_policy()
        #: caller qname -> its call sites, in source order.
        self.sites: Dict[str, List[CallSite]] = {}
        #: id(ast.Call) -> resolved site, for lookup while walking bodies.
        self.by_node: Dict[int, CallSite] = {}
        #: caller qname -> callee qnames (deduplicated, sorted).
        self.edges: Dict[str, List[str]] = {}
        #: callee qname -> caller qnames.
        self.reverse_edges: Dict[str, List[str]] = {}
        #: caller qname -> inferred local variable types (name -> class).
        self.local_env: Dict[str, Dict[str, str]] = {}

    @classmethod
    def build(cls, project: Project, policy: Optional[FlowPolicy] = None) -> "CallGraph":
        """Resolve every call site in every project function."""
        graph = cls(project, policy)
        for fn in project.functions.values():
            graph._build_function(fn)
        for caller, sites in graph.sites.items():
            callees = sorted(
                {q for site in sites for q in list(site.callees) + list(site.workers)}
            )
            graph.edges[caller] = callees
            for callee in callees:
                graph.reverse_edges.setdefault(callee, []).append(caller)
        return graph

    def _build_function(self, fn: FunctionInfo) -> None:
        env = local_types(self.project, fn)
        self.local_env[fn.qname] = env
        sites: List[CallSite] = []
        for call in body_calls(fn):
            site = self._resolve_call(fn, call, env)
            sites.append(site)
            self.by_node[id(call)] = site
        self.sites[fn.qname] = sites

    def _resolve_call(
        self, fn: FunctionInfo, call: ast.Call, env: Dict[str, str]
    ) -> CallSite:
        project = self.project
        dotted = _dotted_of(call.func)
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        site = CallSite(caller=fn.qname, node=call, dotted=dotted, attr=attr)

        resolved: Optional[str] = None
        if dotted is not None:
            resolved = project.resolve_name(dotted, fn.ctx)
            if resolved is None and "." not in dotted:
                # A nested function defined in this scope.
                local = f"{fn.qname}.{dotted}"
                if local in project.functions:
                    resolved = local
        if resolved is not None:
            if resolved in project.classes:
                site.constructed = resolved
                init = project.find_method(resolved, "__init__")
                if init is not None:
                    site.callees.append(init)
            elif resolved in project.functions:
                site.callees.append(resolved)

        # Method call with an inferable receiver type.
        if not site.callees and isinstance(call.func, ast.Attribute):
            receiver_type = self._receiver_type(fn, call.func.value, env)
            if receiver_type is not None:
                site.receiver_type = receiver_type
                dispatch = project.methods_with_overrides(receiver_type, call.func.attr)
                site.callees.extend(dispatch)

        # parallel_map(worker_fn, items, payload=...) indirection.
        if any(self.policy.is_parallel_map(q) for q in site.callees):
            site.is_parallel_map = True
            if call.args:
                worker = self._resolve_fn_ref(fn, call.args[0], env)
                if worker is not None:
                    site.workers.append(worker)
        return site

    def _receiver_type(
        self, fn: FunctionInfo, receiver: ast.AST, env: Dict[str, str]
    ) -> Optional[str]:
        project = self.project
        if isinstance(receiver, ast.Name):
            if receiver.id in env:
                return env[receiver.id]
            if receiver.id == "self" and fn.class_qname is not None:
                return fn.class_qname
            return None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
        ):
            base: Optional[str] = None
            if receiver.value.id == "self" and fn.class_qname is not None:
                base = fn.class_qname
            else:
                base = env.get(receiver.value.id)
            if base is not None:
                cinfo = project.classes.get(base)
                if cinfo is not None and receiver.attr in cinfo.attr_types:
                    return cinfo.attr_types[receiver.attr]
        if isinstance(receiver, ast.Call):
            name = _dotted_of(receiver.func)
            if name is not None:
                resolved = project.resolve_name(name, fn.ctx)
                if resolved is not None and resolved in project.classes:
                    return resolved
        return None

    def _resolve_fn_ref(
        self, fn: FunctionInfo, node: ast.AST, env: Dict[str, str]
    ) -> Optional[str]:
        """Resolve a function reference passed as a value (not called)."""
        name = _dotted_of(node)
        if name is None:
            return None
        resolved = self.project.resolve_name(name, fn.ctx)
        if resolved is not None and resolved in self.project.functions:
            return resolved
        if "." not in name:
            local = f"{fn.qname}.{name}"
            if local in self.project.functions:
                return local
        return None

    # -- queries -----------------------------------------------------------

    def site_for(self, call: ast.Call) -> Optional[CallSite]:
        """The resolved site for a call node, if it was indexed."""
        return self.by_node.get(id(call))

    def callers_of(self, qname: str) -> List[str]:
        """Direct callers of ``qname``."""
        return sorted(set(self.reverse_edges.get(qname, [])))

    def reachable_from(self, roots: List[str]) -> List[str]:
        """Every function reachable from ``roots`` along call edges."""
        seen: Dict[str, bool] = {}
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen[current] = True
            stack.extend(self.edges.get(current, []))
        return sorted(seen)

    def worker_functions(self) -> List[str]:
        """Every function used as a ``parallel_map`` worker anywhere."""
        out = {
            worker
            for sites in self.sites.values()
            for site in sites
            if site.is_parallel_map
            for worker in site.workers
        }
        return sorted(out)
