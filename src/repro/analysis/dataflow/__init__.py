"""Flow-sensitive, interprocedural dataflow analysis for reprolint.

The syntactic rules of :mod:`repro.analysis.rules` check one file at a
time; this package checks the *trust boundary* of the paper's system
model: raw check-in coordinates live on the client+edge, and only
mechanism outputs may cross to the honest-but-curious ad provider, the
trace/metrics plane, cache artifacts, or stdout.  It is built from four
pieces:

* :mod:`~repro.analysis.dataflow.project` — a project-wide module loader
  and symbol table (every function, class, method and re-export under
  the analyzed roots);
* :mod:`~repro.analysis.dataflow.callgraph` — a call-graph builder that
  resolves direct calls, method calls over annotated/constructed
  receiver types (including :class:`~repro.core.mechanism.Mechanism`
  protocol dispatch), and the ``parallel_map(worker_fn, ...)``
  indirection of the process pool;
* :mod:`~repro.analysis.dataflow.taint` — a forward taint engine with
  per-function summaries (source/sanitizer/sink lattice, fixpoint over
  the call graph, attribute- and container-aware propagation);
* :mod:`~repro.analysis.dataflow.flowrules` — the ``PRIV0xx`` /
  ``BUD1xx`` / ``DET2xx`` rule families reported through the ordinary
  :class:`~repro.analysis.engine.Finding` machinery (suppressions and
  baselines apply unchanged).

Run it with ``repro lint --flow`` (or ``python -m repro.analysis
--flow``); see ``docs/static_analysis.md`` for the catalogue of
sources, sanitizers, and sinks.
"""

from repro.analysis.dataflow.callgraph import CallGraph, CallSite
from repro.analysis.dataflow.flowrules import analyze_flow, flow_rule_catalogue
from repro.analysis.dataflow.lattice import (
    BOTTOM,
    RAW,
    RNG,
    Taint,
    is_param,
    join,
    param_index,
    param_label,
)
from repro.analysis.dataflow.policy import FlowPolicy, default_policy
from repro.analysis.dataflow.project import ClassInfo, FunctionInfo, Project
from repro.analysis.dataflow.taint import Summary, TaintAnalysis

__all__ = [
    "BOTTOM",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FlowPolicy",
    "FunctionInfo",
    "Project",
    "RAW",
    "RNG",
    "Summary",
    "Taint",
    "TaintAnalysis",
    "analyze_flow",
    "default_policy",
    "flow_rule_catalogue",
    "is_param",
    "join",
    "param_index",
    "param_label",
]
