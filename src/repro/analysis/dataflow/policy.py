"""The privacy-flow policy: sources, sanitizers, sinks, charges.

This module is pure configuration — the taint engine and the flow rules
consult a :class:`FlowPolicy` instead of hard-coding names, so tests can
run the engine against synthetic fixtures with a narrow policy, and the
catalogue documented in ``docs/static_analysis.md`` has a single source
of truth.

The default policy encodes the paper's trust boundary:

* **sources** — functions that materialize raw check-in coordinates
  (synthetic population generators, cached population stage builders);
* **sanitizers** — the geo-indistinguishability mechanisms and their
  columnar fast paths; their outputs are safe to release;
* **sinks** — surfaces the honest-but-curious ad provider (or anyone
  outside the trust boundary) can read: the ads package, trace/metrics
  emission, cache artifacts, stdout/file writes;
* **charges** — ledger/accountant calls that pay for a release;
* **declassifiers** — aggregations whose output no longer identifies a
  location (distances, entropies, attack metrics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

__all__ = ["FlowPolicy", "default_policy"]


@dataclass(frozen=True)
class FlowPolicy:
    """Names that drive the taint engine and the PRIV/BUD/DET rules."""

    # -- raw-coordinate sources -------------------------------------------
    #: Any resolved callee under these prefixes returns RAW data ...
    source_prefixes: Tuple[str, ...] = ("repro.datagen.",)
    #: ... except callees under these prefixes (the sanitizer helpers
    #: live inside repro.datagen, and repro.datagen.shanghai holds
    #: geography constants — study bounding box, not check-ins).
    source_exempt_prefixes: Tuple[str, ...] = (
        "repro.datagen.obfuscate",
        "repro.datagen.shanghai",
    )
    #: Exact qnames that return RAW data.
    source_functions: FrozenSet[str] = frozenset(
        {
            "repro.data.stages.population_columns",
            "repro.data.stages.population_coords_pool",
            "repro.data.tiers.tier_columns",
        }
    )

    # -- rng sources -------------------------------------------------------
    #: Calls producing a live RNG object (bare or dotted tails).
    rng_constructors: FrozenSet[str] = frozenset(
        {
            "default_rng",
            "numpy.random.default_rng",
            "np.random.default_rng",
            "numpy.random.Generator",
            "np.random.Generator",
            "repro.core.mechanism.default_rng",
            "repro.kernels.gaussian.user_rng",
        }
    )
    #: Calls that launder seeds safely across process boundaries.
    rng_sanctioned: FrozenSet[str] = frozenset(
        {
            "SeedSequence",
            "numpy.random.SeedSequence",
            "np.random.SeedSequence",
            "spawn",
        }
    )

    # -- sanitizers --------------------------------------------------------
    #: Method names that obfuscate (the Mechanism protocol surface).
    sanitizer_methods: FrozenSet[str] = frozenset(
        {"obfuscate", "obfuscate_batch", "obfuscate_one", "obfuscate_stream"}
    )
    #: Resolved function qnames that obfuscate.
    sanitizer_functions: FrozenSet[str] = frozenset(
        {
            "repro.datagen.obfuscate.one_time_obfuscate",
            "repro.datagen.obfuscate.one_time_obfuscate_xy",
            "repro.datagen.obfuscate.permanent_obfuscate",
            "repro.datagen.obfuscate.permanent_obfuscate_xy",
            "repro.datagen.obfuscate.permanent_obfuscate_batched_xy",
            "repro.kernels.obfuscate.one_time_laplace_population",
            "repro.kernels.obfuscate.permanent_obfuscate_population",
            "repro.kernels.gaussian.pin_candidates_population",
        }
    )

    # -- sinks -------------------------------------------------------------
    #: PRIV001: resolved callees under these prefixes are ad-provider
    #: surfaces; raw arguments cross the trust boundary.  The serve
    #: egress is the streaming service's response path — everything a
    #: :class:`repro.serve.egress.ServeResponse` carries leaves the edge,
    #: so feeding it raw coordinates is exactly the PRIV001 violation.
    ads_prefixes: Tuple[str, ...] = ("repro.ads.", "repro.serve.egress.")
    #: PRIV002: resolved callees under these prefixes emit traces/metrics.
    obs_prefixes: Tuple[str, ...] = ("repro.obs.",)
    #: PRIV002: unresolved attribute calls with these names on any
    #: receiver count as trace emission (span.annotate(...)).
    obs_methods: FrozenSet[str] = frozenset({"annotate"})
    #: PRIV003: cache-artifact writes.
    cache_store_qnames: FrozenSet[str] = frozenset(
        {
            "repro.data.cache.StageCache.store",
            "repro.data.mmapstore.MmapStore.store",
            # Fleet checkpoints persist whole actor snapshots — including
            # the open profile window's true check-ins — so every write
            # is an audited artifact, same as the stage caches.
            "repro.fleet.checkpoint.CheckpointStore.put",
        }
    )
    cache_store_methods: FrozenSet[str] = frozenset({"store"})
    #: PRIV004: stdout / file-write calls (bare or dotted tails).
    io_calls: FrozenSet[str] = frozenset(
        {
            "print",
            "json.dump",
            "pickle.dump",
            "numpy.save",
            "np.save",
            "numpy.savez",
            "np.savez",
            "numpy.savez_compressed",
            "np.savez_compressed",
            "numpy.savetxt",
            "np.savetxt",
        }
    )
    #: PRIV004: attribute calls that write to a file-like object.
    io_methods: FrozenSet[str] = frozenset(
        {"write", "writelines", "write_text", "write_bytes", "writerow", "writerows"}
    )
    #: PRIV004: report constructors whose rows are rendered to stdout.
    report_qnames: FrozenSet[str] = frozenset(
        {"repro.experiments.tables.ExperimentReport"}
    )

    # -- budget charges ----------------------------------------------------
    #: Resolved qnames that charge a privacy budget.
    charge_qnames: FrozenSet[str] = frozenset(
        {
            "repro.core.ledger.PrivacyLedger.spend",
            "repro.core.accounting.LongitudinalExposureAccountant.observe",
        }
    )
    #: Unresolved attribute calls with these names count as charges
    #: ("spend" is unambiguous; "observe" is not — Histogram.observe —
    #: so it is only credited when the receiver type resolves).
    charge_methods: FrozenSet[str] = frozenset({"spend"})
    #: Modules whose sanitizer call sites are exempt from BUD101: the
    #: mechanism/kernel implementations themselves, and wrapper helpers.
    charge_exempt_prefixes: Tuple[str, ...] = (
        "repro.core.",
        "repro.kernels.",
        "repro.datagen.obfuscate",
    )

    # -- declassifiers -----------------------------------------------------
    #: Builtins/methods whose result carries no location information.
    declassifier_calls: FrozenSet[str] = frozenset({"len", "isinstance", "hash"})
    declassifier_methods: FrozenSet[str] = frozenset(
        {"distance_to", "entropy", "hexdigest", "digest"}
    )
    declassifier_prefixes: Tuple[str, ...] = ("repro.metrics.",)
    declassifier_functions: FrozenSet[str] = frozenset(
        {
            "repro.attack.success.evaluate_user",
            "repro.attack.success.success_rate",
        }
    )

    # -- parallel boundary -------------------------------------------------
    #: Fan-out entry points: first positional argument is the worker fn,
    #: ``items``/second positional and the ``payload`` kwarg cross the
    #: process boundary.
    parallel_map_qnames: FrozenSet[str] = frozenset(
        {
            "repro.parallel.pool.parallel_map",
            "repro.parallel.pool.parallel_map_with_stats",
        }
    )
    #: Modules exempt from DET202 (the pool implementation itself uses
    #: a module-global payload slot by design).
    det_exempt_prefixes: Tuple[str, ...] = ("repro.parallel.",)

    #: Extra qnames treated as sources in tests.
    extra_sources: FrozenSet[str] = frozenset()

    # -- trusted output layers ---------------------------------------------
    #: Modules whose own bodies are trusted sinks: calls inside them are
    #: never classified as sink events, so e.g. ``StageCache.store``'s
    #: internal file writes don't surface as a second, redundant PRIV004
    #: on top of the PRIV003 reported at the caller's ``store(...)`` site.
    sink_exempt_prefixes: Tuple[str, ...] = (
        "repro.data.cache",
        "repro.data.mmapstore",
        "repro.fleet.checkpoint",
        "repro.experiments.tables",
        "repro.experiments.runner",
        "repro.obs.",
        "repro.analysis.",
    )

    # -- queries -----------------------------------------------------------

    def is_source(self, qname: str) -> bool:
        """Whether a resolved callee returns raw coordinates."""
        if qname in self.source_functions or qname in self.extra_sources:
            return True
        if any(qname.startswith(p) for p in self.source_exempt_prefixes):
            return False
        return any(qname.startswith(p) for p in self.source_prefixes)

    def is_sanitizer(self, qname: Optional[str], attr: Optional[str]) -> bool:
        """Whether a call site obfuscates its input."""
        if qname is not None:
            if qname in self.sanitizer_functions:
                return True
            tail = qname.rsplit(".", 1)[-1]
            if tail in self.sanitizer_methods:
                return True
        return attr is not None and attr in self.sanitizer_methods

    def is_charge(self, qname: Optional[str], attr: Optional[str]) -> bool:
        """Whether a call site charges a ledger/accountant."""
        if qname is not None and qname in self.charge_qnames:
            return True
        return attr is not None and attr in self.charge_methods

    def charge_exempt(self, module: str) -> bool:
        """Whether BUD101 skips sanitizer call sites in ``module``."""
        return any(module.startswith(p) for p in self.charge_exempt_prefixes)

    def is_rng_constructor(self, name: Optional[str]) -> bool:
        """Whether a call produces a live RNG object."""
        if name is None:
            return False
        return name in self.rng_constructors or (
            name.rsplit(".", 1)[-1] in {"default_rng", "user_rng"}
        )

    def is_rng_sanctioned(self, name: Optional[str]) -> bool:
        """Whether a call is the sanctioned SeedSequence idiom."""
        if name is None:
            return False
        return name in self.rng_sanctioned or name.rsplit(".", 1)[-1] in {
            "SeedSequence",
            "spawn",
        }

    def is_declassifier(self, qname: Optional[str], attr: Optional[str]) -> bool:
        """Whether a call's result carries no location information."""
        if attr is not None and attr in self.declassifier_methods:
            return True
        if qname is None:
            return False
        if qname in self.declassifier_calls or qname in self.declassifier_functions:
            return True
        return any(qname.startswith(p) for p in self.declassifier_prefixes)

    def is_parallel_map(self, qname: Optional[str]) -> bool:
        """Whether a resolved callee is the process-pool fan-out."""
        return qname is not None and qname in self.parallel_map_qnames

    def det_exempt(self, module: str) -> bool:
        """Whether DET202 skips functions defined in ``module``."""
        return any(module.startswith(p) for p in self.det_exempt_prefixes)

    def sink_exempt(self, module: str) -> bool:
        """Whether calls inside ``module`` skip sink classification."""
        return any(module.startswith(p) for p in self.sink_exempt_prefixes)


_DEFAULT = FlowPolicy()


def default_policy() -> FlowPolicy:
    """The policy encoding the repo's actual trust boundary."""
    return _DEFAULT
