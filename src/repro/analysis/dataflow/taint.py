"""Forward taint engine with per-function summaries.

Each function is walked flow-sensitively with an environment mapping
local names to :data:`~repro.analysis.dataflow.lattice.Taint` values.
Parameters start as their symbolic labels (``p0``, ``p1``, ...), so the
walk doubles as summary construction: a return value carrying ``{p0}``
means "returns whatever the first argument was", and a sink reached by
``{p1}`` means "parameter 1 escapes".  The interprocedural fixpoint
re-walks every function until no summary changes; everything is
monotone over a finite lattice, so it terminates.

Precision notes (deliberate, documented trade-offs):

* attribute reads inherit the receiver's taint (``pop.xs`` is as raw as
  ``pop``); ``self.attr`` stores are tracked flow-sensitively within one
  function, not across methods;
* constructed objects join their constructor arguments' taint when
  ``FlowPolicy`` keeps the default (``EdgeDevice(users)`` is as raw as
  ``users``);
* comparisons return clean booleans — implicit flows through branch
  conditions are out of scope;
* closures read as clean; lambdas are opaque.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.dataflow.callgraph import CallGraph, CallSite
from repro.analysis.dataflow.lattice import (
    BOTTOM,
    RAW,
    RNG,
    Taint,
    join,
    param_index,
    param_label,
    substitute,
)
from repro.analysis.dataflow.policy import FlowPolicy, default_policy
from repro.analysis.dataflow.project import FunctionInfo, Project

__all__ = [
    "Summary",
    "CallEvent",
    "FunctionEvents",
    "TaintAnalysis",
    "classify_sink",
]

Env = Dict[str, Taint]

#: Loop bodies are walked this many times so loop-carried taint settles.
_LOOP_PASSES = 2


@dataclass
class Summary:
    """Interprocedural behaviour of one function.

    ``returns`` may mix concrete labels with symbolic parameter labels;
    ``sink_params`` maps a parameter index to the sink kinds it can
    reach (``ads``/``obs``/``cache``/``io``/``report``).
    """

    returns: Taint = BOTTOM
    sink_params: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    charges: bool = False
    has_global: bool = False

    def merge(self, other: "Summary") -> "Summary":
        """Pointwise join (used to keep the fixpoint monotone)."""
        sink_params = dict(self.sink_params)
        for idx, kinds in other.sink_params.items():
            sink_params[idx] = sink_params.get(idx, frozenset()) | kinds
        return Summary(
            returns=join(self.returns, other.returns),
            sink_params=sink_params,
            charges=self.charges or other.charges,
            has_global=self.has_global or other.has_global,
        )


@dataclass
class CallEvent:
    """One evaluated call site with the taints that reached it."""

    site: CallSite
    recv: Taint = BOTTOM
    pos: List[Taint] = field(default_factory=list)
    kw: Dict[str, Taint] = field(default_factory=dict)
    #: Sink kinds this call *is* (direct classification).
    sink_kinds: FrozenSet[str] = frozenset()
    is_sanitizer: bool = False
    is_charge: bool = False
    #: RAW-carrying flows into callees whose summaries reach a sink:
    #: (callee qname, parameter name, sink kinds).
    transitive: List[Tuple[str, str, FrozenSet[str]]] = field(default_factory=list)
    #: Items/payload taint crossing a parallel_map boundary.
    parallel_boundary: Taint = BOTTOM

    @property
    def arg_join(self) -> Taint:
        """Join of every argument taint (receiver excluded)."""
        return join(*self.pos, *self.kw.values())


@dataclass
class FunctionEvents:
    """Per-function walk artifacts consumed by the flow rules."""

    calls: List[CallEvent] = field(default_factory=list)
    global_lines: List[int] = field(default_factory=list)


def _names_of(site: CallSite, fn: FunctionInfo) -> List[str]:
    """Every name a call site answers to: raw dotted, import origin, callees."""
    names: List[str] = list(site.callees)
    if site.dotted is not None:
        names.append(site.dotted)
        origin = fn.ctx.imports.resolve(site.dotted.split("."))
        if origin is not None:
            names.append(origin)
    return names


def classify_sink(site: CallSite, fn: FunctionInfo, policy: FlowPolicy) -> FrozenSet[str]:
    """The sink kinds a call site belongs to (empty when not a sink)."""
    kinds = set()
    names = _names_of(site, fn)
    for name in names:
        if any(name.startswith(p) for p in policy.ads_prefixes):
            kinds.add("ads")
        if any(name.startswith(p) for p in policy.obs_prefixes):
            kinds.add("obs")
        if name in policy.cache_store_qnames:
            kinds.add("cache")
        if name in policy.io_calls:
            kinds.add("io")
    if site.constructed is not None and site.constructed in policy.report_qnames:
        kinds.add("report")
    if site.attr is not None:
        if site.attr in policy.io_methods:
            kinds.add("io")
        if site.attr in policy.obs_methods:
            kinds.add("obs")
        if site.attr in policy.cache_store_methods and not site.callees:
            kinds.add("cache")
    return frozenset(kinds)


class _Walker:
    """Flow-sensitive walk of one function body."""

    def __init__(self, analysis: "TaintAnalysis", fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        self.policy = analysis.policy
        self.project = analysis.project
        self.graph = analysis.graph
        self.events = FunctionEvents()
        self.returns: Taint = BOTTOM
        self.sink_params: Dict[int, FrozenSet[str]] = {}
        self.charges = False
        self.types: Dict[str, str] = self.graph.local_env.get(fn.qname, {})
        self.sink_exempt = self.policy.sink_exempt(fn.module)

    # -- entry -------------------------------------------------------------

    def run(self) -> Tuple[Summary, FunctionEvents]:
        env: Env = {
            name: frozenset({param_label(i)})
            for i, name in enumerate(self.fn.params)
        }
        body = getattr(self.fn.node, "body", [])
        self.exec_block(body, env)
        summary = Summary(
            returns=self.returns,
            sink_params=dict(self.sink_params),
            charges=self.charges,
            has_global=bool(self.events.global_lines),
        )
        return summary, self.events

    # -- static types ------------------------------------------------------

    def _static_type(self, node: ast.expr) -> Optional[str]:
        """Best-effort class qname of an expression (or ``None``).

        Uses the call graph's per-function local type environment for
        plain names, the enclosing class for ``self``, and declared
        attribute types for ``self.attr`` / chained reads.
        """
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.fn.class_qname
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._static_type(node.value)
            if base is None:
                return None
            cinfo = self.project.classes.get(base)
            if cinfo is not None:
                return cinfo.attr_types.get(node.attr)
            return None
        return None

    def _loop_bindings(
        self, stmt: ast.stmt, env: Env
    ) -> List[Tuple[ast.expr, Taint]]:
        """(target, taint) pairs for a for-loop header.

        ``for i, x in enumerate(xs)`` binds ``i`` clean — enumeration
        indices count, they don't locate — and ``x`` to the taint of
        ``xs`` rather than of the opaque ``enumerate(...)`` call.
        """
        target = getattr(stmt, "target", None)
        it = getattr(stmt, "iter", None)
        assert target is not None and it is not None
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "enumerate"
            and it.args
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
        ):
            return [
                (target.elts[0], BOTTOM),
                (target.elts[1], self.eval(it.args[0], env)),
            ]
        return [(target, self.eval(it, env))]

    # -- statements --------------------------------------------------------

    def exec_block(self, stmts: List[ast.stmt], env: Env) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, env)
            current = self.eval(stmt.target, env)
            self.assign(stmt.target, join(current, value), env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = join(self.returns, self.eval(stmt.value, env))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.exec_block(stmt.body, then_env)
            self.exec_block(stmt.orelse, else_env)
            self._merge_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bindings = self._loop_bindings(stmt, env)
            for _ in range(_LOOP_PASSES):
                for tgt, taint in bindings:
                    self.assign(tgt, taint, env)
                body_env = dict(env)
                self.exec_block(stmt.body, body_env)
                self._merge_into(env, body_env, env)
            self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            for _ in range(_LOOP_PASSES):
                self.eval(stmt.test, env)
                body_env = dict(env)
                self.exec_block(stmt.body, body_env)
                self._merge_into(env, body_env, env)
            self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx_taint = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, ctx_taint, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self.exec_block(handler.body, handler_env)
                self._merge_into(env, handler_env, env)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Global):
            self.events.global_lines.append(stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self.eval(dec, env)
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                self.eval(default, env)
        elif isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self.eval(dec, env)
        # Pass/Break/Continue/Import/Nonlocal: nothing flows.

    @staticmethod
    def _merge_into(env: Env, a: Env, b: Env) -> None:
        merged: Env = {}
        for key in set(a) | set(b):
            merged[key] = join(a.get(key, BOTTOM), b.get(key, BOTTOM))
        env.clear()
        env.update(merged)

    def assign(self, target: ast.AST, value: Taint, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, value, env)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, env)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                env[f"self.{target.attr}"] = value
            else:
                # Weak update: the object now carries at least this taint.
                base_taint = self.eval(base, env)
                if isinstance(base, ast.Name):
                    env[base.id] = join(base_taint, value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                env[base.id] = join(env.get(base.id, BOTTOM), value)

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.AST, env: Env) -> Taint:
        if isinstance(node, ast.Name):
            return env.get(node.id, BOTTOM)
        if isinstance(node, ast.Constant):
            return BOTTOM
        if isinstance(node, ast.Attribute):
            recv = self.eval(node.value, env)
            base_type = self._static_type(node.value)
            if base_type is not None:
                cinfo = self.project.classes.get(base_type)
                if cinfo is not None and node.attr in cinfo.scalar_attrs:
                    return BOTTOM  # int/bool/str field: no coordinates
                prop = self.project.find_method(base_type, node.attr)
                if prop is not None:
                    prop_fn = self.project.functions.get(prop)
                    if prop_fn is not None and "property" in prop_fn.decorators:
                        if prop_fn.returns_scalar:
                            return BOTTOM
                        # A property read is a method call on the receiver.
                        summary = self.analysis.summaries.get(prop, Summary())
                        return substitute(summary.returns, [recv])
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return join(recv, env.get(f"self.{node.attr}", BOTTOM))
            return recv
        if isinstance(node, ast.Subscript):
            self.eval(node.slice, env)
            return self.eval(node.value, env)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return join(self.eval(node.left, env), self.eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            return join(*(self.eval(v, env) for v in node.values))
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comp in node.comparators:
                self.eval(comp, env)
            return BOTTOM  # booleans carry no coordinates
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return join(*(self.eval(e, env) for e in node.elts))
        if isinstance(node, ast.Dict):
            parts = [self.eval(k, env) for k in node.keys if k is not None]
            parts += [self.eval(v, env) for v in node.values]
            return join(*parts)
        if isinstance(node, ast.JoinedStr):
            return join(*(self.eval(v, env) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for gen in node.generators:
                iter_taint = self.eval(gen.iter, comp_env)
                self.assign(gen.target, iter_taint, comp_env)
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            return self.eval(node.elt, comp_env)
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for gen in node.generators:
                iter_taint = self.eval(gen.iter, comp_env)
                self.assign(gen.target, iter_taint, comp_env)
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            return join(self.eval(node.key, comp_env), self.eval(node.value, comp_env))
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            self.assign(node.target, value, env)
            return value
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                value = self.eval(node.value, env)
                self.returns = join(self.returns, value)
            return BOTTOM
        if isinstance(node, ast.Lambda):
            return BOTTOM
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return BOTTOM
        return BOTTOM

    # -- calls -------------------------------------------------------------

    def eval_call(self, call: ast.Call, env: Env) -> Taint:
        policy = self.policy
        site = self.graph.site_for(call)
        if site is None:
            # A call the graph did not index (e.g. inside a lambda);
            # evaluate the pieces conservatively.
            taints = [self.eval(a, env) for a in call.args]
            taints += [self.eval(k.value, env) for k in call.keywords]
            if isinstance(call.func, (ast.Attribute, ast.Call)):
                taints.append(self.eval(call.func, env))
            return join(*taints)

        recv = BOTTOM
        if isinstance(call.func, ast.Attribute):
            recv = self.eval(call.func.value, env)
        elif not isinstance(call.func, ast.Name):
            recv = self.eval(call.func, env)

        pos = [self.eval(a, env) for a in call.args]
        kw: Dict[str, Taint] = {}
        for keyword in call.keywords:
            value = self.eval(keyword.value, env)
            kw[keyword.arg if keyword.arg is not None else "**"] = value

        names = _names_of(site, self.fn)
        event = CallEvent(
            site=site,
            recv=recv,
            pos=pos,
            kw=kw,
            sink_kinds=(
                frozenset()
                if self.sink_exempt
                else classify_sink(site, self.fn, policy)
            ),
            is_sanitizer=policy.is_sanitizer(
                site.callees[0] if site.callees else site.dotted, site.attr
            ),
            is_charge=any(policy.is_charge(n, None) for n in names)
            or policy.is_charge(None, site.attr),
        )
        self.events.calls.append(event)
        if event.is_charge:
            self.charges = True

        # Record symbolic escapes into this function's own summary.
        if event.sink_kinds:
            for label in event.arg_join:
                idx = param_index(label)
                if idx is not None:
                    self.sink_params[idx] = (
                        self.sink_params.get(idx, frozenset()) | event.sink_kinds
                    )

        # Fan-out boundary: items + payload cross process boundaries.
        if site.is_parallel_map:
            return self._eval_parallel_map(event, env)

        # Result taint, in policy-priority order.
        if event.is_sanitizer:
            return BOTTOM
        if site.constructed is None and any(policy.is_source(n) for n in names):
            return frozenset({RAW})
        if any(policy.is_rng_constructor(n) for n in names):
            return frozenset({RNG})
        if any(policy.is_rng_sanctioned(n) for n in names) or (
            policy.is_rng_sanctioned(site.attr)
        ):
            return BOTTOM
        if any(policy.is_declassifier(n, None) for n in names) or (
            policy.is_declassifier(None, site.attr)
        ):
            return BOTTOM

        results: List[Taint] = []
        resolved_any = False
        for qname in site.callees:
            callee = self.project.functions.get(qname)
            if callee is None:
                continue
            resolved_any = True
            bound = self._bind(callee, site, recv, pos, kw)
            summary = self.analysis.summaries.get(qname, Summary())
            # An int/bool/str return annotation certifies the result
            # carries no coordinates, whatever the summary says.
            if not callee.returns_scalar:
                results.append(substitute(summary.returns, bound))
            self._propagate_callee_sinks(event, qname, callee, bound)
        if site.constructed is not None:
            if self.policy_constructor_joins():
                return join(*pos, *kw.values())
            return BOTTOM
        if resolved_any:
            return join(*results) if results else BOTTOM
        # Unknown call: conservative join of receiver and arguments.  A
        # method call may also mutate its receiver (rows.append(raw)), so
        # weak-update the receiver variable with the argument taint.
        result = join(recv, *pos, *kw.values())
        if isinstance(call.func, ast.Attribute):
            base = call.func.value
            arg_taint = join(*pos, *kw.values())
            if isinstance(base, ast.Name):
                env[base.id] = join(env.get(base.id, BOTTOM), arg_taint)
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                key = f"self.{base.attr}"
                env[key] = join(env.get(key, BOTTOM), arg_taint)
        return result

    def policy_constructor_joins(self) -> bool:
        """Whether constructed objects inherit constructor-argument taint."""
        return True

    def _eval_parallel_map(self, event: CallEvent, env: Env) -> Taint:
        site = event.site
        items = event.pos[1] if len(event.pos) > 1 else event.kw.get("items", BOTTOM)
        payload = event.kw.get("payload", BOTTOM)
        event.parallel_boundary = join(items, payload)
        results: List[Taint] = []
        for qname in site.workers:
            worker = self.project.functions.get(qname)
            if worker is None:
                continue
            bound = [BOTTOM] * len(worker.params)
            if bound:
                bound[0] = items
            payload_idx = worker.param_index("payload")
            if payload_idx is None and len(bound) > 2:
                payload_idx = 2
            if payload_idx is not None and payload_idx < len(bound):
                bound[payload_idx] = payload
            summary = self.analysis.summaries.get(qname, Summary())
            results.append(substitute(summary.returns, bound))
            self._propagate_callee_sinks(event, qname, worker, bound)
        return join(*results) if results else BOTTOM

    def _bind(
        self,
        callee: FunctionInfo,
        site: CallSite,
        recv: Taint,
        pos: List[Taint],
        kw: Dict[str, Taint],
    ) -> List[Taint]:
        bound = [BOTTOM] * len(callee.params)
        start = 0
        if site.constructed is not None or (
            callee.is_method and callee.is_classmethod
        ):
            start = 1  # self/cls carries no caller taint
        elif callee.is_method and not callee.is_staticmethod:
            if bound:
                bound[0] = recv
            start = 1
        for i, taint in enumerate(pos):
            j = start + i
            if j < len(bound):
                bound[j] = join(bound[j], taint)
        for name, taint in kw.items():
            idx = callee.param_index(name)
            if idx is not None and idx < len(bound):
                bound[idx] = join(bound[idx], taint)
        return bound

    def _propagate_callee_sinks(
        self,
        event: CallEvent,
        qname: str,
        callee: FunctionInfo,
        bound: List[Taint],
    ) -> None:
        summary = self.analysis.summaries.get(qname, Summary())
        for idx, kinds in summary.sink_params.items():
            if idx >= len(bound):
                continue
            taint = bound[idx]
            if RAW in taint:
                pname = callee.params[idx] if idx < len(callee.params) else f"arg{idx}"
                event.transitive.append((qname, pname, kinds))
            for label in taint:
                own = param_index(label)
                if own is not None:
                    self.sink_params[own] = (
                        self.sink_params.get(own, frozenset()) | kinds
                    )


class TaintAnalysis:
    """Interprocedural fixpoint over every function in a project."""

    def __init__(
        self,
        project: Project,
        graph: Optional[CallGraph] = None,
        policy: Optional[FlowPolicy] = None,
    ) -> None:
        self.project = project
        self.policy = policy or default_policy()
        self.graph = graph or CallGraph.build(project, self.policy)
        self.summaries: Dict[str, Summary] = {}
        self.events: Dict[str, FunctionEvents] = {}
        self.iterations = 0

    def run(self, max_iterations: int = 12) -> None:
        """Iterate summaries to a fixpoint, then keep the final events."""
        functions = list(self.project.functions.values())
        for iteration in range(max_iterations):
            self.iterations = iteration + 1
            changed = False
            for fn in functions:
                summary, events = _Walker(self, fn).run()
                old = self.summaries.get(fn.qname)
                merged = summary if old is None else old.merge(summary)
                if old is None or merged != old:
                    changed = True
                self.summaries[fn.qname] = merged
                self.events[fn.qname] = events
            if not changed:
                break

    def summary(self, qname: str) -> Summary:
        """The converged summary for ``qname`` (bottom if unknown)."""
        return self.summaries.get(qname, Summary())
