"""The taint lattice.

A taint value is a frozen set of labels.  Two concrete labels matter to
the policy — :data:`RAW` (an unobfuscated coordinate or something
derived from one) and :data:`RNG` (a live ``numpy.random.Generator``)
— plus *symbolic* labels ``p0, p1, ...`` naming the parameters of the
function under summary.  Symbolic labels make summaries reusable: a
function whose return carries ``{p0}`` returns whatever taint its first
argument had, so the fixpoint engine can substitute per call site
without re-walking the body.

The lattice order is subset inclusion; ``join`` is set union, bottom is
the empty set.  Everything is monotone, so the interprocedural fixpoint
terminates.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

__all__ = [
    "Taint",
    "BOTTOM",
    "RAW",
    "RNG",
    "join",
    "is_param",
    "param_label",
    "param_index",
    "concrete",
    "substitute",
]

Taint = FrozenSet[str]

#: No information flows here.
BOTTOM: Taint = frozenset()

#: Raw (unsanitized) coordinate data.
RAW = "raw"

#: A live RNG object (``numpy.random.Generator`` or equivalent).
RNG = "rng"

_PARAM_PREFIX = "p"


def join(*values: Taint) -> Taint:
    """Least upper bound: the union of all labels."""
    out: FrozenSet[str] = frozenset()
    for value in values:
        out = out | value
    return out


def param_label(index: int) -> str:
    """The symbolic label for parameter ``index`` (``p0``, ``p1``, ...)."""
    if index < 0:
        raise ValueError(f"parameter index must be >= 0, got {index}")
    return f"{_PARAM_PREFIX}{index}"


def is_param(label: str) -> bool:
    """Whether ``label`` is a symbolic parameter reference."""
    return (
        label.startswith(_PARAM_PREFIX)
        and len(label) > 1
        and label[1:].isdigit()
    )


def param_index(label: str) -> Optional[int]:
    """The parameter index behind a symbolic label, or None."""
    if is_param(label):
        return int(label[1:])
    return None


def concrete(value: Taint) -> Taint:
    """The concrete (non-symbolic) part of a taint value."""
    return frozenset(label for label in value if not is_param(label))


def substitute(value: Taint, args: Iterable[Taint]) -> Taint:
    """Replace symbolic parameter labels with the call-site argument taints.

    ``args[i]`` is the taint of the argument bound to parameter ``i``;
    missing positions (defaulted parameters) contribute nothing.
    """
    arg_list = list(args)
    out = concrete(value)
    for label in value:
        idx = param_index(label)
        if idx is not None and idx < len(arg_list):
            out = out | arg_list[idx]
    return out
