"""Edge-device queueing model: latency of the serve path under load.

Models one edge device as a multi-worker FIFO queue: ad requests arrive as
a Poisson process at ``arrival_rate`` requests/second, each needs a
service time drawn from a caller-supplied distribution (in practice: the
measured output-selection + network round-trip cost), and ``n_workers``
requests can be in service concurrently.  The simulation records per-
request waiting and response times so the bench can check the RTB deadline
(~100 ms) holds at realistic loads and find the saturation point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.sim.events import Simulator

__all__ = ["QueueStats", "EdgeQueueModel", "simulate_edge_queue"]

ServiceTime = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class QueueStats:
    """Latency summary of a finished run (seconds)."""

    served: int
    utilization: float
    mean_wait: float
    mean_response: float
    p50_response: float
    p95_response: float
    p99_response: float
    max_queue_len: int

    def meets_deadline(self, deadline_s: float, percentile: str = "p99") -> bool:
        """Does the chosen response percentile stay within the deadline?"""
        value = {
            "p50": self.p50_response,
            "p95": self.p95_response,
            "p99": self.p99_response,
        }[percentile]
        return value <= deadline_s


class EdgeQueueModel:
    """M/G/c FIFO queue driven by the discrete-event simulator."""

    def __init__(
        self,
        n_workers: int,
        service_time: ServiceTime,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.service_time = service_time
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._sim = Simulator()
        self._busy = 0
        self._waiting: Deque[float] = deque()  # arrival times of queued requests
        self._waits: List[float] = []
        self._responses: List[float] = []
        self._busy_time = 0.0
        self._max_queue = 0

    def _arrive(self) -> None:
        now = self._sim.now
        if self._busy < self.n_workers:
            self._start_service(now)
        else:
            self._waiting.append(now)
            self._max_queue = max(self._max_queue, len(self._waiting))

    def _start_service(self, arrival_time: float) -> None:
        now = self._sim.now
        wait = now - arrival_time
        service = float(self.service_time(self.rng))
        if service < 0:
            raise ValueError("service time must be non-negative")
        self._busy += 1
        self._busy_time += service
        self._waits.append(wait)
        self._responses.append(wait + service)
        self._sim.schedule(service, self._complete)

    def _complete(self) -> None:
        self._busy -= 1
        if self._waiting:
            self._start_service(self._waiting.popleft())

    def run(self, arrival_rate: float, n_requests: int) -> QueueStats:
        """Simulate ``n_requests`` Poisson arrivals at ``arrival_rate`` req/s."""
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if n_requests < 1:
            raise ValueError("need at least one request")
        gaps = self.rng.exponential(1.0 / arrival_rate, n_requests)
        t = 0.0
        for gap in gaps:
            t += float(gap)
            self._sim.schedule_at(t, self._arrive)
        self._sim.run()
        responses = np.asarray(self._responses)
        waits = np.asarray(self._waits)
        horizon = self._sim.now if self._sim.now > 0 else 1.0
        return QueueStats(
            served=len(responses),
            utilization=float(self._busy_time / (horizon * self.n_workers)),
            mean_wait=float(waits.mean()),
            mean_response=float(responses.mean()),
            p50_response=float(np.quantile(responses, 0.50)),
            p95_response=float(np.quantile(responses, 0.95)),
            p99_response=float(np.quantile(responses, 0.99)),
            max_queue_len=self._max_queue,
        )


def simulate_edge_queue(
    arrival_rate: float,
    n_requests: int,
    n_workers: int,
    service_time: ServiceTime,
    seed: int = 0,
) -> QueueStats:
    """Convenience one-shot wrapper around :class:`EdgeQueueModel`."""
    model = EdgeQueueModel(
        n_workers=n_workers,
        service_time=service_time,
        rng=np.random.default_rng(seed),
    )
    return model.run(arrival_rate, n_requests)
