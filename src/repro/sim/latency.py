"""Edge serve-path latency study built on measured service costs.

Bridges the micro-benchmarks and the queueing model: measures this host's
actual per-request output-selection cost, wraps it in a log-normal service
distribution (adding a configurable network round-trip), and sweeps the
arrival rate to find how many requests/second one edge device can absorb
while keeping p99 response under the RTB deadline (~100 ms).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.gaussian import NFoldGaussianMechanism
from repro.core.mechanism import default_rng
from repro.core.params import GeoIndBudget
from repro.core.posterior import PosteriorSelector
from repro.geo.point import Point
from repro.sim.queueing import QueueStats, simulate_edge_queue

__all__ = [
    "RTB_DEADLINE_S",
    "measure_selection_service_time",
    "lognormal_service",
    "latency_sweep",
    "LatencyPoint",
]

#: The matching deadline the paper cites for RTB (Section II-A, ref [16]).
RTB_DEADLINE_S = 0.100


def measure_selection_service_time(
    budget: Optional[GeoIndBudget] = None, samples: int = 2_000, seed: int = 0
) -> float:
    """Median wall-clock cost of one posterior output selection, in seconds."""
    if budget is None:
        budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    rng = default_rng(seed)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
    # Timing harness: one origin-centred candidate set drawn to feed the
    # selector benchmark; nothing is released, so no budget charge applies.
    # reprolint: disable=BUD101
    candidates = mechanism.obfuscate(Point(0.0, 0.0))
    times = np.empty(samples)
    for i in range(samples):
        t0 = time.perf_counter()
        selector.select(candidates)
        times[i] = time.perf_counter() - t0
    return float(np.median(times))


def lognormal_service(
    median_s: float, sigma: float = 0.5, floor_s: float = 0.0
) -> Callable[[np.random.Generator], float]:
    """A log-normal service-time distribution with the given median.

    Real serve paths have heavy right tails (GC pauses, contention); the
    log-normal is the standard stand-in.  ``floor_s`` adds a deterministic
    component, e.g. a network round-trip.
    """
    if median_s <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    mu = float(np.log(median_s))

    def sample(rng: np.random.Generator) -> float:
        return floor_s + float(rng.lognormal(mu, sigma))

    return sample


@dataclass(frozen=True)
class LatencyPoint:
    """One arrival-rate point of the latency sweep."""

    arrival_rate: float
    stats: QueueStats

    @property
    def meets_rtb_deadline(self) -> bool:
        """Whether p99 response time meets the RTB deadline."""
        return self.stats.meets_deadline(RTB_DEADLINE_S, "p99")


def latency_sweep(
    arrival_rates: Sequence[float],
    service_median_s: float,
    n_workers: int = 4,
    n_requests: int = 20_000,
    service_sigma: float = 0.5,
    network_floor_s: float = 0.002,
    seed: int = 0,
) -> List[LatencyPoint]:
    """Response-time statistics across arrival rates for one edge device."""
    service = lognormal_service(
        service_median_s, sigma=service_sigma, floor_s=network_floor_s
    )
    points = []
    for i, rate in enumerate(arrival_rates):
        stats = simulate_edge_queue(
            arrival_rate=rate,
            n_requests=n_requests,
            n_workers=n_workers,
            service_time=service,
            seed=seed + i,
        )
        points.append(LatencyPoint(arrival_rate=rate, stats=stats))
    return points
