"""A minimal discrete-event simulation core.

The scalability story of Edge-PrivLocAd (Tables II-III) is about
throughput; what those tables do not show is *latency under load* — an
edge device serves many users whose ad requests contend for its workers,
and the RTB ecosystem gives the whole matching path a hard deadline
(~100 ms, paper Section II-A).  This package provides a deterministic
event-driven simulator to answer that question with the measured
per-request service costs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator"]

Callback = Callable[..., None]


class Simulator:
    """A deterministic future-event-list simulator.

    Events are ``(time, sequence, callback, args)`` tuples on a heap; the
    sequence number makes simultaneous events fire in scheduling order, so
    runs are fully reproducible.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[Tuple[float, int, Callback, tuple]] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Events fired so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callback, *args: Any) -> None:
        """Schedule ``callback(*args)`` to fire ``delay`` from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, args)
        )

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> None:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < now={self.now})")
        heapq.heappush(self._queue, (time, next(self._sequence), callback, args))

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback, args = heapq.heappop(self._queue)
        self.now = time
        self._processed += 1
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event cap.

        Events scheduled exactly at ``until`` still fire; later ones stay
        queued (and ``now`` advances to ``until``).
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            fired += 1
        if until is not None and until > self.now:
            self.now = until
