"""Discrete-event simulation: edge serve-path latency under load."""

from repro.sim.events import Simulator
from repro.sim.latency import (
    RTB_DEADLINE_S,
    LatencyPoint,
    latency_sweep,
    lognormal_service,
    measure_selection_service_time,
)
from repro.sim.queueing import EdgeQueueModel, QueueStats, simulate_edge_queue

__all__ = [
    "Simulator",
    "EdgeQueueModel",
    "QueueStats",
    "simulate_edge_queue",
    "latency_sweep",
    "LatencyPoint",
    "lognormal_service",
    "measure_selection_service_time",
    "RTB_DEADLINE_S",
]
