"""Privacy-utility trade-off study (paper Figures 7-9 in miniature).

Run with::

    python examples/privacy_utility_tradeoff.py

Sweeps the candidate count n and compares, for a fixed (r, eps, delta)
budget:

* the noise scale required by the sufficient-statistic analysis vs plain
  composition (Theorem 2's saving),
* utilization rate (how much of the targeting area stays reachable), and
* advertising efficacy with posterior vs uniform output selection.
"""

import numpy as np

from repro.core import (
    GeoIndBudget,
    NFoldGaussianMechanism,
    PosteriorSelector,
    UniformSelector,
    composition_vs_sufficient_statistic,
    default_rng,
)
from repro.metrics import efficacy_samples, utilization_samples


def main() -> None:
    r, eps, delta = 500.0, 1.0, 0.01
    print(f"budget: r = {r:.0f} m, eps = {eps}, delta = {delta}\n")
    header = (
        f"{'n':>3}  {'sigma_suff':>10}  {'sigma_comp':>10}  {'saving':>6}  "
        f"{'mean UR':>8}  {'AE post':>8}  {'AE unif':>8}"
    )
    print(header)
    print("-" * len(header))

    for n in (1, 2, 4, 6, 8, 10):
        comparison = composition_vs_sufficient_statistic(r, eps, delta, n)
        budget = GeoIndBudget(r=r, epsilon=eps, delta=delta, n=n)

        rng = default_rng(100 + n)
        mechanism = NFoldGaussianMechanism(budget, rng=rng)
        ur = utilization_samples(mechanism, trials=300, rng=rng).mean()

        rng = default_rng(200 + n)
        mech2 = NFoldGaussianMechanism(budget, rng=rng)
        ae_post = efficacy_samples(
            mech2, PosteriorSelector(mech2.posterior_sigma, rng=rng), trials=300, rng=rng
        ).mean()

        rng = default_rng(300 + n)
        mech3 = NFoldGaussianMechanism(budget, rng=rng)
        ae_unif = efficacy_samples(
            mech3, UniformSelector(rng=rng), trials=300, rng=rng
        ).mean()

        print(
            f"{n:>3}  {comparison.sigma_sufficient_statistic:>10.0f}  "
            f"{comparison.sigma_plain_composition:>10.0f}  "
            f"{comparison.saving_factor:>6.2f}  {ur:>8.3f}  "
            f"{ae_post:>8.3f}  {ae_unif:>8.3f}"
        )

    print(
        "\nreading: the sufficient-statistic analysis needs ~sqrt(n)-times "
        "less noise than composition; utilization climbs with n while "
        "posterior selection keeps efficacy from collapsing."
    )


if __name__ == "__main__":
    main()
