"""Edge privacy dashboard: per-user risk and red-team exposure margins.

Run with::

    python examples/risk_dashboard.py

The trusted edge can see both sides — true profiles and the outgoing
obfuscated stream — so it can continuously audit its own protection: score
every user's longitudinal risk (paper Section I) and run the paper's
de-obfuscation attack against its own reports to measure each user's
exposure margin under the current LPPM.
"""

import math

from repro.attack import DeobfuscationAttack
from repro.core import (
    GeoIndBudget,
    NFoldGaussianMechanism,
    PlanarLaplaceMechanism,
    PosteriorSelector,
    default_rng,
)
from repro.datagen import PopulationConfig, generate_population, one_time_obfuscate, permanent_obfuscate
from repro.edge import RiskAssessor, self_attack_margin
from repro.profiles import LocationProfile, eta_frequent_set


def main() -> None:
    users = generate_population(PopulationConfig(n_users=8, seed=33))
    assessor = RiskAssessor()
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)

    header = (
        f"{'user':<12} {'check-ins':>9} {'entropy':>8} {'risk':>7} "
        f"{'margin one-time':>16} {'margin n-fold':>14}"
    )
    print(header)
    print("-" * len(header))

    for user in users:
        profile = LocationProfile.from_checkins(user.trace)
        assessment = assessor.assess(profile)

        # Red-team margin under the legacy one-time deployment...
        laplace = PlanarLaplaceMechanism.from_level(
            math.log(2), 200.0, rng=default_rng(1)
        )
        onetime_stream = one_time_obfuscate(user.trace, laplace)
        margin_onetime = self_attack_margin(
            onetime_stream, user.true_tops, laplace
        )

        # ...and under the permanent n-fold deployment.
        rng = default_rng(2)
        nfold = NFoldGaussianMechanism(budget, rng=rng)
        selector = PosteriorSelector(nfold.posterior_sigma, rng=rng)
        tops = eta_frequent_set(profile, 0.8)
        defended_stream = permanent_obfuscate(user.trace, tops, nfold, selector)
        margin_defended = self_attack_margin(
            defended_stream, user.true_tops, nfold
        )

        print(
            f"{user.user_id:<12} {user.n_checkins:>9} "
            f"{assessment.entropy:>8.2f} {assessment.level.value:>7} "
            f"{margin_onetime:>14.0f} m {margin_defended:>12.0f} m"
        )

    print(
        "\nreading: one-time margins of tens of metres mean those users' "
        "homes are effectively public; the n-fold deployment keeps every "
        "margin at hundreds of metres to kilometres."
    )


if __name__ == "__main__":
    main()
