"""The longitudinal location exposure attack, end to end (paper Section III).

Run with::

    python examples/attack_demo.py

Reproduces the Figure 4 case study: a victim's year of check-ins is
perturbed with one-time planar Laplace noise (the classic geo-IND
deployment), and the de-obfuscation attack recovers the victim's home with
increasing precision as the observation window grows — then the same
attack is shown failing against the permanent n-fold Gaussian defense.
"""

import math

from repro import (
    GeoIndBudget,
    NFoldGaussianMechanism,
    PlanarLaplaceMechanism,
    PosteriorSelector,
)
from repro.attack import DeobfuscationAttack
from repro.core import GaussianMechanism, default_rng
from repro.datagen import make_fig4_user, one_time_obfuscate, permanent_obfuscate
from repro.datagen.shanghai import STUDY_START_TS
from repro.profiles import SECONDS_PER_DAY, LocationProfile, filter_window


def main() -> None:
    victim = make_fig4_user()
    home = victim.true_tops[0]
    print(
        f"victim: {len(victim.trace)} check-ins over a year; "
        f"home at ({home.x:.0f}, {home.y:.0f})"
    )

    # --- One-time geo-IND deployment (what the paper attacks) -----------
    laplace = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(1)
    )
    observed = one_time_obfuscate(victim.trace, laplace)
    attack = DeobfuscationAttack.against(laplace)

    print("\nattacking one-time geo-IND (l = ln 2 at 200 m):")
    for label, days in (("one week", 7), ("one month", 30), ("full year", 365)):
        window = filter_window(
            observed, STUDY_START_TS, STUDY_START_TS + days * SECONDS_PER_DAY
        )
        guess = attack.infer_top1(window)
        err = guess.distance_to(home) if guess else float("inf")
        print(f"  {label:>9} ({len(window):4d} obs): home recovered to {err:7.1f} m")

    # --- The Edge-PrivLocAd defense --------------------------------------
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    rng = default_rng(2)
    nfold = NFoldGaussianMechanism(budget, rng=rng)
    nomadic = GaussianMechanism(budget.with_n(1), rng=rng)
    selector = PosteriorSelector(nfold.posterior_sigma, rng=rng)

    profile = LocationProfile.from_checkins(victim.trace)
    tops = [e.location for e in profile.top(2)]
    defended = permanent_obfuscate(
        victim.trace, tops, nfold, selector, nomadic_mechanism=nomadic
    )

    defended_attack = DeobfuscationAttack.against(nfold)
    guess = defended_attack.infer_top1(defended)
    err = guess.distance_to(home) if guess else float("inf")
    print("\nattacking the permanent 10-fold Gaussian defense:")
    print(f"  full year ({len(defended)} obs): best guess is {err:7.1f} m away")
    print("  (paper: <1% of users recovered within 200 m under the defense)")


if __name__ == "__main__":
    main()
