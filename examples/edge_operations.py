"""Operational edge features: secure merging, budget caps, durable state.

Run with::

    python examples/edge_operations.py

Demonstrates the three production-facing extensions around the core
mechanism:

1. **Secure profile merging** — two edge devices each hold a fragment of a
   roaming user's check-ins; the merged profile is computed through
   additive secret sharing without either fragment appearing in the clear.
2. **Privacy budget ledger** — pinning obfuscations for changing top
   locations is capped; once the ledger is exhausted new tops stay on the
   nomadic path.
3. **Durable obfuscation table** — the pinned candidates survive a restart
   via JSON persistence (re-randomising on restart would leak).
"""

import tempfile

import numpy as np

from repro.core import (
    GeoIndBudget,
    NFoldGaussianMechanism,
    PrivacyLedger,
    default_rng,
)
from repro.edge import GridSpec, ObfuscationModule, SecureProfileMerge
from repro.geo.point import Point
from repro.persist import load_json, save_json, table_from_json, table_to_json
from repro.profiles import CheckIn, eta_frequent_set


def main() -> None:
    rng = default_rng(7)

    # --- 1. Secure multi-edge profile merge -------------------------------
    grid = GridSpec(origin_x=-5_000, origin_y=-5_000, cell_size=100.0,
                    cells_x=100, cells_y=100)
    merger = SecureProfileMerge(grid, n_aggregators=3, rng=rng)

    home, office = Point(0.0, 0.0), Point(3_200.0, 900.0)
    edge_a_slice = [CheckIn(float(i), home) for i in range(120)]
    edge_b_slice = [CheckIn(1_000.0 + i, office) for i in range(60)]
    merger.contribute(edge_a_slice)   # edge A never reveals its counts
    merger.contribute(edge_b_slice)   # edge B never reveals its counts

    merged = merger.merged_profile()
    tops = eta_frequent_set(merged, 0.8)
    print(f"securely merged profile: {len(merged)} cells, "
          f"top locations covering 80%: {len(tops)}")
    for t in tops:
        print(f"  top at ({t.x:+7.1f}, {t.y:+7.1f})")

    # --- 2. Budget-capped obfuscation -------------------------------------
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    ledger = PrivacyLedger(max_epsilon=2.0)  # allows exactly two pins
    module = ObfuscationModule(mechanism, ledger=ledger)

    module.ensure_obfuscated(tops)  # spends for each merged top
    module.ensure_obfuscated([Point(9_000.0, 9_000.0)])  # a third new top
    print(
        f"\nledger: spent eps={ledger.total_epsilon:.1f} of "
        f"{ledger.max_epsilon}, pins={module.obfuscation_count}, "
        f"refused by cap={module.skipped_by_ledger}"
    )

    # --- 3. Durable obfuscation table -------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = f.name
    save_json(path, table_to_json(module.table))
    restored = table_from_json(load_json(path))
    same = all(
        restored.lookup(top) == module.table.lookup(top) for top in tops
    )
    print(f"\ntable persisted to {path} and restored intact: {same}")
    print("(re-randomising after a restart would hand the longitudinal "
          "attacker fresh noise — the table must be durable)")


if __name__ == "__main__":
    main()
