"""Quickstart: obfuscate a top location with the n-fold Gaussian mechanism.

Run with::

    python examples/quickstart.py

Walks through the paper's core loop on a single location: calibrate the
mechanism for a (r, eps, delta, n)-geo-IND budget, generate the pinned
candidate set, pick a reported location with posterior output selection,
and check both privacy (numerically) and utility (utilization rate).
"""

from repro import GeoIndBudget, NFoldGaussianMechanism, Point, PosteriorSelector
from repro.core import default_rng
from repro.core.verification import empirical_privacy_check, verify_gaussian_geo_ind
from repro.metrics import utilization_rate


def main() -> None:
    # The paper's headline setting: 10 candidates under one budget of
    # eps = 1 at r = 500 m with delta = 0.01.
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    rng = default_rng(42)
    mechanism = NFoldGaussianMechanism(budget, rng=rng)
    print(f"calibrated noise scale sigma = {mechanism.sigma:.1f} m (Theorem 2)")

    # A user's true top location (e.g. home), in planar metres.
    home = Point(0.0, 0.0)

    # Generate the candidate set ONCE and pin it forever — permanence is
    # what defeats the longitudinal attacker.
    candidates = mechanism.obfuscate(home)
    print(f"pinned {len(candidates)} candidate locations:")
    for c in candidates:
        print(f"  ({c.x:+9.1f}, {c.y:+9.1f})  [{home.distance_to(c):7.1f} m away]")

    # Per ad request, report one candidate chosen by posterior weight
    # (Algorithm 4) — pure post-processing, no extra privacy cost.
    selector = PosteriorSelector(mechanism.posterior_sigma, rng=rng)
    reported = selector.select(candidates)
    print(f"reported location this request: ({reported.x:+.1f}, {reported.y:+.1f})")

    # Utility: how much of the user's 5 km area of interest stays reachable?
    ur = utilization_rate(home, candidates, targeting_radius=5_000.0, rng=rng)
    print(f"utilization rate (R = 5 km): {ur:.1%}")

    # Privacy: the analytic bound and an empirical check on real samples.
    analytic_ok = verify_gaussian_geo_ind(
        budget.r, budget.epsilon, budget.delta, budget.n, mechanism.sigma
    )
    report = empirical_privacy_check(
        budget.r, budget.epsilon, budget.delta, budget.n, mechanism.sigma,
        samples=100_000, rng=rng,
    )
    print(f"analytic (r, eps, delta, n)-geo-IND check: {'OK' if analytic_ok else 'FAILED'}")
    print(report)


if __name__ == "__main__":
    main()
