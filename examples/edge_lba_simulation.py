"""Full Edge-PrivLocAd deployment simulation (paper Section V + VII).

Run with::

    python examples/edge_lba_simulation.py

Builds the whole ecosystem — synthetic Shanghai users, radius-targeting
advertisers, edge devices running the three Edge-PrivLocAd modules, and an
honest-but-curious ad network — replays two years of traffic, then lets
the provider mount the longitudinal attack on its own bidding log to show
the defense holding.
"""

import numpy as np

from repro.attack import DeobfuscationAttack, evaluate_user, success_rate
from repro.core import GeoIndBudget, NFoldGaussianMechanism
from repro.datagen import PopulationConfig, generate_population, shanghai_planar_bbox
from repro.edge import EdgePrivLocAdSystem, SystemConfig, seed_campaigns


def main() -> None:
    rng = np.random.default_rng(2022)

    print("generating synthetic population (Shanghai region, 2 years)...")
    users = generate_population(PopulationConfig(n_users=40, seed=5))
    total_checkins = sum(u.n_checkins for u in users)
    print(f"  {len(users)} users, {total_checkins} check-ins")

    system = EdgePrivLocAdSystem(SystemConfig(n_edge_devices=4))
    campaigns = seed_campaigns(
        shanghai_planar_bbox(), count=500, radius_m=5_000.0, rng=rng
    )
    system.register_campaigns(campaigns)
    print(f"  {len(campaigns)} radius-targeting campaigns registered")

    print("\nreplaying traffic through the edge devices...")
    report = system.run(users)
    print(f"  requests served:        {report.requests}")
    print(f"  served from pinned top: {report.top_path_share:.1%}")
    print(f"  ads relevant after AOI filter: {report.relevance_ratio:.1%}")

    print("\nprovider mounts the longitudinal attack on its bidding log...")
    budget = GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)
    attack = DeobfuscationAttack.against(NFoldGaussianMechanism(budget))
    findings = system.provider.attack_all(attack, top_n=1)

    outcomes = []
    for user in users:
        finding = findings[user.user_id]
        inferred = [i.location for i in finding.inferred]
        outcomes.append(evaluate_user(inferred, user.true_tops[:1]))
    for threshold in (200.0, 500.0):
        rate = success_rate(outcomes, rank=1, threshold_m=threshold)
        print(f"  top-1 recovered within {threshold:.0f} m: {rate:.1%}")
    print("  (paper: <1% within 200 m, 6.8% within 500 m under the defense)")


if __name__ == "__main__":
    main()
