"""Attacker-variant study: Algorithm 1 vs baselines vs semantic inference.

Run with::

    python examples/advanced_attacks.py

Perturbs one victim's year of check-ins with one-time geo-IND noise and
compares four attackers:

* the paper's Algorithm 1 (connectivity clustering + trimming);
* a k-means baseline (shows why the paper's design matters);
* the temporal attacker (labels *home* vs *work place* from time-of-day);
* the MAP estimator (Eq. 5) given a prior candidate set.
"""

import math

import numpy as np

from repro.attack import DeobfuscationAttack, KMeansAttack, MAPAttack, TemporalAttack
from repro.core import PlanarLaplaceMechanism, default_rng
from repro.datagen import make_fig4_user, one_time_obfuscate
from repro.geo.point import Point


def main() -> None:
    victim = make_fig4_user()
    home, office = victim.true_tops[0], victim.true_tops[1]
    mechanism = PlanarLaplaceMechanism.from_level(
        math.log(2), 200.0, rng=default_rng(11)
    )
    observed = one_time_obfuscate(victim.trace, mechanism)
    coords = np.array([(c.x, c.y) for c in observed])
    print(f"victim: {len(observed)} perturbed check-ins (l = ln 2 at 200 m)\n")

    # --- Algorithm 1 ------------------------------------------------------
    alg1 = DeobfuscationAttack.against(mechanism)
    guess = alg1.infer_top1(coords)
    print(f"Algorithm 1 (paper):    home to {guess.distance_to(home):7.1f} m")

    # --- k-means baseline -------------------------------------------------
    km = KMeansAttack(k=8, rng=default_rng(2))
    guess = km.infer_top1(coords)
    print(f"k-means baseline:       home to {guess.distance_to(home):7.1f} m")

    # --- Temporal (semantic) attacker --------------------------------------
    temporal = TemporalAttack(alg1)
    inferred_home, inferred_work = temporal.infer_home_and_work(observed)
    print(
        f"temporal attacker:      home to {inferred_home.distance_to(home):7.1f} m, "
        f"work to {inferred_work.distance_to(office):7.1f} m (labelled!)"
    )

    # --- MAP estimator with a prior candidate set --------------------------
    # The attacker knows 5 plausible addresses within ~400 m of the truth,
    # and first isolates the home observations with the temporal filter
    # (the estimator assumes one underlying location per observation set).
    rng = default_rng(3)
    candidates = [home] + [
        Point(home.x + dx, home.y + dy) for dx, dy in rng.uniform(-400, 400, (4, 2))
    ]
    from repro.attack.temporal import NIGHT

    night_obs = [c.point for c in observed if NIGHT.contains(c.timestamp)]
    map_attack = MAPAttack.laplace(mechanism.epsilon)
    est = map_attack.estimate(night_obs, candidates)
    print(
        f"MAP estimator (Eq. 5):  picked the true address with posterior "
        f"{est.posterior[0]:.3f} from 5 candidates "
        f"({'correct' if est.index == 0 else 'WRONG'})"
    )

    print(
        "\nreading: generic clustering underperforms the tuned Algorithm 1; "
        "time-of-day labels the semantics; with any prior knowledge the MAP "
        "attacker is near-certain. One-time geo-IND cannot survive "
        "longitudinal observation."
    )


if __name__ == "__main__":
    main()
