"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import GeoIndBudget
from repro.datagen.population import PopulationConfig, generate_population


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need different streams reseed."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_budget() -> GeoIndBudget:
    """The paper's headline budget: (500 m, eps=1, delta=0.01, n=10)."""
    return GeoIndBudget(r=500.0, epsilon=1.0, delta=0.01, n=10)


@pytest.fixture(scope="session")
def tiny_population():
    """A 12-user population shared across tests (generation is ~1 s)."""
    return generate_population(PopulationConfig(n_users=12, seed=99))
